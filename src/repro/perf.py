"""Perf-trajectory harness behind ``repro bench``.

Runs a fixed grid of hot-path benchmarks and writes ``BENCH_sched.json`` at
the repository root, so every optimisation PR pins its claimed win as a
recorded {commit, events/sec, wall_s, peak RSS} point instead of a prose
claim — the measured dispatch-rate trajectory event-driven middleware
simulators justify their overhead numbers with.

The grid:

* ``sched_800`` — the headline number: an 800-cluster event-stream
  scheduler storm (least-loaded replica selection + per-cluster submission
  estimate + commit + totals read, the sync-mode hot loop) replayed through
  the optimized :class:`~repro.simnet.network.LinkScheduler` *and* the
  from-scratch :class:`~repro.simnet.reference.ReferenceLinkScheduler`.
  Both must produce bit-identical logs; the reference's rate is recorded as
  ``baseline`` and the ratio as ``speedup``.
* ``table3_event_stream`` — a small sync-mode Table-3-style experiment with
  event streams on, end to end through :class:`ExperimentRunner`.
* ``hierarchical_2site`` / ``gossip_2site`` — the two federation modes over
  a 2-site replicated topology.
* ``sampled_100k`` — a population-sampled cross-device run (100k virtual
  clusters, cohort 128) plus a population-1000 control with the same
  cohort, each in its own subprocess so both legs report their own peak
  RSS; the ``rss_ratio`` between them pins the O(cohort) memory claim.

Events counted: for ``sched_800`` every scheduler API call the workload
issues (backlog query, estimate, commit, totals read); for the experiment
benchmarks every transfer committed on the fabric's scheduler.  Peak RSS is
``ru_maxrss`` — a process-wide high-water mark, so later benchmarks inherit
earlier peaks.

Use ``--quick`` for the CI smoke grid (same schema, smaller sizes) and
``--profile`` to print cProfile's top cumulative functions per experiment
benchmark.
"""

from __future__ import annotations

import json
import resource
import subprocess
import time
from typing import Dict, List, Optional, Tuple

#: schema 2 adds the ``sampled_100k`` benchmark: a population-sampled
#: cross-device run whose entry carries a ``baseline`` leg at population
#: 1000 (same cohort) and the ``rss_ratio`` between the two — the O(cohort)
#: peak-memory claim, pinned as a number.
SCHEMA_VERSION = 2

#: required keys of every benchmark entry (the CI bench job validates these).
BENCHMARK_KEYS = ("events", "wall_s", "events_per_sec", "peak_rss_kb")


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        )
        return out.stdout.strip()
    except Exception:
        return "unknown"


def _peak_rss_kb() -> int:
    # Linux reports KiB; macOS bytes.  The trajectory is recorded on Linux
    # CI, so normalise the common case and leave others as-is.
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


# --------------------------------------------------------------- sched_800
def _sched_workload(scheduler, clusters: int, rounds: int, replicas: List[str]) -> int:
    """Replay the sync-mode scheduler storm; returns the event count.

    Mirrors what :class:`~repro.sched.actors.NetworkActor` and the sync
    straggler decision do per round: every cluster scores each replica by
    outstanding backlog + wire time, estimates its submission on the winner,
    then commits the upload and reads the running totals.
    """
    capacity = {r: scheduler.capacity(r) for r in replicas}
    num_bytes = 25_000_000  # a ~25 MB model update
    events = 0
    for round_index in range(rounds):
        round_start = round_index * 30.0
        for c in range(clusters):
            name = f"c{c}"
            at = round_start + 0.01 * c
            best: Optional[Tuple[float, int]] = None
            for i, replica in enumerate(replicas):
                backlog = scheduler.outstanding_backlog(replica, at)
                wire = scheduler.network.transfer_time(name, replica, num_bytes)
                cost = backlog / capacity[replica] + wire
                events += 1
                if best is None or (cost, i) < best:
                    best = (cost, i)
            target = replicas[best[1]]
            scheduler.estimate(name, target, num_bytes, at)
            scheduler.transfer(name, target, num_bytes, at)
            _ = scheduler.total_queued_time
            _ = scheduler.total_wire_time
            events += 4
    return events


def _build_sched(scheduler_cls, clusters: int, replicas: int, capacity: int):
    from repro.simnet.network import NetworkLink, NetworkModel

    network = NetworkModel(default_link=NetworkLink(latency_s=0.005, bandwidth_bytes_per_s=100e6))
    names = [f"storage-{i}" for i in range(replicas)]
    return scheduler_cls(network, capacities={name: capacity for name in names}), names


def bench_sched_800(quick: bool = False) -> Dict[str, object]:
    """Optimized vs reference scheduler on the 800-cluster storm."""
    from repro.simnet.network import LinkScheduler
    from repro.simnet.reference import ReferenceLinkScheduler

    clusters = 200 if quick else 800
    rounds = 2 if quick else 5

    fast, replicas = _build_sched(LinkScheduler, clusters, 4, 4)
    start = time.perf_counter()
    events = _sched_workload(fast, clusters, rounds, replicas)
    wall = time.perf_counter() - start

    slow, replicas = _build_sched(ReferenceLinkScheduler, clusters, 4, 4)
    ref_start = time.perf_counter()
    ref_events = _sched_workload(slow, clusters, rounds, replicas)
    ref_wall = time.perf_counter() - ref_start

    if fast.log != slow.log:
        raise AssertionError("optimized and reference schedulers diverged on the bench workload")
    if events != ref_events:
        raise AssertionError("optimized and reference runs issued different event counts")

    return {
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_sec": round(events / wall, 1),
        "peak_rss_kb": _peak_rss_kb(),
        "baseline": {
            "wall_s": round(ref_wall, 4),
            "events_per_sec": round(ref_events / ref_wall, 1),
        },
        "speedup": round(ref_wall / wall, 2),
        "params": {"clusters": clusters, "rounds": rounds, "replicas": 4, "capacity": 4},
    }


# ------------------------------------------------------------- experiments
def _experiment_config(name: str, mode: str, quick: bool, **overrides):
    from repro.core.config import ExperimentConfig, cifar10_workload, gpu_cluster_configs

    rounds = 1 if quick else 2
    clusters = 2 if quick else 3
    workload = cifar10_workload(rounds=rounds, samples_per_class=8, image_size=8)
    kwargs = dict(
        name=name,
        workload=workload,
        clusters=gpu_cluster_configs(num_clusters=clusters, num_clients=2),
        mode=mode,
        rounds=rounds,
        seed=0,
        event_streams=True,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def _bench_experiment(config, profile: bool = False) -> Dict[str, object]:
    from repro.core.runner import ExperimentRunner

    runner = ExperimentRunner(config)
    runner.build()
    start = time.perf_counter()
    if profile:
        _, report = runner.run_profiled()
        print(report)
    else:
        runner.run()
    wall = time.perf_counter() - start
    events = len(runner.comm.network.scheduler.log) if runner.comm is not None else 0
    if runner.chain is not None:
        events += int(runner.chain.metrics.as_dict().get("transactions_processed", 0))
    return {
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "peak_rss_kb": _peak_rss_kb(),
        "params": {"mode": config.mode, "clusters": len(config.clusters), "rounds": config.rounds},
    }


def bench_table3(quick: bool = False, profile: bool = False) -> Dict[str, object]:
    """Sync-mode Table-3-style run with event streams (the new default)."""
    return _bench_experiment(_experiment_config("bench-table3", "sync", quick), profile)


def bench_hierarchical_2site(quick: bool = False, profile: bool = False) -> Dict[str, object]:
    """Hierarchical federation over a 2-site replicated topology."""
    config = _experiment_config(
        "bench-hier", "hierarchical", quick,
        storage_replicas=2, replica_capacity=2, local_rounds_per_global=2,
    )
    return _bench_experiment(config, profile)


def bench_gossip_2site(quick: bool = False, profile: bool = False) -> Dict[str, object]:
    """Gossip federation over a 2-site replicated topology."""
    config = _experiment_config(
        "bench-gossip", "gossip", quick,
        storage_replicas=2, replica_capacity=2, gossip_fanout=1,
    )
    return _bench_experiment(config, profile)


# ------------------------------------------------------------ sampled scale
_SAMPLED_LEG_SCRIPT = """\
import json, resource, sys, time
from repro.core.config import ExperimentConfig, cifar10_workload, gpu_cluster_configs
from repro.core.runner import ExperimentRunner

population, cohort, rounds = (int(a) for a in sys.argv[1:4])
config = ExperimentConfig(
    name=f"bench-sampled-{population}",
    workload=cifar10_workload(rounds=rounds, samples_per_class=8, image_size=8),
    clusters=gpu_cluster_configs(num_clusters=3, num_clients=2),
    mode="sync",
    rounds=rounds,
    seed=0,
    event_streams=True,
    storage_replicas=2,
    population=population,
    clients_per_round=cohort,
)
runner = ExperimentRunner(config)
runner.build()
start = time.perf_counter()
result = runner.run()
wall = time.perf_counter() - start
events = len(runner.comm.network.scheduler.log) if runner.comm is not None else 0
if runner.chain is not None:
    events += int(runner.chain.metrics.as_dict().get("transactions_processed", 0))
print(json.dumps({
    "events": events,
    "wall_s": round(wall, 4),
    "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
    "materialized_clusters": result.sampling.get("materialized_clusters", 0.0),
}))
"""


def _run_sampled_leg(population: int, cohort: int, rounds: int) -> Dict[str, object]:
    """One sampled run in a fresh interpreter, for a per-leg ``ru_maxrss``.

    ``ru_maxrss`` is a process-wide high-water mark, so legs sharing the
    bench process would inherit each other's peaks and the O(cohort) memory
    claim could never be measured.  Each leg therefore runs in a
    subprocess that reports its own peak.
    """
    import os
    import sys
    from pathlib import Path

    src_root = str(Path(__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _SAMPLED_LEG_SCRIPT, str(population), str(cohort), str(rounds)],
        capture_output=True,
        text=True,
        check=True,
        timeout=1800,
        env=env,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def bench_sampled_100k(quick: bool = False) -> Dict[str, object]:
    """Population-sampled cross-device run: 100k virtual clusters, cohort 128.

    Two subprocess legs: the headline population and a population-1000
    control with the *same* cohort.  Peak memory is O(cohort), so the legs'
    RSS ratio should sit near 1 — it is recorded as ``rss_ratio`` and CI
    asserts it stays under 2.
    """
    population = 10_000 if quick else 100_000
    cohort = 32 if quick else 128
    rounds = 2
    leg = _run_sampled_leg(population, cohort, rounds)
    control = _run_sampled_leg(1_000, cohort, rounds)
    wall = float(leg["wall_s"])
    return {
        "events": leg["events"],
        "wall_s": wall,
        "events_per_sec": round(leg["events"] / wall, 1) if wall > 0 else 0.0,
        "peak_rss_kb": leg["peak_rss_kb"],
        "materialized_clusters": leg["materialized_clusters"],
        "baseline": {
            "population": 1_000,
            "wall_s": control["wall_s"],
            "peak_rss_kb": control["peak_rss_kb"],
        },
        "rss_ratio": round(leg["peak_rss_kb"] / control["peak_rss_kb"], 3),
        "params": {"population": population, "clients_per_round": cohort, "rounds": rounds},
    }


# ------------------------------------------------------------------ driver
def run_benchmarks(quick: bool = False, profile: bool = False) -> Dict[str, object]:
    """Run the fixed grid and return the BENCH document."""
    benchmarks: Dict[str, Dict[str, object]] = {}
    benchmarks["sched_800"] = bench_sched_800(quick=quick)
    benchmarks["table3_event_stream"] = bench_table3(quick=quick, profile=profile)
    benchmarks["hierarchical_2site"] = bench_hierarchical_2site(quick=quick, profile=profile)
    benchmarks["gossip_2site"] = bench_gossip_2site(quick=quick, profile=profile)
    benchmarks["sampled_100k"] = bench_sampled_100k(quick=quick)
    return {
        "schema_version": SCHEMA_VERSION,
        "commit": _git_commit(),
        "quick": quick,
        "benchmarks": benchmarks,
    }


def validate_document(document: Dict[str, object]) -> List[str]:
    """Schema check used by the CI bench job; returns a list of problems."""
    problems: List[str] = []
    for key in ("schema_version", "commit", "quick", "benchmarks"):
        if key not in document:
            problems.append(f"missing top-level key '{key}'")
    for name, entry in (document.get("benchmarks") or {}).items():
        for key in BENCHMARK_KEYS:
            if key not in entry:
                problems.append(f"benchmark '{name}' missing key '{key}'")
            elif not isinstance(entry[key], (int, float)):
                problems.append(f"benchmark '{name}' key '{key}' is not numeric")
    version = document.get("schema_version")
    if version is not None and version not in (1, SCHEMA_VERSION):
        problems.append(f"unsupported schema version {version!r}")
    sched = (document.get("benchmarks") or {}).get("sched_800")
    if sched is not None and "speedup" not in sched:
        problems.append("benchmark 'sched_800' missing key 'speedup'")
    sampled = (document.get("benchmarks") or {}).get("sampled_100k")
    if sampled is not None:
        if "rss_ratio" not in sampled:
            problems.append("benchmark 'sampled_100k' missing key 'rss_ratio'")
        elif not isinstance(sampled["rss_ratio"], (int, float)):
            problems.append("benchmark 'sampled_100k' key 'rss_ratio' is not numeric")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point shared by ``repro bench`` and ``benchmarks/perf_trajectory.py``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench", description="run the perf-trajectory benchmark grid"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke grid: same benchmarks and schema, smaller sizes",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print cProfile top cumulative functions for each experiment benchmark",
    )
    parser.add_argument(
        "--out", default="BENCH_sched.json",
        help="output path for the BENCH document (default: BENCH_sched.json)",
    )
    args = parser.parse_args(argv)

    document = run_benchmarks(quick=args.quick, profile=args.profile)
    problems = validate_document(document)
    if problems:
        for problem in problems:
            print(f"schema problem: {problem}")
        return 1
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, entry in document["benchmarks"].items():
        line = f"{name:<24}{entry['events']:>10} events  {entry['wall_s']:>9.3f} s  {entry['events_per_sec']:>12.1f} ev/s"
        if "speedup" in entry:
            line += f"  ({entry['speedup']:.2f}x vs reference)"
        print(line)
    print(f"BENCH document written to {args.out}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
