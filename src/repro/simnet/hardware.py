"""Hardware profiles for the simulated testbeds.

Section 4.1 of the paper describes two clusters:

* **GPU cluster** — 4 nodes (i7-12700, RTX A2000, 64 GB RAM), each hosting an
  aggregator and 3 clients.
* **Edge cluster** — 3 CPU nodes hosting the aggregators, with client sets of
  Raspberry Pi 400s (4 GB), Jetson Nanos (4 GB) and Docker containers (2 GB).

A profile captures the attributes the timing and overhead models need:
relative training throughput (samples/second at a reference model size),
network bandwidth, and memory capacity.  The edge profiles are deliberately
heterogeneous so the straggler behaviour that motivates the Async mode
appears in the reproduction exactly as it does on real hardware.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict

from repro.simnet.units import bytes_over_bandwidth


@dataclass(frozen=True)
class HardwareProfile:
    """Capabilities of one device class."""

    name: str
    #: synthetic training throughput, in samples per simulated second for the
    #: reference CNN workload; larger models scale time by parameter ratio.
    samples_per_second: float
    #: sustained network bandwidth in **megabytes** per simulated second
    #: (1 MB = 1e6 bytes).  Formerly misleadingly named ``bandwidth_mbps``,
    #: which survives as a deprecated read alias.
    bandwidth_mbytes_per_s: float
    #: one-way network latency to cluster peers, in simulated seconds.
    latency_s: float
    #: memory capacity in megabytes (used in the overhead report).
    memory_mb: float
    #: nominal CPU utilisation while training, as a percentage.
    train_cpu_percent: float

    def training_time(self, num_samples: int, epochs: int, model_scale: float = 1.0) -> float:
        """Simulated seconds to train ``epochs`` passes over ``num_samples``.

        ``model_scale`` is the ratio of the model's parameter count to the
        reference CNN (62K parameters), so heavier models train slower.
        """
        if num_samples < 0 or epochs < 0:
            raise ValueError("num_samples and epochs must be non-negative")
        if model_scale <= 0:
            raise ValueError("model_scale must be positive")
        return (num_samples * epochs * model_scale) / self.samples_per_second

    @property
    def bandwidth_mbps(self) -> float:
        """Deprecated alias of :attr:`bandwidth_mbytes_per_s`.

        The historical name suggested megabits/s, but the value has always
        been mega**bytes** per simulated second.
        """
        warnings.warn(
            "HardwareProfile.bandwidth_mbps is deprecated (the unit is megabytes/s); "
            "use bandwidth_mbytes_per_s",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.bandwidth_mbytes_per_s

    def transfer_time(self, num_bytes: int) -> float:
        """Simulated seconds to move ``num_bytes`` to or from this device."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.latency_s + bytes_over_bandwidth(num_bytes, self.bandwidth_mbytes_per_s)


#: GPU workstation node from the paper's GPU cluster.
GPU_NODE = HardwareProfile(
    name="gpu-node",
    samples_per_second=4000.0,
    bandwidth_mbytes_per_s=125.0,
    latency_s=0.002,
    memory_mb=65536.0,
    train_cpu_percent=35.0,
)

#: The aggregator-hosting CPU node of the edge cluster (i7, 8 GB RAM).
EDGE_CPU_NODE = HardwareProfile(
    name="edge-cpu-node",
    samples_per_second=900.0,
    bandwidth_mbytes_per_s=25.0,
    latency_s=0.01,
    memory_mb=8192.0,
    train_cpu_percent=45.0,
)

#: Raspberry Pi 400 client (4 GB RAM) — the slowest edge client class.
RASPBERRY_PI_400 = HardwareProfile(
    name="raspberry-pi-400",
    samples_per_second=120.0,
    bandwidth_mbytes_per_s=10.0,
    latency_s=0.02,
    memory_mb=4096.0,
    train_cpu_percent=85.0,
)

#: NVIDIA Jetson Nano client (128-core Maxwell GPU, 4 GB RAM).
JETSON_NANO = HardwareProfile(
    name="jetson-nano",
    samples_per_second=450.0,
    bandwidth_mbytes_per_s=12.0,
    latency_s=0.015,
    memory_mb=4096.0,
    train_cpu_percent=60.0,
)

#: Docker container client pinned to 2 GB RAM on a shared host.
DOCKER_CONTAINER = HardwareProfile(
    name="docker-container",
    samples_per_second=300.0,
    bandwidth_mbytes_per_s=50.0,
    latency_s=0.005,
    memory_mb=2048.0,
    train_cpu_percent=55.0,
)


_PROFILES: Dict[str, HardwareProfile] = {
    profile.name: profile
    for profile in (GPU_NODE, EDGE_CPU_NODE, RASPBERRY_PI_400, JETSON_NANO, DOCKER_CONTAINER)
}


def profile_by_name(name: str) -> HardwareProfile:
    """Look up a built-in hardware profile by its name."""
    if name not in _PROFILES:
        raise ValueError(f"unknown hardware profile '{name}'; available: {sorted(_PROFILES)}")
    return _PROFILES[name]


def available_profiles() -> Dict[str, HardwareProfile]:
    """All built-in profiles keyed by name."""
    return dict(_PROFILES)
