"""From-scratch reference scheduler: the oracle behind the fast one.

:class:`ReferenceLinkScheduler` recomputes every placement query from the
committed reservations alone — no saturation cache, no backlog index, no
plan memo, no running totals, no tail fast path.  It is the pre-acceleration
behaviour kept alive for two jobs:

* the property test (``tests/test_link_scheduler_equivalence.py``) drives
  randomized workloads through both schedulers and asserts bit-identical
  placements and totals, so every cache in :class:`~repro.simnet.network.
  LinkScheduler` stays an acceleration rather than a semantic change;
* the perf harness (``repro bench``) replays the same workload through both
  and reports the measured speedup, pinning the trajectory in
  ``BENCH_sched.json``.

The numeric decompositions (suffix-sum-plus-straddle backlog, log-order
totals) deliberately mirror the optimized code term for term: floating-point
addition is not associative, so the oracle must add the same numbers in the
same order to be bit-exact, not just mathematically equal.
"""

from __future__ import annotations

import bisect
from itertools import accumulate
from typing import List, Optional, Tuple

from .network import LinkScheduler, ScheduledTransfer


class ReferenceLinkScheduler(LinkScheduler):
    """A :class:`LinkScheduler` with every acceleration switched off."""

    def outstanding_backlog(self, endpoint: str, at: float) -> float:
        """Backlog recomputed from the raw reservations on every call."""
        intervals = self._busy.get(endpoint)
        if not intervals:
            return 0.0
        starts = [start for start, _ in intervals]
        suffix = list(accumulate(end - start for start, end in reversed(intervals)))
        suffix.reverse()
        prefix_max_end = list(accumulate((end for _, end in intervals), max))
        first = bisect.bisect_left(starts, at)
        total = suffix[first] if first < len(starts) else 0.0
        for i in range(first - 1, -1, -1):
            if prefix_max_end[i] <= at:
                break
            end = intervals[i][1]
            if end > at:
                total += end - at
        return total

    def _saturated_intervals(self, endpoint: str) -> List[Tuple[float, float]]:
        """The capacity sweep, rerun on every call."""
        intervals = self._busy.get(endpoint)
        if not intervals:
            return []
        cap = self.capacity(endpoint)
        if cap == 1:
            return intervals
        boundaries = self._boundaries[endpoint]
        saturated: List[Tuple[float, float]] = []
        active = 0
        block_start: Optional[float] = None
        for time, delta in boundaries:
            active += delta
            if active >= cap and block_start is None:
                block_start = time
            elif active < cap and block_start is not None:
                if time > block_start:
                    saturated.append((block_start, time))
                block_start = None
        return saturated

    def _earliest_start(self, endpoints: List[str], at: float, duration: float) -> float:
        """The jump loop without the past-the-timeline fast path."""
        blocked = {endpoint: self._saturated_intervals(endpoint) for endpoint in endpoints}
        start = at
        moved = True
        while moved:
            moved = False
            for endpoint in endpoints:
                conflict_end = self._conflict_end(blocked[endpoint], start, duration)
                if conflict_end is not None:
                    start = conflict_end
                    moved = True
                    break
        return start

    def _plan(
        self,
        source: str,
        destination: str,
        num_bytes: int,
        at: float,
        earliest_start: Optional[float] = None,
    ) -> ScheduledTransfer:
        """Every query replans from scratch — no per-epoch memo."""
        duration = self.network.transfer_time(source, destination, num_bytes)
        endpoints = [source] if source == destination else [source, destination]
        floor = at if earliest_start is None else max(at, earliest_start)
        start = self._earliest_start(endpoints, floor, duration)
        return ScheduledTransfer(
            source=source,
            destination=destination,
            num_bytes=num_bytes,
            requested_at=at,
            started_at=start,
            finished_at=start + duration,
        )

    @property
    def total_queued_time(self) -> float:
        """Summed over the log on every read."""
        return sum(t.queued_time for t in self.log)

    @property
    def total_wire_time(self) -> float:
        """Summed over the log on every read."""
        return sum(t.duration for t in self.log)
