"""Central unit conversions for the simulation's physical quantities.

The repo's worst historical bugs were unit drift, not logic: the
``bandwidth_mbps`` trap (a value that silently meant mega**bytes**/s), and
magic conversion constants (``4e6``, ``20e6``, ``1_000_000``) scattered
through the timing and topology builders.  This module is the **single
place** such constants are allowed to live; the ``UNIT002`` lint rule flags
the raw literals anywhere else in ``src/repro``.

Conventions (enforced by suffix-driven inference in the ``UNIT001``/
``UNIT004`` lint rules):

* ``*_s`` — simulated seconds
* ``*_bytes`` — bytes
* ``*_mb`` — megabytes (1 MB = 1e6 bytes)
* ``*_mbytes_per_s`` — mega**bytes** per simulated second
* ``*_bytes_per_s`` — bytes per simulated second
* ``*_count`` — dimensionless counts

Every helper is a thin, inlinable expression chosen so migrating a call
site is **bit-identical**: the float operations (and their order) are
exactly those of the literal expressions they replace.  ``MB`` is the
integer ``1_000_000``; multiplying a float by it produces the same result
as multiplying by the literal ``1e6`` (both convert to the same binary64
value), and the scaled variants keep the scale *inside* the constant
(``scale * MB`` is exact integer arithmetic) rather than multiplying the
bandwidth twice, which could round differently.
"""

from __future__ import annotations

#: bytes per megabyte (decimal megabyte: 1 MB = 1e6 bytes).
MB = 1_000_000

#: serialized bytes per float32 model parameter.
BYTES_PER_FLOAT32 = 4


def mbytes_per_s_to_bytes_per_s(bandwidth_mbytes_per_s: float) -> float:
    """Convert a bandwidth from megabytes/s to bytes/s."""
    return bandwidth_mbytes_per_s * MB


def bytes_over_bandwidth(num_bytes: float, bandwidth_mbytes_per_s: float) -> float:
    """Seconds to move ``num_bytes`` at ``bandwidth_mbytes_per_s`` (MB/s).

    Exactly ``num_bytes / (bandwidth_mbytes_per_s * 1e6)`` — the wire-time
    expression of :meth:`repro.simnet.hardware.HardwareProfile.transfer_time`.
    """
    return num_bytes / (bandwidth_mbytes_per_s * MB)


def bytes_over_scaled_bandwidth(
    num_bytes: float, bandwidth_mbytes_per_s: float, scale: int
) -> float:
    """Seconds to move ``num_bytes`` at ``scale`` times a link's bandwidth.

    The timing model prices memory-bound aggregation and similarity scoring
    as multiples of a profile's network bandwidth; the historical literals
    (``4e6``, ``20e6``) were ``scale * 1e6`` folded by hand.  ``scale`` must
    be an integer so ``scale * MB`` stays exact and the single float
    multiply is bit-identical to the folded constant.
    """
    return num_bytes / (bandwidth_mbytes_per_s * (scale * MB))


def float32_model_bytes(num_parameters: int) -> int:
    """Serialized size in bytes of a float32 model with ``num_parameters``."""
    return int(num_parameters * BYTES_PER_FLOAT32)
