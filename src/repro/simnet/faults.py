"""Deterministic fault injection: churn, replica outages and WAN partitions.

The simulator priced only happy-path traffic until this module existed.
Production middleware traffic is not happy-path: organisations drop out of
rounds (churn), storage replicas go down and come back (outages with
scheduled recovery), and site pairs lose connectivity (WAN partitions).
:class:`FaultPlan` is the seeded, deterministic schedule of all three —
built once per run, either directly or from an
:class:`~repro.core.config.ExperimentConfig` via :meth:`FaultPlan.from_config`.

The plan *describes* faults; two consumers *enforce* them:

* the :class:`~repro.simnet.network.LinkScheduler` receives each replica's
  outage windows and each site pair's partition windows as blocked
  intervals, so no transfer is ever placed through a down replica or a
  severed WAN path — traffic that insists on the broken route simply waits
  for the scheduled recovery;
* the :class:`~repro.sched.actors.NetworkActor` consults the plan at
  request time and layers *resilience* on top (:class:`ResiliencePolicy`):
  per-transfer retry with exponential backoff + deterministic jitter,
  per-replica circuit breakers (:class:`CircuitBreaker`,
  closed → open → half-open), and graceful degradation — failover to the
  next-best replica under the existing least-loaded completion-time
  ranking, or a bounded wait for recovery when no replica is reachable.

Everything is reproducible: churn draws hash ``(seed, cluster, round)``
through an independent :func:`numpy.random.default_rng` stream, outage and
partition windows are generated from the seed alone, and a **zero-rate plan
injects nothing** — runs with faults disabled stay bit-identical to runs
that never heard of this module.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

#: independent sub-stream tags so churn draws, outage times and partition
#: times never alias each other off one seed.
_CHURN_STREAM = 0xC0
_OUTAGE_STREAM = 0x07
_PARTITION_STREAM = 0x9A

Window = Tuple[float, float]


def merge_windows(windows: Iterable[Window]) -> List[Window]:
    """Sort ``(start, end)`` windows and coalesce overlaps into maximal runs."""
    cleaned = sorted((float(start), float(end)) for start, end in windows)
    merged: List[Window] = []
    for start, end in cleaned:
        if start < 0 or end <= start:
            raise ValueError(f"invalid fault window ({start}, {end}): need 0 <= start < end")
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _covering_window(windows: Sequence[Window], at: float) -> Optional[Window]:
    """The merged window containing ``at``, or ``None`` when the path is up."""
    for start, end in windows:
        if start <= at < end:
            return (start, end)
        if start > at:
            return None
    return None


@dataclass(frozen=True)
class ReplicaOutage:
    """One storage replica down from ``start`` until its scheduled ``end``."""

    replica: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("an outage needs 0 <= start < end")


@dataclass(frozen=True)
class WanPartition:
    """The WAN between two replica sites severed from ``start`` until ``end``."""

    site_a: str
    site_b: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.site_a == self.site_b:
            raise ValueError("a partition separates two distinct sites")
        if self.start < 0 or self.end <= self.start:
            raise ValueError("a partition needs 0 <= start < end")


class FaultPlan:
    """A seeded, deterministic schedule of churn, outages and partitions.

    Args:
        seed: drives the per-``(cluster, round)`` churn draws; replaying the
            same seed replays the same drops.
        churn_rate: probability that a given cluster sits a given round out
            (on top of any :class:`~repro.core.config.ClusterConfig`
            availability draw).  ``0.0`` never drops anyone.
        outages: replica downtime windows with scheduled recovery.
        partitions: pairwise site partition windows.

    A plan with ``churn_rate == 0`` and no outages or partitions reports
    :attr:`is_zero` — consumers treat it exactly like no plan at all, which
    is what keeps default-configuration runs bit-identical.
    """

    def __init__(
        self,
        seed: int = 0,
        churn_rate: float = 0.0,
        outages: Iterable[ReplicaOutage] = (),
        partitions: Iterable[WanPartition] = (),
    ):
        if not 0.0 <= churn_rate < 1.0:
            raise ValueError("churn_rate must be in [0, 1)")
        self.seed = int(seed)
        self.churn_rate = float(churn_rate)
        self.outages: List[ReplicaOutage] = list(outages)
        self.partitions: List[WanPartition] = list(partitions)
        self._replica_windows: Dict[str, List[Window]] = {}
        for outage in self.outages:
            self._replica_windows.setdefault(outage.replica, []).append((outage.start, outage.end))
        for replica, windows in self._replica_windows.items():
            self._replica_windows[replica] = merge_windows(windows)
        self._partition_windows: Dict[Tuple[str, str], List[Window]] = {}
        for partition in self.partitions:
            key = tuple(sorted((partition.site_a, partition.site_b)))
            self._partition_windows.setdefault(key, []).append((partition.start, partition.end))
        for key, windows in self._partition_windows.items():
            self._partition_windows[key] = merge_windows(windows)
        #: distinct ``(cluster, round)`` drops the plan actually injected —
        #: the ``dropped_clients`` accounting the fabric summary exports.
        self._drops: Set[Tuple[str, int]] = set()

    # ------------------------------------------------------------------ queries
    @property
    def is_zero(self) -> bool:
        """True when this plan can never inject anything."""
        return self.churn_rate == 0.0 and not self.outages and not self.partitions

    def cluster_offline(self, cluster: str, round_number: int) -> bool:
        """Seeded churn draw: does ``cluster`` drop out of ``round_number``?

        Deterministic per ``(seed, cluster, round)`` — independent of call
        order and of every other random stream in the run — and idempotent:
        asking twice neither redraws nor double-counts the drop.
        """
        if self.churn_rate == 0.0:
            return False
        rng = np.random.default_rng(
            [self.seed, _CHURN_STREAM, zlib.crc32(cluster.encode("utf-8")), int(round_number)]
        )
        dropped = bool(rng.random() < self.churn_rate)
        if dropped:
            self._drops.add((cluster, int(round_number)))
        return dropped

    @property
    def dropped_clients(self) -> int:
        """Distinct ``(cluster, round)`` drops injected so far."""
        return len(self._drops)

    def replica_windows(self, replica: str) -> List[Window]:
        """Merged downtime windows of one replica (empty when always up)."""
        return list(self._replica_windows.get(replica, ()))

    def partition_windows(self, site_a: str, site_b: str) -> List[Window]:
        """Merged partition windows between two sites (order-insensitive)."""
        key = tuple(sorted((site_a, site_b)))
        return list(self._partition_windows.get(key, ()))

    def replica_down(self, replica: str, at: float) -> bool:
        """Is ``replica`` inside one of its outage windows at time ``at``?"""
        return _covering_window(self._replica_windows.get(replica, ()), at) is not None

    def partitioned(self, site_a: str, site_b: str, at: float) -> bool:
        """Is the WAN between two sites severed at time ``at``?"""
        if site_a == site_b:
            return False
        key = tuple(sorted((site_a, site_b)))
        return _covering_window(self._partition_windows.get(key, ()), at) is not None

    def recovery_time(self, replica: str, at: float) -> float:
        """End of the outage window covering ``at`` (``at`` when the replica is up)."""
        window = _covering_window(self._replica_windows.get(replica, ()), at)
        return window[1] if window is not None else at

    @property
    def outage_seconds(self) -> float:
        """Total injected replica downtime (merged, across replicas)."""
        return sum(
            end - start
            for _, windows in sorted(self._replica_windows.items())
            for start, end in windows
        )

    @property
    def partition_seconds(self) -> float:
        """Total injected partition time (merged, across site pairs)."""
        return sum(
            end - start
            for _, windows in sorted(self._partition_windows.items())
            for start, end in windows
        )

    # -------------------------------------------------------------- construction
    @classmethod
    def from_config(
        cls, config, replicas: Sequence[str], horizon_s: float
    ) -> "FaultPlan":
        """Generate the plan an :class:`~repro.core.config.ExperimentConfig` asks for.

        ``replica_outages`` outage episodes are dealt round-robin over the
        declared ``replicas`` and ``wan_partitions`` partition episodes
        round-robin over the distinct site pairs.  Episode starts are
        *staggered*: the usable window (5–70 % of ``horizon_s``, an a-priori
        estimate of the run's makespan, so faults land while traffic is
        actually flowing) is split into one stripe per episode and each
        start is drawn at a seeded uniform point inside its own stripe —
        episodes spread across the run instead of piling onto the same
        instant, which is what lets failover actually help (some replica is
        usually still up).  Each episode recovers after the configured
        duration.  The generation reads only ``fault_seed`` (default: the
        experiment seed) — never the shared experiment RNG — so enabling
        faults does not perturb data partitioning, attacks or timing jitter.
        """
        seed = config.fault_seed if config.fault_seed is not None else config.seed

        def staggered_starts(count: int, stream: int) -> List[float]:
            rng = np.random.default_rng([seed, stream])
            stripe = (0.7 - 0.05) / count
            return [
                (0.05 + stripe * (i + float(rng.random()))) * horizon for i in range(count)
            ]

        horizon = max(float(horizon_s), 1.0)
        outages: List[ReplicaOutage] = []
        if config.replica_outages > 0:
            if not replicas:
                raise ValueError("replica outages need at least one storage replica")
            for i, start in enumerate(
                staggered_starts(config.replica_outages, _OUTAGE_STREAM)
            ):
                outages.append(
                    ReplicaOutage(
                        replica=replicas[i % len(replicas)],
                        start=start,
                        end=start + config.outage_duration_s,
                    )
                )
        partitions: List[WanPartition] = []
        if config.wan_partitions > 0:
            pairs = [
                (replicas[i], replicas[j])
                for i in range(len(replicas))
                for j in range(i + 1, len(replicas))
            ]
            if not pairs:
                raise ValueError("WAN partitions need at least two storage replicas")
            for i, start in enumerate(
                staggered_starts(config.wan_partitions, _PARTITION_STREAM)
            ):
                site_a, site_b = pairs[i % len(pairs)]
                partitions.append(
                    WanPartition(
                        site_a=site_a,
                        site_b=site_b,
                        start=start,
                        end=start + config.partition_duration_s,
                    )
                )
        return cls(
            seed=seed,
            churn_rate=config.churn_rate,
            outages=outages,
            partitions=partitions,
        )


@dataclass(frozen=True)
class ResiliencePolicy:
    """Retry/backoff and circuit-breaker knobs of the resilient fabric.

    ``retry_max = 0`` switches the resilience layer off entirely: a
    transfer aimed at a down replica neither retries nor fails over — it
    waits out the outage on the link schedule (the degraded baseline the
    failover comparison is measured against).

    Attributes:
        retry_max: failed attempts retried (with backoff) before failing over.
        backoff_base_s: first backoff wait; attempt *n* waits
            ``backoff_base_s * 2**n``, times the jitter factor.
        backoff_jitter: uniform jitter fraction — each wait is scaled by
            ``1 + backoff_jitter * u`` with a deterministic seeded
            ``u ~ U[0, 1)``.
        breaker_threshold: consecutive failures that trip a replica's
            breaker from closed to open.
        breaker_cooldown_s: seconds an open breaker rejects attempts before
            allowing one half-open trial.
    """

    retry_max: int = 3
    backoff_base_s: float = 0.5
    backoff_jitter: float = 0.1
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 60.0

    def __post_init__(self) -> None:
        if self.retry_max < 0:
            raise ValueError("retry_max must be non-negative")
        if self.backoff_base_s <= 0:
            raise ValueError("backoff_base_s must be positive")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be positive")

    def backoff(self, attempt: int, jitter_draw: float) -> float:
        """Wait before retry ``attempt`` (0-based), jittered deterministically."""
        return self.backoff_base_s * (2.0 ** attempt) * (1.0 + self.backoff_jitter * jitter_draw)


class CircuitBreaker:
    """Per-endpoint circuit breaker: closed → open → half-open.

    Closed breakers pass every attempt through and count consecutive
    failures; ``threshold`` consecutive failures trip the breaker open at
    the failing attempt's simulated time.  An open breaker fails fast (no
    attempt, no backoff) until ``cooldown_s`` simulated seconds have
    passed, then admits exactly one half-open trial: success closes the
    breaker and resets the failure count, failure re-trips it for another
    cooldown.

    ``open_seconds`` accounts each trip's guaranteed-open window (one
    cooldown per trip) — a deterministic measure that does not depend on
    whether a trial ever probed the breaker again.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int, cooldown_s: float):
        if threshold < 1:
            raise ValueError("breaker threshold must be at least 1")
        if cooldown_s <= 0:
            raise ValueError("breaker cooldown must be positive")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None
        #: times the breaker tripped open (closed→open or half-open→open).
        self.trips = 0
        #: total guaranteed-open seconds across all trips.
        self.open_seconds = 0.0

    def would_allow(self, at: float) -> bool:
        """Pure query: would an attempt at ``at`` pass through?"""
        if self.state != self.OPEN:
            return True
        assert self.opened_at is not None
        return at >= self.opened_at + self.cooldown_s

    def allow(self, at: float) -> bool:
        """Gate one attempt at time ``at``.

        An open breaker whose cooldown has elapsed transitions to half-open
        and admits this attempt as its trial.
        """
        if self.state != self.OPEN:
            return True
        if self.would_allow(at):
            self.state = self.HALF_OPEN
            return True
        return False

    def record_success(self, at: float) -> None:
        """A gated attempt succeeded: close and reset."""
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = None

    def record_failure(self, at: float) -> None:
        """A gated attempt failed: count it, trip when the threshold is hit."""
        if self.state == self.HALF_OPEN:
            self._trip(at)
            return
        self.failures += 1
        if self.failures >= self.threshold:
            self._trip(at)

    def _trip(self, at: float) -> None:
        self.state = self.OPEN
        self.opened_at = at
        self.failures = 0
        self.trips += 1
        self.open_seconds += self.cooldown_s
