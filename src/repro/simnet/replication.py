"""Object availability across storage replicas: the replication ledger.

Distributing an uploaded artifact to several storage sites is not free — the
middleware literature on multi-site installation infrastructures makes the
point that *distribution cost dominates* exactly where replication looks most
attractive.  Earlier releases of the topology layer cut that corner: an
upload landed on exactly one replica, yet any replica could immediately serve
the download, so inter-site propagation happened off the books.

:class:`ReplicaDirectory` closes the hole.  It is a pure bookkeeping object —
a per-object ledger of *when* each artifact becomes present at each replica —
with no notion of links or time of its own.  The
:class:`~repro.sched.actors.NetworkActor` owns one directory and keeps it
consistent with the transfers it commits on the
:class:`~repro.simnet.network.LinkScheduler`:

* an **upload** records the object's *origin* replica and its arrival there
  (the upload's completion time);
* an **eager propagation** transfer records the arrival at the receiving
  peer replica when the WAN push completes;
* a **lazy fetch** records the arrival at the requesting replica when the
  on-demand origin→replica transfer completes.

Downloads then gate on the ledger (read-your-writes: a download from replica
*r* starts no earlier than the object's arrival at *r*).  Objects the
directory has never seen are treated as pre-seeded — available everywhere at
time zero — which is exactly the legacy free-replication behaviour and keeps
callers that do not thread object identities bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: replication policies understood by :class:`~repro.sched.actors.NetworkActor`:
#: ``eager`` — the origin pushes the object to every peer replica right after
#: the upload commits; ``lazy`` — a download miss triggers an on-demand
#: origin→replica fetch the downloader waits behind; ``none`` — downloads are
#: pinned to the origin replica and no propagation traffic ever flows.
REPLICATION_MODES = ("eager", "lazy", "none")


class ReplicaDirectory:
    """Per-object availability ledger over a set of storage replicas.

    Records, for every object the fabric has seen, which replica it was
    first uploaded to (its *origin*) and the simulated time it becomes
    present at each replica.  All methods are O(1) dictionary operations;
    determinism follows from the callers committing transfers in
    deterministic order.
    """

    def __init__(self) -> None:
        #: object id -> replica name -> earliest simulated arrival time.
        self._arrivals: Dict[str, Dict[str, float]] = {}
        #: object id -> the replica its first upload landed on.
        self._origins: Dict[str, str] = {}

    # ------------------------------------------------------------------ writes
    def record_upload(self, object_id: str, replica: str, at: float) -> None:
        """Register an upload of ``object_id`` completing at ``replica``.

        The first upload fixes the object's origin; re-uploads (the same
        content-addressed artifact pushed again) only ever move arrival
        times *earlier*.
        """
        self._origins.setdefault(object_id, replica)
        self.record_arrival(object_id, replica, at)

    def record_arrival(self, object_id: str, replica: str, at: float) -> None:
        """Register ``object_id`` becoming present at ``replica`` at time ``at``."""
        if at < 0:
            raise ValueError("arrival time must be non-negative")
        arrivals = self._arrivals.setdefault(object_id, {})
        previous = arrivals.get(replica)
        if previous is None or at < previous:
            arrivals[replica] = at

    # ----------------------------------------------------------------- queries
    def known(self, object_id: Optional[str]) -> bool:
        """Whether the directory has ever seen this object (``None`` is never known)."""
        return object_id is not None and object_id in self._origins

    def origin(self, object_id: str) -> Optional[str]:
        """The replica the object's first upload landed on, or ``None``."""
        return self._origins.get(object_id)

    def arrival(self, object_id: str, replica: str) -> Optional[float]:
        """When the object becomes present at ``replica``.

        ``None`` means no committed or scheduled transfer brings it there —
        the caller must either fetch on demand (lazy) or go to a replica
        that has it.
        """
        return self._arrivals.get(object_id, {}).get(replica)

    def replicas_holding(self, object_id: str) -> List[str]:
        """Replicas with a recorded (possibly future) arrival, insertion-ordered."""
        return list(self._arrivals.get(object_id, {}))

    def __len__(self) -> int:
        return len(self._origins)
