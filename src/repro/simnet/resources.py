"""CPU and memory accounting for the system-overhead study (Table 7).

The paper reports mean and standard deviation of CPU% and memory for three
process types — scorer, aggregator (``agg``) and client — plus the constant
footprint of the Geth and IPFS daemons.  The :class:`ResourceMonitor` collects
per-process samples during a simulated run and produces the same table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class ProcessSample:
    """One CPU / memory sample for a process type at a simulated timestamp."""

    process_type: str
    cpu_percent: float
    memory_mb: float
    sim_time: float = 0.0


@dataclass
class ResourceReport:
    """Mean / standard deviation of CPU% and memory per process type."""

    process_type: str
    cpu_mean: float
    cpu_std: float
    mem_mean_mb: float
    mem_std_mb: float
    sample_count: int

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly view of the report (used by the result exporters)."""
        return {
            "cpu_mean": self.cpu_mean,
            "cpu_std": self.cpu_std,
            "mem_mean_mb": self.mem_mean_mb,
            "mem_std_mb": self.mem_std_mb,
            "sample_count": float(self.sample_count),
        }


class ResourceMonitor:
    """Accumulates :class:`ProcessSample` records and summarises them."""

    def __init__(self) -> None:
        self._samples: List[ProcessSample] = []

    def record(self, process_type: str, cpu_percent: float, memory_mb: float, sim_time: float = 0.0) -> None:
        """Record one sample for a process type."""
        if cpu_percent < 0 or memory_mb < 0:
            raise ValueError("cpu_percent and memory_mb must be non-negative")
        self._samples.append(
            ProcessSample(
                process_type=process_type,
                cpu_percent=cpu_percent,
                memory_mb=memory_mb,
                sim_time=sim_time,
            )
        )

    def __len__(self) -> int:
        return len(self._samples)

    def samples_for(self, process_type: str) -> List[ProcessSample]:
        """All samples recorded for a process type."""
        return [s for s in self._samples if s.process_type == process_type]

    def process_types(self) -> List[str]:
        """Process types observed so far, sorted."""
        return sorted({s.process_type for s in self._samples})

    def report(self, process_type: str) -> ResourceReport:
        """Summary statistics for one process type."""
        samples = self.samples_for(process_type)
        if not samples:
            raise ValueError(f"no samples recorded for process type '{process_type}'")
        cpu = np.array([s.cpu_percent for s in samples])
        mem = np.array([s.memory_mb for s in samples])
        return ResourceReport(
            process_type=process_type,
            cpu_mean=float(cpu.mean()),
            cpu_std=float(cpu.std()),
            mem_mean_mb=float(mem.mean()),
            mem_std_mb=float(mem.std()),
            sample_count=len(samples),
        )

    def full_report(self) -> Dict[str, ResourceReport]:
        """Reports for every observed process type."""
        return {p: self.report(p) for p in self.process_types()}
