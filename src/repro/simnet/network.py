"""Point-to-point network model for model-weight transfers.

Two levels of fidelity live here:

* :class:`NetworkLink` / :class:`NetworkModel` — closed-form transfer costs
  (``latency + bytes / bandwidth``) with per-pair link overrides.  This is the
  constant-cost model every experiment uses by default.
* :class:`LinkScheduler` — FIFO contention on top of the same links.  Each
  endpoint is a serial resource: a transfer occupies both its source and its
  destination until it completes, so concurrent transfers that share an
  endpoint (for example several clusters pushing models into the storage
  swarm) queue behind each other instead of magically overlapping.  The
  event-stream actors in :mod:`repro.sched.actors` build on this to turn
  network I/O into first-class simulation events.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class NetworkLink:
    """A directed link with latency (seconds) and bandwidth (bytes/second)."""

    latency_s: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` across this link."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s


class NetworkModel:
    """Holds per-pair links with a configurable default.

    Keys are (source, destination) endpoint names.  When no specific link is
    registered the default link applies, which keeps experiment setup short:
    the paper's clusters sit on one LAN where all links are alike.
    """

    def __init__(self, default_link: Optional[NetworkLink] = None):
        self.default_link = default_link or NetworkLink(latency_s=0.005, bandwidth_bytes_per_s=100e6)
        self._links: Dict[Tuple[str, str], NetworkLink] = {}

    def set_link(self, source: str, destination: str, link: NetworkLink, symmetric: bool = True) -> None:
        """Register a link between two endpoints."""
        self._links[(source, destination)] = link
        if symmetric:
            self._links[(destination, source)] = link

    def link(self, source: str, destination: str) -> NetworkLink:
        """The link between two endpoints (a zero-cost loopback for self-transfers)."""
        if source == destination:
            return NetworkLink(latency_s=0.0, bandwidth_bytes_per_s=10e9)
        return self._links.get((source, destination), self.default_link)

    def transfer_time(self, source: str, destination: str, num_bytes: int) -> float:
        """Seconds to move a payload from ``source`` to ``destination``."""
        return self.link(source, destination).transfer_time(num_bytes)


@dataclass(frozen=True)
class ScheduledTransfer:
    """One transfer placed on the contended network timeline.

    Attributes:
        source: sending endpoint name.
        destination: receiving endpoint name.
        num_bytes: payload size.
        requested_at: simulated time the caller asked for the transfer.
        started_at: time the transfer actually began (``>= requested_at`` when
            either endpoint was busy).
        finished_at: time the last byte arrived.
    """

    source: str
    destination: str
    num_bytes: int
    requested_at: float
    started_at: float
    finished_at: float

    @property
    def queued_time(self) -> float:
        """Seconds the transfer waited for a busy endpoint before starting."""
        return self.started_at - self.requested_at

    @property
    def duration(self) -> float:
        """Pure wire time (latency + serialisation), excluding queueing."""
        return self.finished_at - self.started_at

    @property
    def elapsed(self) -> float:
        """Total time the caller experienced: queueing plus wire time."""
        return self.finished_at - self.requested_at


class LinkScheduler:
    """Serial-endpoint contention over a :class:`NetworkModel`.

    Each endpoint (cluster uplink, storage swarm backbone, ...) can carry one
    transfer at a time; a transfer occupies *both* endpoints for its
    duration.  Reservations are gap-filling: a transfer takes the earliest
    slot at or after its request time where both endpoints are free, so it
    only queues behind transfers it genuinely overlaps in simulated time —
    not behind whatever happened to be committed first.  (The discrete-event
    kernel executes a whole cluster round atomically, so a fast cluster's
    late-round transfers are committed before a slow cluster's early-round
    ones; first-fit placement keeps the schedule causal anyway.)

    The wire time of an uncontended transfer is exactly
    ``NetworkModel.transfer_time`` — enabling contention never makes an
    isolated transfer slower, it only delays transfers that overlap.
    """

    def __init__(self, network: Optional[NetworkModel] = None):
        self.network = network or NetworkModel()
        #: sorted, non-overlapping busy intervals per endpoint.
        self._busy: Dict[str, List[Tuple[float, float]]] = {}
        #: committed transfers, in request order (the transfer event log).
        self.log: List[ScheduledTransfer] = []

    def busy_intervals(self, endpoint: str) -> List[Tuple[float, float]]:
        """The committed ``(start, end)`` reservations of one endpoint."""
        return list(self._busy.get(endpoint, []))

    def _conflict_end(self, endpoint: str, start: float, duration: float) -> Optional[float]:
        """End of the first reservation overlapping ``[start, start+duration)``.

        Endpoint intervals are sorted and non-overlapping, so a bisect finds
        the first interval that could still be running at ``start`` in
        O(log n); ``None`` means the slot is free.
        """
        intervals = self._busy.get(endpoint)
        if not intervals:
            return None
        index = bisect.bisect_right(intervals, (start, float("inf")))
        if index and intervals[index - 1][1] > start:
            index -= 1
        if index < len(intervals) and intervals[index][0] < start + duration:
            return intervals[index][1]
        return None

    def _earliest_start(self, endpoints: List[str], at: float, duration: float) -> float:
        """First time ``>= at`` where every endpoint is free for ``duration``."""
        start = at
        moved = True
        while moved:
            moved = False
            for endpoint in endpoints:
                conflict_end = self._conflict_end(endpoint, start, duration)
                if conflict_end is not None:
                    # Overlaps a reservation: jump past it and re-check every
                    # endpoint from the new start.
                    start = conflict_end
                    moved = True
                    break
        return start

    def _plan(self, source: str, destination: str, num_bytes: int, at: float) -> ScheduledTransfer:
        duration = self.network.transfer_time(source, destination, num_bytes)
        endpoints = [source] if source == destination else [source, destination]
        start = self._earliest_start(endpoints, at, duration)
        return ScheduledTransfer(
            source=source,
            destination=destination,
            num_bytes=num_bytes,
            requested_at=at,
            started_at=start,
            finished_at=start + duration,
        )

    def estimate(self, source: str, destination: str, num_bytes: int, at: float) -> float:
        """Elapsed seconds a transfer requested ``at`` would take, uncommitted.

        Used by round policies that must *predict* a submission cost (the sync
        straggler decision) without reserving the link.
        """
        return self._plan(source, destination, num_bytes, at).elapsed

    def transfer(self, source: str, destination: str, num_bytes: int, at: float) -> ScheduledTransfer:
        """Commit a transfer requested at time ``at`` and return its schedule.

        The transfer reserves the earliest adequate gap on both endpoints;
        transfers that overlap it in time queue into later gaps.
        """
        if at < 0:
            raise ValueError("transfer request time must be non-negative")
        scheduled = self._plan(source, destination, num_bytes, at)
        interval = (scheduled.started_at, scheduled.finished_at)
        endpoints = {source, destination}
        for endpoint in endpoints:
            bisect.insort(self._busy.setdefault(endpoint, []), interval)
        self.log.append(scheduled)
        return scheduled

    @property
    def total_queued_time(self) -> float:
        """Seconds transfers spent waiting for busy endpoints, summed."""
        return sum(t.queued_time for t in self.log)

    @property
    def total_wire_time(self) -> float:
        """Pure transfer time (no queueing) of every committed transfer."""
        return sum(t.duration for t in self.log)
