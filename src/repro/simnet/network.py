"""Point-to-point network model for model-weight transfers.

Two levels of fidelity live here:

* :class:`NetworkLink` / :class:`NetworkModel` — closed-form transfer costs
  (``latency + bytes / bandwidth``) with per-pair link overrides.  This is the
  constant-cost model every experiment uses by default.
* :class:`LinkScheduler` — FIFO contention on top of the same links.  Each
  endpoint carries a bounded number of concurrent transfers (its *capacity*,
  1 by default): a transfer occupies a slot on both its source and its
  destination until it completes, so concurrent transfers that saturate an
  endpoint (for example several clusters pushing models into the storage
  swarm) queue behind each other instead of magically overlapping.  The
  event-stream actors in :mod:`repro.sched.actors` build on this to turn
  network I/O into first-class simulation events.
* :class:`Topology` — a builder for multi-site storage layouts: named
  storage **replicas** with parallel capacity, per-cluster LAN links to a
  home replica, and WAN links between sites.  It materialises into a
  :class:`NetworkModel` plus a capacity-aware :class:`LinkScheduler`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import Dict, List, Optional, Tuple

from .faults import merge_windows
from .units import mbytes_per_s_to_bytes_per_s


@dataclass(frozen=True)
class NetworkLink:
    """A directed link with latency (seconds) and bandwidth (bytes/second)."""

    latency_s: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` across this link."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s

    @classmethod
    def from_mbytes_per_s(cls, latency_s: float, bandwidth_mbytes_per_s: float) -> "NetworkLink":
        """Build a link from a megabytes/s bandwidth (config and profile units)."""
        return cls(
            latency_s=latency_s,
            bandwidth_bytes_per_s=mbytes_per_s_to_bytes_per_s(bandwidth_mbytes_per_s),
        )


class NetworkModel:
    """Holds per-pair links with a configurable default.

    Keys are (source, destination) endpoint names.  When no specific link is
    registered the default link applies, which keeps experiment setup short:
    the paper's clusters sit on one LAN where all links are alike.  A
    *resolver* hook (``set_link_resolver``) can compute a pair's link on
    first use — the topology layer uses it to derive the O(n²)
    cluster↔cluster paths lazily instead of materialising every pair up
    front; resolved links are cached so repeat lookups stay O(1).
    """

    #: link used for self-transfers; shared because links are immutable.
    LOOPBACK = NetworkLink(latency_s=0.0, bandwidth_bytes_per_s=10e9)

    def __init__(self, default_link: Optional[NetworkLink] = None):
        self.default_link = default_link or NetworkLink(latency_s=0.005, bandwidth_bytes_per_s=100e6)
        self._links: Dict[Tuple[str, str], NetworkLink] = {}
        self._resolver = None

    def set_link(self, source: str, destination: str, link: NetworkLink, symmetric: bool = True) -> None:
        """Register a link between two endpoints."""
        self._links[(source, destination)] = link
        if symmetric:
            self._links[(destination, source)] = link

    def set_link_resolver(self, resolver) -> None:
        """Install a ``(source, destination) -> Optional[NetworkLink]`` hook.

        Consulted for pairs with no registered link; a non-``None`` result
        is cached.  Returning ``None`` falls through to the default link.
        """
        self._resolver = resolver

    def link(self, source: str, destination: str) -> NetworkLink:
        """The link between two endpoints (a zero-cost loopback for self-transfers)."""
        if source == destination:
            return self.LOOPBACK
        link = self._links.get((source, destination))
        if link is not None:
            return link
        if self._resolver is not None:
            resolved = self._resolver(source, destination)
            if resolved is not None:
                self._links[(source, destination)] = resolved
                return resolved
        return self.default_link

    def transfer_time(self, source: str, destination: str, num_bytes: int) -> float:
        """Seconds to move a payload from ``source`` to ``destination``."""
        return self.link(source, destination).transfer_time(num_bytes)


@dataclass(frozen=True)
class ScheduledTransfer:
    """One transfer placed on the contended network timeline.

    Attributes:
        source: sending endpoint name.
        destination: receiving endpoint name.
        num_bytes: payload size.
        requested_at: simulated time the caller asked for the transfer.
        started_at: time the transfer actually began (``>= requested_at`` when
            either endpoint was busy).
        finished_at: time the last byte arrived.
    """

    source: str
    destination: str
    num_bytes: int
    requested_at: float
    started_at: float
    finished_at: float

    @property
    def queued_time(self) -> float:
        """Seconds the transfer waited for a busy endpoint before starting."""
        return self.started_at - self.requested_at

    @property
    def duration(self) -> float:
        """Pure wire time (latency + serialisation), excluding queueing."""
        return self.finished_at - self.started_at

    @property
    def elapsed(self) -> float:
        """Total time the caller experienced: queueing plus wire time."""
        return self.finished_at - self.requested_at


class LinkScheduler:
    """Bounded-capacity endpoint contention over a :class:`NetworkModel`.

    Each endpoint (cluster uplink, storage replica, ...) carries up to
    ``capacity`` concurrent transfers (1 unless raised with
    :meth:`set_capacity` — the serial endpoint is the ``c = 1`` special
    case); a transfer occupies one slot on *both* endpoints for its
    duration.  Reservations are gap-filling: a transfer takes the earliest
    slot at or after its request time where both endpoints have a free slot,
    so it only queues behind transfers it genuinely overlaps in simulated
    time — not behind whatever happened to be committed first.  (The
    discrete-event kernel executes a whole cluster round atomically, so a
    fast cluster's late-round transfers are committed before a slow
    cluster's early-round ones; first-fit placement keeps the schedule
    causal anyway.)

    The wire time of an uncontended transfer is exactly
    ``NetworkModel.transfer_time`` — enabling contention never makes an
    isolated transfer slower, it only delays transfers that overlap.

    Hot-path design (the sync straggler decision calls an estimate per
    cluster per round, so planning dominates event-stream runs):

    * Placement queries are *memoized per commit epoch*: repeated
      ``estimate`` / ``preview`` calls with the same arguments between two
      commits return the cached plan, and a ``transfer`` that follows a
      preview with identical arguments commits the already-computed plan
      instead of re-planning (the single-pass plan-and-commit path).
    * The saturation sweep of a capacity > 1 endpoint and the backlog index
      behind :meth:`outstanding_backlog` are cached per endpoint behind a
      dirty flag: only a commit *touching that endpoint* invalidates them,
      so an estimate storm between commits pays one sweep, not one per call.
    * ``total_queued_time`` / ``total_wire_time`` are running counters
      updated at commit time (accumulated in log order, so they stay
      bit-identical to summing the log), never O(log-length) scans.
    * A commit whose reservation starts at or after everything already
      committed on the endpoint (the common causal case) appends to the
      timeline and cannot create a new saturated region, so the cached
      sweep stays valid.

    Every cache is an *acceleration* only: placements, queued-time and
    totals are bit-identical to the naive from-scratch recomputation, which
    :class:`repro.simnet.reference.ReferenceLinkScheduler` keeps alive as
    the property-test oracle.
    """

    def __init__(
        self,
        network: Optional[NetworkModel] = None,
        capacities: Optional[Dict[str, int]] = None,
    ):
        self.network = network or NetworkModel()
        #: busy intervals per endpoint, sorted by (start, end); with capacity
        #: c > 1 up to c of them may overlap at any instant.
        self._busy: Dict[str, List[Tuple[float, float]]] = {}
        #: parallel capacity per endpoint; absent means serial (c = 1).
        self._capacity: Dict[str, int] = {}
        #: sorted sweep boundaries ``(time, +1/-1)`` per capacity>1 endpoint,
        #: maintained incrementally at commit time so placements need not
        #: re-sort the whole reservation history.
        self._boundaries: Dict[str, List[Tuple[float, int]]] = {}
        #: committed transfers, in request order (the transfer event log).
        self.log: List[ScheduledTransfer] = []
        #: commit epoch: bumped by every mutation (transfer / set_capacity);
        #: exposed so callers can key their own memoization on it.
        self.epoch = 0
        self._queued_total = 0.0
        self._wire_total = 0.0
        #: latest committed finish time per endpoint (0.0 when idle) — the
        #: O(1) "is this placement past the whole timeline?" fast path.
        self._max_end: Dict[str, float] = {}
        #: merged saturated intervals per capacity>1 endpoint (dirty-flagged:
        #: absent means recompute on next use).
        self._saturated_cache: Dict[str, List[Tuple[float, float]]] = {}
        #: per-endpoint ``(starts, suffix_durations, prefix_max_end)`` index
        #: behind outstanding_backlog, same dirty-flag discipline.
        self._backlog_cache: Dict[str, Tuple[List[float], List[float], List[float]]] = {}
        #: placement memo for the current epoch, keyed by
        #: ``(source, destination, num_bytes, at, floor)``.
        self._plan_cache: Dict[Tuple[str, str, int, float, float], ScheduledTransfer] = {}
        #: fault-injected downtime windows per endpoint (merged, sorted);
        #: empty dict on the happy path so planning never pays for faults.
        self._outages: Dict[str, List[Tuple[float, float]]] = {}
        #: endpoint -> site label for partition lookups (an endpoint with no
        #: registered site is its own site).
        self._sites: Dict[str, str] = {}
        #: severed-WAN windows per unordered site pair (merged, sorted).
        self._partitions: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
        #: optional :class:`~repro.analysis.sanitizer.SimulationSanitizer`;
        #: when set, every committed reservation is re-checked against the
        #: capacity and fault-window contracts (read-only, after the commit).
        self.sanitizer = None
        for endpoint, capacity in (capacities or {}).items():
            self.set_capacity(endpoint, capacity)

    def set_outages(self, endpoint: str, windows: List[Tuple[float, float]]) -> None:
        """Declare downtime windows for ``endpoint``.

        No transfer touching the endpoint is placed overlapping one of these
        windows — traffic aimed at a down endpoint waits for its scheduled
        recovery.  Affects future placements only, so declare outages before
        scheduling traffic (the fault plan does this at fabric build time).
        An empty list clears the endpoint's outages.
        """
        merged = merge_windows(windows)
        if merged:
            self._outages[endpoint] = merged
        else:
            self._outages.pop(endpoint, None)
        self._plan_cache.clear()
        self.epoch += 1

    def set_site(self, endpoint: str, site: str) -> None:
        """Map ``endpoint`` onto a site label for partition lookups."""
        self._sites[endpoint] = site
        self._plan_cache.clear()
        self.epoch += 1

    def set_partition(self, site_a: str, site_b: str, windows: List[Tuple[float, float]]) -> None:
        """Declare severed-WAN windows between two sites (order-insensitive).

        Transfers whose endpoints resolve to the two sites cannot be placed
        inside a window; same-site traffic is unaffected.  An empty list
        clears the pair's partitions.
        """
        if site_a == site_b:
            raise ValueError("a partition separates two distinct sites")
        key = (site_a, site_b) if site_a < site_b else (site_b, site_a)
        merged = merge_windows(windows)
        if merged:
            self._partitions[key] = merged
        else:
            self._partitions.pop(key, None)
        self._plan_cache.clear()
        self.epoch += 1

    def outage_windows(self, endpoint: str) -> List[Tuple[float, float]]:
        """The declared downtime windows of one endpoint."""
        return list(self._outages.get(endpoint, ()))

    def path_fault_windows(self, source: str, destination: str) -> List[Tuple[float, float]]:
        """Merged fault windows blocking the ``source -> destination`` path.

        The public form of :meth:`_fault_windows` for observers (the
        simulation sanitizer, diagnostics): always a list, empty when no
        outage or partition applies to the path.
        """
        return self._fault_windows(source, destination) or []

    def _fault_windows(self, source: str, destination: str) -> Optional[List[Tuple[float, float]]]:
        """Merged fault windows blocking the ``source -> destination`` path.

        ``None`` when nothing applies — the planning code treats ``None``
        exactly like the pre-fault scheduler, preserving bit-identity (and
        the O(1) fast path) for runs without injected faults.
        """
        if not self._outages and not self._partitions:
            return None
        windows: List[Tuple[float, float]] = []
        endpoints = (source,) if source == destination else (source, destination)
        for endpoint in endpoints:
            found = self._outages.get(endpoint)
            if found:
                windows.extend(found)
        if self._partitions and source != destination:
            site_a = self._sites.get(source, source)
            site_b = self._sites.get(destination, destination)
            if site_a != site_b:
                key = (site_a, site_b) if site_a < site_b else (site_b, site_a)
                found = self._partitions.get(key)
                if found:
                    windows.extend(found)
        if not windows:
            return None
        return merge_windows(windows)

    def set_capacity(self, endpoint: str, capacity: int) -> None:
        """Let ``endpoint`` admit up to ``capacity`` overlapping reservations.

        Affects future placements only; committed reservations are never
        rescheduled, so set capacities before scheduling traffic.  Lowering
        the capacity of an endpoint that already carries committed traffic
        raises: reservations placed under the higher capacity may overlap,
        and the serial (``c = 1``) placement path assumes non-overlapping
        busy intervals — silently keeping the old reservations would let
        "serial" placements overlap them.
        """
        if capacity < 1:
            raise ValueError("endpoint capacity must be at least 1")
        if capacity < self.capacity(endpoint) and self._busy.get(endpoint):
            raise ValueError(
                f"cannot lower the capacity of endpoint '{endpoint}' below "
                f"{self.capacity(endpoint)}: it already carries committed traffic "
                "scheduled under the higher capacity"
            )
        self._capacity[endpoint] = int(capacity)
        if capacity > 1:
            boundaries: List[Tuple[float, int]] = []
            for start, end in self._busy.get(endpoint, ()):
                boundaries.append((start, 1))
                boundaries.append((end, -1))
            boundaries.sort()
            self._boundaries[endpoint] = boundaries
        else:
            self._boundaries.pop(endpoint, None)
        # A capacity change redraws the endpoint's saturation picture and
        # stales every memoized placement.
        self._saturated_cache.pop(endpoint, None)
        self._plan_cache.clear()
        self.epoch += 1

    def capacity(self, endpoint: str) -> int:
        """Parallel capacity of one endpoint (1 unless raised)."""
        return self._capacity.get(endpoint, 1)

    def busy_intervals(self, endpoint: str) -> List[Tuple[float, float]]:
        """The committed ``(start, end)`` reservations of one endpoint."""
        return list(self._busy.get(endpoint, []))

    def outstanding_backlog(self, endpoint: str, at: float) -> float:
        """Reserved seconds still scheduled at or after ``at`` on one endpoint.

        The load metric behind deterministic least-loaded replica selection.
        Answered from a per-endpoint index — interval starts, suffix sums of
        their durations, and a prefix-max of their ends — rebuilt only after
        a commit touches the endpoint, so the per-round selection storm
        bisects into the index instead of rescanning the reservation
        history on every call.
        """
        intervals = self._busy.get(endpoint)
        if not intervals:
            return 0.0
        index = self._backlog_cache.get(endpoint)
        if index is None:
            starts = [start for start, _ in intervals]
            suffix = list(accumulate(end - start for start, end in reversed(intervals)))
            suffix.reverse()
            prefix_max_end = list(accumulate((end for _, end in intervals), max))
            index = (starts, suffix, prefix_max_end)
            self._backlog_cache[endpoint] = index
        starts, suffix, prefix_max_end = index
        first = bisect.bisect_left(starts, at)
        # Intervals starting at or after ``at`` contribute their whole
        # duration: one suffix-sum lookup.
        total = suffix[first] if first < len(starts) else 0.0
        # Earlier intervals may still straddle ``at``; walk them newest-first
        # and stop once the running max end falls behind ``at``.
        for i in range(first - 1, -1, -1):
            if prefix_max_end[i] <= at:
                break
            end = intervals[i][1]
            if end > at:
                total += end - at
        return total

    def _saturated_intervals(self, endpoint: str) -> List[Tuple[float, float]]:
        """Maximal intervals where the endpoint is at capacity.

        For a serial endpoint these are the raw reservations themselves
        (capacity-1 placement stays bit-identical to the pre-capacity
        scheduler).  For ``c > 1`` a sweep over the incrementally-maintained
        reservation boundaries finds the regions with ``>= c`` concurrent
        transfers — only those block a new reservation.  The sweep result is
        cached per endpoint; commits that merely extend the timeline keep it
        valid, anything else drops it.
        """
        intervals = self._busy.get(endpoint)
        if not intervals:
            return []
        cap = self.capacity(endpoint)
        if cap == 1:
            return intervals
        cached = self._saturated_cache.get(endpoint)
        if cached is not None:
            return cached
        # Sorted with the -1 before the +1 at equal times: a reservation
        # ending exactly when another starts never saturates the instant
        # between them.
        boundaries = self._boundaries[endpoint]
        saturated: List[Tuple[float, float]] = []
        active = 0
        block_start: Optional[float] = None
        for time, delta in boundaries:
            active += delta
            if active >= cap and block_start is None:
                block_start = time
            elif active < cap and block_start is not None:
                if time > block_start:
                    saturated.append((block_start, time))
                block_start = None
        self._saturated_cache[endpoint] = saturated
        return saturated

    @staticmethod
    def _conflict_end(
        intervals: List[Tuple[float, float]], start: float, duration: float
    ) -> Optional[float]:
        """End of the first blocked interval overlapping ``[start, start+duration)``.

        ``intervals`` are sorted (and non-overlapping for the serial case),
        so a bisect finds the first interval that could still be running at
        ``start`` in O(log n); ``None`` means the slot is free.
        """
        if not intervals:
            return None
        index = bisect.bisect_right(intervals, (start, float("inf")))
        if index and intervals[index - 1][1] > start:
            index -= 1
        if index < len(intervals) and intervals[index][0] < start + duration:
            return intervals[index][1]
        return None

    def _earliest_start(
        self,
        endpoints: List[str],
        at: float,
        duration: float,
        fault_windows: Optional[List[Tuple[float, float]]] = None,
    ) -> float:
        """First time ``>= at`` where every endpoint has a slot for ``duration``.

        ``fault_windows`` are extra blocked intervals (outages/partitions on
        the path); they disable the fast path because they can block a
        request arbitrarily far past the committed timeline.
        """
        # Fast path: a request at or past every committed reservation on
        # every endpoint cannot conflict with anything — it starts
        # immediately, no sweep and no bisect.  This is the common causal
        # case (simulated time mostly moves forward).
        if fault_windows is None and all(
            at >= self._max_end.get(endpoint, 0.0) for endpoint in endpoints
        ):
            return at
        blocked = [self._saturated_intervals(endpoint) for endpoint in endpoints]
        if fault_windows is not None:
            blocked.append(fault_windows)
        start = at
        moved = True
        while moved:
            moved = False
            for intervals in blocked:
                conflict_end = self._conflict_end(intervals, start, duration)
                if conflict_end is not None:
                    # Overlaps a saturated region: jump past it and re-check
                    # every interval list from the new start.
                    start = conflict_end
                    moved = True
                    break
        return start

    def _plan(
        self,
        source: str,
        destination: str,
        num_bytes: int,
        at: float,
        earliest_start: Optional[float] = None,
    ) -> ScheduledTransfer:
        floor = at if earliest_start is None else max(at, earliest_start)
        # Placements are pure functions of the committed schedule, so a repeat
        # query between two commits (the sync straggler loop estimates every
        # cluster, then commits the winner) returns the memoized plan.
        key = (source, destination, num_bytes, at, floor)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        duration = self.network.transfer_time(source, destination, num_bytes)
        endpoints = [source] if source == destination else [source, destination]
        start = self._earliest_start(
            endpoints, floor, duration, self._fault_windows(source, destination)
        )
        scheduled = ScheduledTransfer(
            source=source,
            destination=destination,
            num_bytes=num_bytes,
            requested_at=at,
            started_at=start,
            finished_at=start + duration,
        )
        self._plan_cache[key] = scheduled
        return scheduled

    def preview(
        self,
        source: str,
        destination: str,
        num_bytes: int,
        at: float,
        earliest_start: Optional[float] = None,
    ) -> ScheduledTransfer:
        """The schedule a transfer requested ``at`` would get, uncommitted.

        ``earliest_start`` floors the placement without moving the request
        time — the gap between the two is accounted as queueing (the
        replication layer uses it for read-your-writes availability gates).
        """
        return self._plan(source, destination, num_bytes, at, earliest_start)

    def estimate(self, source: str, destination: str, num_bytes: int, at: float) -> float:
        """Elapsed seconds a transfer requested ``at`` would take, uncommitted.

        Used by round policies that must *predict* a submission cost (the sync
        straggler decision) without reserving the link.
        """
        return self._plan(source, destination, num_bytes, at).elapsed

    def transfer(
        self,
        source: str,
        destination: str,
        num_bytes: int,
        at: float,
        earliest_start: Optional[float] = None,
    ) -> ScheduledTransfer:
        """Commit a transfer requested at time ``at`` and return its schedule.

        The transfer reserves the earliest adequate gap on both endpoints;
        transfers that overlap it in time queue into later gaps.  When
        ``earliest_start`` is given the placement additionally starts no
        earlier than it (while ``requested_at`` stays ``at``, so the wait
        shows up as queued time) — the hook availability-gated downloads
        ride on.
        """
        if at < 0:
            raise ValueError("transfer request time must be non-negative")
        return self.plan_and_commit(source, destination, num_bytes, at, earliest_start)

    def plan_and_commit(
        self,
        source: str,
        destination: str,
        num_bytes: int,
        at: float,
        earliest_start: Optional[float] = None,
    ) -> ScheduledTransfer:
        """Single-pass plan + commit.

        Reuses the placement memoized by a preceding ``preview`` /
        ``estimate`` with the same arguments at the current epoch — the
        estimate-then-commit pattern every actor follows plans exactly once.
        """
        scheduled = self._plan(source, destination, num_bytes, at, earliest_start)
        self._commit(scheduled)
        return scheduled

    def _commit(self, scheduled: ScheduledTransfer) -> None:
        """Reserve a planned transfer and refresh the incremental indexes."""
        interval = (scheduled.started_at, scheduled.finished_at)
        endpoints = {scheduled.source, scheduled.destination}
        for endpoint in endpoints:
            bisect.insort(self._busy.setdefault(endpoint, []), interval)
            boundaries = self._boundaries.get(endpoint)
            if boundaries is not None:
                bisect.insort(boundaries, (scheduled.started_at, 1))
                bisect.insort(boundaries, (scheduled.finished_at, -1))
            previous_end = self._max_end.get(endpoint, 0.0)
            if scheduled.finished_at > previous_end:
                self._max_end[endpoint] = scheduled.finished_at
            # A reservation starting at or after everything already committed
            # on the endpoint only extends the timeline — it cannot raise
            # concurrency anywhere, so the cached saturation sweep survives.
            # Anything placed into the existing schedule drops it.
            if self.capacity(endpoint) > 1 and scheduled.started_at < previous_end:
                self._saturated_cache.pop(endpoint, None)
            self._backlog_cache.pop(endpoint, None)
        self.log.append(scheduled)
        # Accumulated in log-append order, so the running totals stay
        # bit-identical to summing the log.
        self._queued_total += scheduled.queued_time
        self._wire_total += scheduled.duration
        self._plan_cache.clear()
        self.epoch += 1
        if self.sanitizer is not None:
            self.sanitizer.check_reservation(self, scheduled)

    @property
    def total_queued_time(self) -> float:
        """Seconds transfers spent waiting for busy endpoints, summed.

        A running counter updated at commit time — never an O(log-length)
        scan.
        """
        return self._queued_total

    @property
    def total_wire_time(self) -> float:
        """Pure transfer time (no queueing) of every committed transfer.

        A running counter updated at commit time — never an O(log-length)
        scan.
        """
        return self._wire_total


class Topology:
    """Builder for a multi-site storage topology.

    A topology names the *storage replicas* artifacts are distributed to
    (each with a parallel capacity, the number of transfers it can serve at
    once), assigns every cluster a *home replica* reached over its LAN link,
    and describes the WAN links between sites.  Reaching a remote replica
    composes the cluster's LAN link with the WAN link between its home site
    and the remote one: latencies add, bandwidth is the bottleneck of the
    two hops.  ``build_scheduler`` materialises the whole layout into a
    capacity-aware :class:`LinkScheduler` the event-stream
    :class:`~repro.sched.actors.NetworkActor` can place transfers on.

    With a single replica of capacity 1 the topology degenerates to the
    serial single-endpoint model earlier releases hard-coded, bit-identically.

    Args:
        default_link: LAN link used for clusters added without an explicit
            one (also the materialised network's default link).
        default_wan_link: link assumed between two sites with no explicit
            :meth:`set_wan_link` override.
    """

    def __init__(
        self,
        default_link: Optional[NetworkLink] = None,
        default_wan_link: Optional[NetworkLink] = None,
    ):
        self.default_link = default_link or NetworkLink(latency_s=0.005, bandwidth_bytes_per_s=100e6)
        self.default_wan_link = default_wan_link or NetworkLink(latency_s=0.05, bandwidth_bytes_per_s=50e6)
        #: replica name -> parallel capacity, in declaration order (the
        #: order breaks least-loaded selection ties deterministically).
        self._replicas: Dict[str, int] = {}
        self._home: Dict[str, str] = {}
        self._lan: Dict[str, NetworkLink] = {}
        self._wan: Dict[Tuple[str, str], NetworkLink] = {}

    # ------------------------------------------------------------------ builder
    def add_replica(self, name: str, capacity: int = 1) -> "Topology":
        """Declare a storage replica able to serve ``capacity`` parallel transfers."""
        if name in self._replicas or name in self._home:
            raise ValueError(f"endpoint name '{name}' is already in use")
        if capacity < 1:
            raise ValueError("replica capacity must be at least 1")
        self._replicas[name] = int(capacity)
        return self

    def add_cluster(self, name: str, replica: str, link: Optional[NetworkLink] = None) -> "Topology":
        """Attach a cluster to its home ``replica`` over ``link`` (its LAN)."""
        if name in self._replicas or name in self._home:
            raise ValueError(f"endpoint name '{name}' is already in use")
        if replica not in self._replicas:
            raise ValueError(f"unknown replica '{replica}'; declare it with add_replica first")
        self._home[name] = replica
        self._lan[name] = link or self.default_link
        return self

    def set_wan_link(
        self, site_a: str, site_b: str, link: NetworkLink, symmetric: bool = True
    ) -> "Topology":
        """Override the WAN link between two replica sites."""
        for site in (site_a, site_b):
            if site not in self._replicas:
                raise ValueError(f"unknown replica '{site}'")
        if site_a == site_b:
            raise ValueError("a WAN link connects two distinct sites")
        self._wan[(site_a, site_b)] = link
        if symmetric:
            self._wan[(site_b, site_a)] = link
        return self

    # ------------------------------------------------------------------ queries
    @property
    def replicas(self) -> List[str]:
        """Replica names in declaration order."""
        return list(self._replicas)

    @property
    def clusters(self) -> List[str]:
        """Cluster names in declaration order."""
        return list(self._home)

    def capacity(self, replica: str) -> int:
        """Parallel capacity of one replica."""
        return self._replicas[replica]

    def home_replica(self, cluster: str) -> str:
        """The replica a cluster reaches over its LAN link."""
        return self._home[cluster]

    def wan_link(self, site_a: str, site_b: str) -> NetworkLink:
        """The WAN link between two sites (the default when not overridden)."""
        return self._wan.get((site_a, site_b), self.default_wan_link)

    def path_link(self, cluster: str, replica: str) -> NetworkLink:
        """Effective single-hop link for ``cluster`` <-> ``replica``.

        The home replica is one LAN hop; a remote replica composes LAN and
        WAN (latencies add, bandwidth is the slower hop).
        """
        lan = self._lan[cluster]
        home = self._home[cluster]
        if replica == home:
            return lan
        wan = self.wan_link(home, replica)
        return NetworkLink(
            latency_s=lan.latency_s + wan.latency_s,
            bandwidth_bytes_per_s=min(lan.bandwidth_bytes_per_s, wan.bandwidth_bytes_per_s),
        )

    def cluster_path_link(self, cluster_a: str, cluster_b: str) -> NetworkLink:
        """Effective single-hop link for direct ``cluster_a`` -> ``cluster_b`` traffic.

        Peers at the same site compose their two LAN hops; peers at
        different sites additionally cross the WAN between their homes.
        Latencies add, bandwidth is the slowest hop — the pricing behind the
        hierarchical intra-group shuttles (cheap, LAN-only) versus gossip
        exchanges that may span sites.
        """
        lan_a, lan_b = self._lan[cluster_a], self._lan[cluster_b]
        home_a, home_b = self._home[cluster_a], self._home[cluster_b]
        latency_s = lan_a.latency_s + lan_b.latency_s
        bandwidth_bytes_per_s = min(lan_a.bandwidth_bytes_per_s, lan_b.bandwidth_bytes_per_s)
        if home_a != home_b:
            wan = self.wan_link(home_a, home_b)
            latency_s += wan.latency_s
            bandwidth_bytes_per_s = min(bandwidth_bytes_per_s, wan.bandwidth_bytes_per_s)
        return NetworkLink(latency_s=latency_s, bandwidth_bytes_per_s=bandwidth_bytes_per_s)

    # -------------------------------------------------------------- materialise
    def build_network(self) -> NetworkModel:
        """Materialise every cluster<->replica and replica<->replica link.

        Cluster<->cluster paths (used only by the peer-exchange policies)
        are *not* materialised eagerly — that would be O(n²) entries paid by
        every event-stream run — but resolved and cached on first use via
        the network's link resolver.
        """
        if not self._replicas:
            raise ValueError("a topology needs at least one replica")
        network = NetworkModel(default_link=self.default_link)
        for cluster in self._home:
            for replica in self._replicas:
                network.set_link(cluster, replica, self.path_link(cluster, replica))
        replicas = list(self._replicas)
        for site_a in replicas:
            for site_b in replicas:
                if site_a != site_b:
                    network.set_link(site_a, site_b, self.wan_link(site_a, site_b), symmetric=False)

        def resolve(source: str, destination: str) -> Optional[NetworkLink]:
            if source in self._home and destination in self._home:
                return self.cluster_path_link(source, destination)
            return None

        network.set_link_resolver(resolve)
        return network

    def build_scheduler(self) -> LinkScheduler:
        """A capacity-aware scheduler over the materialised network."""
        return LinkScheduler(self.build_network(), capacities=dict(self._replicas))
