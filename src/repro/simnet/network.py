"""Point-to-point network model for model-weight transfers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class NetworkLink:
    """A directed link with latency (seconds) and bandwidth (bytes/second)."""

    latency_s: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` across this link."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s


class NetworkModel:
    """Holds per-pair links with a configurable default.

    Keys are (source, destination) endpoint names.  When no specific link is
    registered the default link applies, which keeps experiment setup short:
    the paper's clusters sit on one LAN where all links are alike.
    """

    def __init__(self, default_link: Optional[NetworkLink] = None):
        self.default_link = default_link or NetworkLink(latency_s=0.005, bandwidth_bytes_per_s=100e6)
        self._links: Dict[Tuple[str, str], NetworkLink] = {}

    def set_link(self, source: str, destination: str, link: NetworkLink, symmetric: bool = True) -> None:
        """Register a link between two endpoints."""
        self._links[(source, destination)] = link
        if symmetric:
            self._links[(destination, source)] = link

    def link(self, source: str, destination: str) -> NetworkLink:
        """The link between two endpoints (a zero-cost loopback for self-transfers)."""
        if source == destination:
            return NetworkLink(latency_s=0.0, bandwidth_bytes_per_s=10e9)
        return self._links.get((source, destination), self.default_link)

    def transfer_time(self, source: str, destination: str, num_bytes: int) -> float:
        """Seconds to move a payload from ``source`` to ``destination``."""
        return self.link(source, destination).transfer_time(num_bytes)
