"""Simulated clocks.

Every aggregator (and the shared chain / storage infrastructure) owns a
:class:`SimClock`.  Clocks advance by explicit amounts — training time,
transfer time, waiting for a synchronisation barrier — so a run's "Time"
column is reproducible and independent of the host machine's speed.
"""

from __future__ import annotations


class SimClock:
    """A monotonically non-decreasing simulated clock measured in seconds."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("start time must be non-negative")
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance a clock by a negative duration")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` if it is in the future.

        Returns the idle time spent waiting (zero when the timestamp has
        already passed) — this is how synchronous-mode idle time is measured.
        """
        if timestamp <= self._now:
            return 0.0
        waited = timestamp - self._now
        self._now = float(timestamp)
        return waited

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SimClock(t={self._now:.2f}s)"
