"""Discrete-event primitives: timestamped events and a heap-backed queue.

The simulation substrate was originally driven by ad-hoc loops that scanned
every actor to find the next one to run (an O(n) operation per step).  The
:class:`EventQueue` replaces that scan with a binary heap: scheduling and
popping the earliest event are both O(log n), which is what lets the
orchestration layer scale to large federations.

Ordering is total and deterministic: events are popped by
``(time, priority, key, seq)``.  ``key`` is a caller-chosen label (the
orchestrators use the actor name) so that simultaneous events resolve in a
reproducible, machine-independent order, exactly mirroring the
``min(..., key=lambda a: (a.clock.now(), a.name))`` tie-breaking of the old
scan-based loops.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional


class Event:
    """One scheduled action in simulated time.

    Events compare by ``(time, priority, key, seq)`` so heap order is total
    even when callbacks are not comparable.  A popped event whose
    :attr:`cancelled` flag is set is silently skipped — cancellation is O(1)
    and the heap is never re-built.
    """

    __slots__ = ("time", "priority", "key", "seq", "action", "cancelled")

    def __init__(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        key: str = "",
        seq: int = 0,
    ):
        if time < 0:
            raise ValueError("event time must be non-negative")
        self.time = float(time)
        self.priority = int(priority)
        self.key = str(key)
        self.seq = int(seq)
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        self.cancelled = True

    @property
    def sort_key(self):
        return (self.time, self.priority, self.key, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.2f}, prio={self.priority}, key={self.key!r}{flag})"


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self):
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._pushes = 0
        self._pops = 0

    def push(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        key: str = "",
    ) -> Event:
        """Schedule ``action`` at simulated ``time`` and return its event."""
        event = Event(time, action, priority=priority, key=key, seq=next(self._counter))
        heapq.heappush(self._heap, event)
        self._pushes += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises ``IndexError`` when the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._pops += 1
            return event
        raise IndexError("pop from an empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None

    @property
    def stats(self) -> dict:
        """Lifetime push/pop counters (used by the scalability benchmark)."""
        return {"pushes": self._pushes, "pops": self._pops}
