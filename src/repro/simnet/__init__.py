"""Testbed simulation: clocks, hardware heterogeneity, links and resources.

The paper's evaluation runs on two physical testbeds (a 4-node GPU cluster and
a heterogeneous edge cluster of Raspberry Pi 400s, Jetson Nanos and Docker
containers).  This package provides the simulated equivalent:

* :mod:`repro.simnet.clock` — per-actor simulated clocks advancing in
  simulated seconds, so "Time" columns in the reproduced tables reflect the
  same structure (compute time + transfer time + waiting/idle time) as the
  paper's wall-clock measurements.
* :mod:`repro.simnet.hardware` — device profiles with relative training
  throughput, used to model stragglers and heterogeneity.
* :mod:`repro.simnet.network` — latency/bandwidth links used for model
  transfer times to and from the storage layer, the
  :class:`~repro.simnet.network.LinkScheduler` that adds capacity-bounded
  endpoint contention for the event-stream mode, and the
  :class:`~repro.simnet.network.Topology` builder for multi-site storage
  layouts (replicas with parallel capacity, LAN/WAN links).
* :mod:`repro.simnet.replication` — the per-object availability ledger
  (:class:`~repro.simnet.replication.ReplicaDirectory`) recording when each
  uploaded artifact becomes present at each storage replica, so replication
  traffic is scheduled and downloads are availability-gated instead of every
  site holding every object for free.
* :mod:`repro.simnet.faults` — the deterministic fault-injection plan
  (:class:`~repro.simnet.faults.FaultPlan`: client churn, replica outages
  with scheduled recovery, pairwise WAN partitions) plus the resilience
  primitives (:class:`~repro.simnet.faults.ResiliencePolicy`,
  :class:`~repro.simnet.faults.CircuitBreaker`) the event-stream fabric
  layers on top of it.
* :mod:`repro.simnet.resources` — CPU / memory usage accounting producing the
  paper's Table 7 system-overhead metrics.
"""

from repro.simnet.clock import SimClock
from repro.simnet.events import Event, EventQueue
from repro.simnet.hardware import (
    DOCKER_CONTAINER,
    EDGE_CPU_NODE,
    GPU_NODE,
    JETSON_NANO,
    RASPBERRY_PI_400,
    HardwareProfile,
    profile_by_name,
)
from repro.simnet.faults import (
    CircuitBreaker,
    FaultPlan,
    ReplicaOutage,
    ResiliencePolicy,
    WanPartition,
)
from repro.simnet.network import (
    LinkScheduler,
    NetworkLink,
    NetworkModel,
    ScheduledTransfer,
    Topology,
)
from repro.simnet.reference import ReferenceLinkScheduler
from repro.simnet.replication import REPLICATION_MODES, ReplicaDirectory
from repro.simnet.resources import ProcessSample, ResourceMonitor, ResourceReport

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "DOCKER_CONTAINER",
    "EDGE_CPU_NODE",
    "GPU_NODE",
    "JETSON_NANO",
    "RASPBERRY_PI_400",
    "HardwareProfile",
    "profile_by_name",
    "CircuitBreaker",
    "FaultPlan",
    "ReplicaOutage",
    "ResiliencePolicy",
    "WanPartition",
    "LinkScheduler",
    "ReferenceLinkScheduler",
    "NetworkLink",
    "NetworkModel",
    "ScheduledTransfer",
    "Topology",
    "REPLICATION_MODES",
    "ReplicaDirectory",
    "ProcessSample",
    "ResourceMonitor",
    "ResourceReport",
]
