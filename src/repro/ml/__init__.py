"""Minimal neural-network engine used as the training substrate for UnifyFL.

The paper trains PyTorch models (a 62K-parameter CNN on CIFAR-10 and VGG16 on
Tiny ImageNet).  This package provides an equivalent, dependency-free engine
built on numpy: layers with explicit forward/backward passes, classification
losses, SGD/Adam/Yogi optimizers, model definitions, evaluation metrics and a
weight (de)serialization format used by the distributed-storage layer.

The public surface mirrors what the federated-learning layer (``repro.fl``)
and the UnifyFL core (``repro.core``) need:

* :class:`~repro.ml.models.Model` — a sequential container exposing
  ``get_weights`` / ``set_weights`` as lists of numpy arrays.
* :func:`~repro.ml.models.build_model` — registry-based model construction.
* :class:`~repro.ml.optim.SGD`, :class:`~repro.ml.optim.Adam`,
  :class:`~repro.ml.optim.Yogi` — local and server-side optimizers.
* :func:`~repro.ml.serialization.weights_to_bytes` /
  :func:`~repro.ml.serialization.weights_from_bytes` — the wire format stored
  in the IPFS substrate.
"""

from repro.ml.distillation import (
    DistillationLoss,
    distill,
    ensemble_soft_labels,
    softmax_with_temperature,
)
from repro.ml.layers import (
    BatchNorm1d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2d,
    ReLU,
    Sequential,
    Softmax,
)
from repro.ml.losses import CrossEntropyLoss, Loss, MSELoss
from repro.ml.metrics import accuracy_score, evaluate_model, top_k_accuracy
from repro.ml.models import (
    MLP,
    MiniVGG,
    Model,
    SimpleCNN,
    available_models,
    build_model,
    count_parameters,
)
from repro.ml.optim import SGD, Adagrad, Adam, Optimizer, Yogi, build_optimizer
from repro.ml.serialization import (
    weights_checksum,
    weights_from_bytes,
    weights_to_bytes,
)
from repro.ml.tensor_utils import (
    flatten_weights,
    unflatten_weights,
    weights_distance,
    weights_norm,
    zeros_like_weights,
)

__all__ = [
    "DistillationLoss",
    "distill",
    "ensemble_soft_labels",
    "softmax_with_temperature",
    "BatchNorm1d",
    "Conv2d",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "MaxPool2d",
    "ReLU",
    "Sequential",
    "Softmax",
    "CrossEntropyLoss",
    "Loss",
    "MSELoss",
    "accuracy_score",
    "evaluate_model",
    "top_k_accuracy",
    "MLP",
    "MiniVGG",
    "Model",
    "SimpleCNN",
    "available_models",
    "build_model",
    "count_parameters",
    "SGD",
    "Adagrad",
    "Adam",
    "Optimizer",
    "Yogi",
    "build_optimizer",
    "weights_checksum",
    "weights_from_bytes",
    "weights_to_bytes",
    "flatten_weights",
    "unflatten_weights",
    "weights_distance",
    "weights_norm",
    "zeros_like_weights",
]
