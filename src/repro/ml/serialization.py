"""Serialization of model weights to the byte format stored on IPFS.

UnifyFL stores aggregated model weights "in a serialized format" on IPFS and
passes only the resulting content identifier (CID) through the smart
contract.  This module defines that wire format: a small self-describing
binary container with a magic header, a tensor count, and for each tensor its
dtype, shape and raw bytes.  ``weights_checksum`` gives the stable digest the
orchestrator and tests use to assert that every aggregator retrieved an
identical model.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List, Sequence

import numpy as np

_MAGIC = b"UFLW"
_VERSION = 1

_DTYPE_CODES = {
    "float64": 0,
    "float32": 1,
    "int64": 2,
    "int32": 3,
}
_CODE_DTYPES = {code: np.dtype(name) for name, code in _DTYPE_CODES.items()}


class SerializationError(ValueError):
    """Raised when a byte payload is not a valid weight container."""


def weights_to_bytes(weights: Sequence[np.ndarray]) -> bytes:
    """Serialize a list of numpy arrays to a compact binary payload."""
    parts: List[bytes] = [_MAGIC, struct.pack("<BI", _VERSION, len(weights))]
    for tensor in weights:
        arr = np.ascontiguousarray(tensor)
        dtype_name = arr.dtype.name
        if dtype_name not in _DTYPE_CODES:
            arr = arr.astype(np.float64)
            dtype_name = "float64"
        parts.append(struct.pack("<BB", _DTYPE_CODES[dtype_name], arr.ndim))
        parts.append(struct.pack(f"<{arr.ndim}I", *arr.shape))
        raw = arr.tobytes()
        parts.append(struct.pack("<Q", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def weights_from_bytes(payload: bytes) -> List[np.ndarray]:
    """Deserialize a payload produced by :func:`weights_to_bytes`.

    Raises:
        SerializationError: when the payload is truncated or malformed.
    """
    if len(payload) < 9 or payload[:4] != _MAGIC:
        raise SerializationError("payload is not a UnifyFL weight container")
    version, count = struct.unpack_from("<BI", payload, 4)
    if version != _VERSION:
        raise SerializationError(f"unsupported weight container version {version}")
    offset = 9
    weights: List[np.ndarray] = []
    for _ in range(count):
        if offset + 2 > len(payload):
            raise SerializationError("truncated tensor header")
        dtype_code, ndim = struct.unpack_from("<BB", payload, offset)
        offset += 2
        if dtype_code not in _CODE_DTYPES:
            raise SerializationError(f"unknown dtype code {dtype_code}")
        if offset + 4 * ndim > len(payload):
            raise SerializationError("truncated tensor shape")
        shape = struct.unpack_from(f"<{ndim}I", payload, offset) if ndim else ()
        offset += 4 * ndim
        if offset + 8 > len(payload):
            raise SerializationError("truncated tensor length")
        (nbytes,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        if offset + nbytes > len(payload):
            raise SerializationError("truncated tensor data")
        dtype = _CODE_DTYPES[dtype_code]
        expected = int(np.prod(shape)) * dtype.itemsize if shape else dtype.itemsize
        if nbytes != expected:
            raise SerializationError(
                f"tensor byte length {nbytes} does not match shape {shape} and dtype {dtype}"
            )
        arr = np.frombuffer(payload[offset : offset + nbytes], dtype=dtype).reshape(shape)
        weights.append(np.array(arr, copy=True))
        offset += nbytes
    if offset != len(payload):
        raise SerializationError("trailing bytes after the final tensor")
    return weights


def weights_checksum(weights: Sequence[np.ndarray]) -> str:
    """Hex SHA-256 digest of the serialized weights (stable across processes)."""
    return hashlib.sha256(weights_to_bytes(weights)).hexdigest()
