"""Serialization of model weights to the byte format stored on IPFS.

UnifyFL stores aggregated model weights "in a serialized format" on IPFS and
passes only the resulting content identifier (CID) through the smart
contract.  This module defines that wire format: a small self-describing
binary container with a magic header, a tensor count, and for each tensor its
dtype, shape and raw bytes.  ``weights_checksum`` gives the stable digest the
orchestrator and tests use to assert that every aggregator retrieved an
identical model.

Serialization is memoized by content: aggregators republish unchanged models
round after round (a straggler's stale global, gossip re-offers, checksum
probes next to uploads), so ``weights_to_bytes`` / ``weights_checksum`` key a
small LRU on :func:`weights_fingerprint` — a digest over the tensors' dtypes,
shapes and raw buffers — and hand back the cached payload instead of packing
the same megabytes again.  The payload for a given fingerprint is unique, so
the memo can never change a byte of output.
"""

from __future__ import annotations

import hashlib
import struct
from collections import OrderedDict
from typing import List, Sequence

import numpy as np

_MAGIC = b"UFLW"
_VERSION = 1

#: fingerprint -> [payload, checksum-or-None] memo; bounded so long gossip
#: runs with high model churn stay O(recent models) in memory.  The checksum
#: slot fills lazily on the first ``weights_checksum`` for that content.
_MEMO_CAPACITY = 16
_memo: "OrderedDict[str, List]" = OrderedDict()

_DTYPE_CODES = {
    "float64": 0,
    "float32": 1,
    "int64": 2,
    "int32": 3,
}
_CODE_DTYPES = {code: np.dtype(name) for name, code in _DTYPE_CODES.items()}


class SerializationError(ValueError):
    """Raised when a byte payload is not a valid weight container."""


def weights_fingerprint(weights: Sequence[np.ndarray]) -> str:
    """Hex SHA-256 content fingerprint of a weight list.

    Covers the tensor count plus every tensor's post-coercion dtype, shape
    and raw buffer — exactly the information :func:`weights_to_bytes` packs
    — so two weight lists share a fingerprint iff they serialize to the
    same payload.  One streaming hash pass, no container packing.
    """
    digest = hashlib.sha256()
    digest.update(struct.pack("<I", len(weights)))
    for tensor in weights:
        arr = np.ascontiguousarray(tensor)
        if arr.dtype.name not in _DTYPE_CODES:
            arr = arr.astype(np.float64)
        digest.update(arr.dtype.name.encode("ascii"))
        digest.update(struct.pack(f"<B{arr.ndim}I", arr.ndim, *arr.shape))
        digest.update(arr.data)
    return digest.hexdigest()


def _serialize(weights: Sequence[np.ndarray]) -> bytes:
    parts: List[bytes] = [_MAGIC, struct.pack("<BI", _VERSION, len(weights))]
    for tensor in weights:
        arr = np.ascontiguousarray(tensor)
        dtype_name = arr.dtype.name
        if dtype_name not in _DTYPE_CODES:
            arr = arr.astype(np.float64)
            dtype_name = "float64"
        parts.append(struct.pack("<BB", _DTYPE_CODES[dtype_name], arr.ndim))
        parts.append(struct.pack(f"<{arr.ndim}I", *arr.shape))
        raw = arr.tobytes()
        parts.append(struct.pack("<Q", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def _memo_entry(weights: Sequence[np.ndarray]) -> List:
    """The ``[payload, checksum-or-None]`` memo slot for ``weights``."""
    fingerprint = weights_fingerprint(weights)
    entry = _memo.get(fingerprint)
    if entry is not None:
        _memo.move_to_end(fingerprint)
        return entry
    entry = [_serialize(weights), None]
    _memo[fingerprint] = entry
    if len(_memo) > _MEMO_CAPACITY:
        _memo.popitem(last=False)
    return entry


def clear_serialization_memo() -> None:
    """Drop every memoized payload (test isolation hook)."""
    _memo.clear()


def weights_to_bytes(weights: Sequence[np.ndarray]) -> bytes:
    """Serialize a list of numpy arrays to a compact binary payload.

    Content-memoized: re-serializing an unchanged model (same dtypes, shapes
    and bytes) returns the cached payload after one fingerprint pass.
    """
    return _memo_entry(weights)[0]


def weights_from_bytes(payload: bytes) -> List[np.ndarray]:
    """Deserialize a payload produced by :func:`weights_to_bytes`.

    Raises:
        SerializationError: when the payload is truncated or malformed.
    """
    if len(payload) < 9 or payload[:4] != _MAGIC:
        raise SerializationError("payload is not a UnifyFL weight container")
    version, count = struct.unpack_from("<BI", payload, 4)
    if version != _VERSION:
        raise SerializationError(f"unsupported weight container version {version}")
    offset = 9
    weights: List[np.ndarray] = []
    for _ in range(count):
        if offset + 2 > len(payload):
            raise SerializationError("truncated tensor header")
        dtype_code, ndim = struct.unpack_from("<BB", payload, offset)
        offset += 2
        if dtype_code not in _CODE_DTYPES:
            raise SerializationError(f"unknown dtype code {dtype_code}")
        if offset + 4 * ndim > len(payload):
            raise SerializationError("truncated tensor shape")
        shape = struct.unpack_from(f"<{ndim}I", payload, offset) if ndim else ()
        offset += 4 * ndim
        if offset + 8 > len(payload):
            raise SerializationError("truncated tensor length")
        (nbytes,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        if offset + nbytes > len(payload):
            raise SerializationError("truncated tensor data")
        dtype = _CODE_DTYPES[dtype_code]
        expected = int(np.prod(shape)) * dtype.itemsize if shape else dtype.itemsize
        if nbytes != expected:
            raise SerializationError(
                f"tensor byte length {nbytes} does not match shape {shape} and dtype {dtype}"
            )
        arr = np.frombuffer(payload[offset : offset + nbytes], dtype=dtype).reshape(shape)
        weights.append(np.array(arr, copy=True))
        offset += nbytes
    if offset != len(payload):
        raise SerializationError("trailing bytes after the final tensor")
    return weights


def weights_checksum(weights: Sequence[np.ndarray]) -> str:
    """Hex SHA-256 digest of the serialized weights (stable across processes).

    Shares the serialization memo with :func:`weights_to_bytes`: a checksum
    probe next to an upload of the same model hashes the payload once and
    reuses it afterwards.
    """
    entry = _memo_entry(weights)
    if entry[1] is None:
        entry[1] = hashlib.sha256(entry[0]).hexdigest()
    return entry[1]
