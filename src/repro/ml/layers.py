"""Neural-network layers with explicit forward and backward passes.

Every layer stores what it needs from the forward pass to compute gradients
in ``backward``.  Parameters and their gradients are exposed through
``parameters()`` / ``gradients()`` so the optimizers in :mod:`repro.ml.optim`
and the weight exchange in :mod:`repro.fl` can treat all layers uniformly.

The convolution and pooling layers use an im2col formulation, which keeps the
implementation vectorised enough that the federated experiments (hundreds of
rounds over small synthetic images) complete quickly on a CPU.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`.  Layers that
    hold parameters override :meth:`parameters` and :meth:`gradients` to
    return aligned lists of arrays.
    """

    #: whether the layer is in training mode (affects Dropout / BatchNorm).
    training: bool = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[np.ndarray]:
        """Trainable parameter tensors (may be empty)."""
        return []

    def gradients(self) -> List[np.ndarray]:
        """Gradients aligned with :meth:`parameters` (may be empty)."""
        return []

    def set_parameters(self, params: List[np.ndarray]) -> None:
        """Replace the layer's parameters with copies of ``params``."""
        own = self.parameters()
        if len(params) != len(own):
            raise ValueError(
                f"{type(self).__name__} expected {len(own)} parameter tensors, got {len(params)}"
            )
        for target, source in zip(own, params):
            if target.shape != source.shape:
                raise ValueError(
                    f"{type(self).__name__} parameter shape mismatch: "
                    f"{target.shape} vs {source.shape}"
                )
            target[...] = source

    def train(self) -> None:
        self.training = True

    def eval(self) -> None:
        self.training = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: Optional[np.random.Generator] = None):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = rng.uniform(-limit, limit, size=(in_features, out_features)).astype(np.float64)
        self.bias = np.zeros(out_features, dtype=np.float64)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"Dense expects a 2-D input, got shape {x.shape}")
        if x.shape[1] != self.weight.shape[0]:
            raise ValueError(
                f"Dense expects input dim {self.weight.shape[0]}, got {x.shape[1]}"
            )
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight = self._input.T @ grad_output
        self.grad_bias = grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def parameters(self) -> List[np.ndarray]:
        return [self.weight, self.bias]

    def gradients(self) -> List[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Softmax(Layer):
    """Numerically stable softmax over the last axis.

    Normally the fused :class:`repro.ml.losses.CrossEntropyLoss` is used for
    training and this layer only appears at inference time.
    """

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._output = exp / exp.sum(axis=-1, keepdims=True)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        s = self._output
        dot = (grad_output * s).sum(axis=-1, keepdims=True)
        return s * (grad_output - dot)


class Flatten(Layer):
    """Collapse all dimensions except the batch dimension."""

    def __init__(self) -> None:
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._input_shape)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class BatchNorm1d(Layer):
    """Batch normalisation over a 2-D (batch, features) input."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.gamma = np.ones(num_features, dtype=np.float64)
        self.beta = np.zeros(num_features, dtype=np.float64)
        self.grad_gamma = np.zeros_like(self.gamma)
        self.grad_beta = np.zeros_like(self.beta)
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)
        self.momentum = momentum
        self.eps = eps
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError("BatchNorm1d expects a 2-D input")
        if self.training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean = self.running_mean
            var = self.running_var
        x_hat = (x - mean) / np.sqrt(var + self.eps)
        self._cache = (x_hat, var, x - mean)
        return self.gamma * x_hat + self.beta

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, var, centered = self._cache
        n = grad_output.shape[0]
        self.grad_gamma = (grad_output * x_hat).sum(axis=0)
        self.grad_beta = grad_output.sum(axis=0)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        dx_hat = grad_output * self.gamma
        dvar = (dx_hat * centered * -0.5 * inv_std**3).sum(axis=0)
        dmean = (-dx_hat * inv_std).sum(axis=0) + dvar * (-2.0 * centered.mean(axis=0))
        return dx_hat * inv_std + dvar * 2.0 * centered / n + dmean / n

    def parameters(self) -> List[np.ndarray]:
        return [self.gamma, self.beta]

    def gradients(self) -> List[np.ndarray]:
        return [self.grad_gamma, self.grad_beta]


def _im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Rearrange (N, C, H, W) image patches into columns for convolution."""
    n, c, h, w = x.shape
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for i in range(kernel):
        i_max = i + stride * out_h
        for j in range(kernel):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)
    return cols, out_h, out_w


def _col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Inverse of :func:`_im2col`, accumulating overlapping patches."""
    n, c, h, w = input_shape
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kernel):
        i_max = i + stride * out_h
        for j in range(kernel):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2d(Layer):
    """2-D convolution over (N, C, H, W) inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ValueError("Conv2d dimensions must be positive")
        if padding < 0:
            raise ValueError("padding must be non-negative")
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        fan_out = out_channels * kernel_size * kernel_size
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        self.weight = rng.uniform(
            -limit, limit, size=(out_channels, in_channels, kernel_size, kernel_size)
        ).astype(np.float64)
        self.bias = np.zeros(out_channels, dtype=np.float64)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int], int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects a 4-D input, got shape {x.shape}")
        if x.shape[1] != self.weight.shape[1]:
            raise ValueError(
                f"Conv2d expects {self.weight.shape[1]} input channels, got {x.shape[1]}"
            )
        cols, out_h, out_w = _im2col(x, self.kernel_size, self.stride, self.padding)
        w_col = self.weight.reshape(self.weight.shape[0], -1)
        out = cols @ w_col.T + self.bias
        n = x.shape[0]
        self._cache = (cols, x.shape, out_h, out_w)
        return out.reshape(n, out_h, out_w, -1).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, input_shape, out_h, out_w = self._cache
        n = input_shape[0]
        grad_cols = grad_output.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, -1)
        w_col = self.weight.reshape(self.weight.shape[0], -1)
        self.grad_weight = (grad_cols.T @ cols).reshape(self.weight.shape)
        self.grad_bias = grad_cols.sum(axis=0)
        grad_input_cols = grad_cols @ w_col
        return _col2im(
            grad_input_cols,
            input_shape,
            self.kernel_size,
            self.stride,
            self.padding,
            out_h,
            out_w,
        )

    def parameters(self) -> List[np.ndarray]:
        return [self.weight, self.bias]

    def gradients(self) -> List[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class MaxPool2d(Layer):
    """Max pooling over non-overlapping or strided windows of a 4-D input."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, Tuple[int, ...], int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError("MaxPool2d expects a 4-D input")
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        # Treat each channel independently through im2col on a (N*C, 1, H, W) view.
        reshaped = x.reshape(n * c, 1, h, w)
        cols, _, _ = _im2col(reshaped, k, s, 0)
        cols = cols.reshape(n * c * out_h * out_w, k * k)
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        self._cache = (argmax, cols, x.shape, out_h, out_w)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax, cols, input_shape, out_h, out_w = self._cache
        n, c, h, w = input_shape
        k, s = self.kernel_size, self.stride
        grad_cols = np.zeros_like(cols)
        flat_grad = grad_output.reshape(-1)
        grad_cols[np.arange(grad_cols.shape[0]), argmax] = flat_grad
        grad_cols = grad_cols.reshape(n * c * out_h * out_w, 1 * k * k)
        grad_input = _col2im(grad_cols, (n * c, 1, h, w), k, s, 0, out_h, out_w)
        return grad_input.reshape(n, c, h, w)


class Sequential(Layer):
    """Chain of layers applied in order."""

    def __init__(self, layers: List[Layer]):
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def parameters(self) -> List[np.ndarray]:
        params: List[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> List[np.ndarray]:
        grads: List[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    def set_parameters(self, params: List[np.ndarray]) -> None:
        offset = 0
        for layer in self.layers:
            count = len(layer.parameters())
            layer.set_parameters(params[offset : offset + count])
            offset += count
        if offset != len(params):
            raise ValueError(
                f"Sequential expected {offset} parameter tensors, got {len(params)}"
            )

    def train(self) -> None:
        self.training = True
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        self.training = False
        for layer in self.layers:
            layer.eval()
