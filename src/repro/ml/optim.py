"""Optimizers used by clients (local training) and servers (federated updates).

The paper's clients use SGD with learning rate 0.01; its flexibility study
(Table 5 Run 4) mixes FedAvg with FedYogi server-side optimisation.  Yogi and
Adagrad are implemented here so :class:`repro.fl.strategy.FedYogi` and
``FedAdagrad`` can operate on pseudo-gradients, exactly as in the adaptive
federated optimisation literature (Reddi et al., 2021).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class Optimizer:
    """Base optimizer operating on aligned lists of parameters and gradients."""

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        """Update ``params`` in place using ``grads``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any accumulated state (momentum, second moments)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must have equal length")
        if self.momentum > 0 and self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for i, (p, g) in enumerate(zip(params, grads)):
            if self.weight_decay:
                g = g + self.weight_decay * p
            if self.momentum > 0:
                assert self._velocity is not None
                self._velocity[i] = self.momentum * self._velocity[i] + g
                g = self._velocity[i]
            p -= self.learning_rate * g

    def reset(self) -> None:
        self._velocity = None


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Optional[List[np.ndarray]] = None
        self._v: Optional[List[np.ndarray]] = None
        self._t = 0

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must have equal length")
        if self._m is None or self._v is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        for i, (p, g) in enumerate(zip(params, grads)):
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * g
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * g**2
            m_hat = self._m[i] / (1 - self.beta1**self._t)
            v_hat = self._v[i] / (1 - self.beta2**self._t)
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0


class Yogi(Optimizer):
    """Yogi optimizer: Adam variant with additive second-moment control.

    Used as the server optimizer in the FedYogi strategy.
    """

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.99,
        eps: float = 1e-3,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Optional[List[np.ndarray]] = None
        self._v: Optional[List[np.ndarray]] = None

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must have equal length")
        if self._m is None or self._v is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.full_like(p, 1e-6) for p in params]
        for i, (p, g) in enumerate(zip(params, grads)):
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * g
            g_sq = g**2
            self._v[i] = self._v[i] - (1 - self.beta2) * g_sq * np.sign(self._v[i] - g_sq)
            p -= self.learning_rate * self._m[i] / (np.sqrt(self._v[i]) + self.eps)

    def reset(self) -> None:
        self._m = None
        self._v = None


class Adagrad(Optimizer):
    """Adagrad optimizer; included for the FedAdagrad server strategy."""

    def __init__(self, learning_rate: float = 0.01, eps: float = 1e-8):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.eps = eps
        self._accum: Optional[List[np.ndarray]] = None

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must have equal length")
        if self._accum is None:
            self._accum = [np.zeros_like(p) for p in params]
        for i, (p, g) in enumerate(zip(params, grads)):
            self._accum[i] += g**2
            p -= self.learning_rate * g / (np.sqrt(self._accum[i]) + self.eps)

    def reset(self) -> None:
        self._accum = None


_OPTIMIZERS = {
    "sgd": SGD,
    "adam": Adam,
    "yogi": Yogi,
    "adagrad": Adagrad,
}


def build_optimizer(name: str, **kwargs) -> Optimizer:
    """Construct an optimizer by name (``sgd``, ``adam``, ``yogi``, ``adagrad``)."""
    key = name.lower()
    if key not in _OPTIMIZERS:
        raise ValueError(f"unknown optimizer '{name}'; available: {sorted(_OPTIMIZERS)}")
    return _OPTIMIZERS[key](**kwargs)
