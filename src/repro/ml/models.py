"""Model definitions used in the UnifyFL evaluation.

The paper trains two workloads (Table 4):

* a lightweight CNN with roughly 62K parameters on CIFAR-10 for the edge
  cluster, and
* VGG16 (138M parameters) on Tiny ImageNet for the GPU cluster.

Training a 138M-parameter network is neither feasible nor necessary for
reproducing the federated *dynamics* the paper measures, so :class:`MiniVGG`
keeps the VGG block structure (stacked 3x3 convolutions with max-pooling and a
fully connected head) at a width that trains in seconds on a CPU.  The
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.ml.layers import (
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.ml.losses import CrossEntropyLoss, Loss
from repro.ml.optim import Optimizer, SGD


class Model:
    """A trainable classifier wrapping a :class:`Sequential` network.

    The model exposes the weight-list interface used throughout the
    federated-learning stack: :meth:`get_weights` returns copies of every
    parameter tensor and :meth:`set_weights` installs a compatible list.
    """

    def __init__(self, network: Sequential, num_classes: int, input_shape: Tuple[int, ...]):
        self.network = network
        self.num_classes = num_classes
        self.input_shape = tuple(input_shape)

    # -- parameter exchange -------------------------------------------------
    def get_weights(self) -> List[np.ndarray]:
        """Copies of every trainable parameter tensor, in layer order."""
        return [np.array(p, copy=True) for p in self.network.parameters()]

    def set_weights(self, weights: List[np.ndarray]) -> None:
        """Install a weight list previously produced by :meth:`get_weights`."""
        self.network.set_parameters(weights)

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(int(np.prod(p.shape)) for p in self.network.parameters()))

    # -- training / inference ----------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return raw logits for a batch of inputs (evaluation mode)."""
        self.network.eval()
        logits = self.network.forward(x)
        self.network.train()
        return logits

    def predict_classes(self, x: np.ndarray) -> np.ndarray:
        """Return the argmax class label for each input."""
        return self.predict(x).argmax(axis=1)

    def train_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimizer: Optimizer,
        loss_fn: Optional[Loss] = None,
    ) -> float:
        """Run a single optimisation step on one minibatch and return its loss."""
        loss_fn = loss_fn or CrossEntropyLoss()
        self.network.train()
        logits = self.network.forward(x)
        loss, grad = loss_fn.forward(logits, y)
        self.network.backward(grad)
        optimizer.step(self.network.parameters(), self.network.gradients())
        return loss

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        batch_size: int = 32,
        optimizer: Optional[Optimizer] = None,
        loss_fn: Optional[Loss] = None,
        rng: Optional[np.random.Generator] = None,
        shuffle: bool = True,
    ) -> List[float]:
        """Train for ``epochs`` passes over (x, y); returns mean loss per epoch."""
        if len(x) != len(y):
            raise ValueError("x and y must have the same number of samples")
        if len(x) == 0:
            return []
        optimizer = optimizer or SGD(learning_rate=0.01)
        loss_fn = loss_fn or CrossEntropyLoss()
        rng = rng or np.random.default_rng(0)
        epoch_losses: List[float] = []
        n = len(x)
        for _ in range(epochs):
            order = rng.permutation(n) if shuffle else np.arange(n)
            losses: List[float] = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                losses.append(self.train_batch(x[idx], y[idx], optimizer, loss_fn))
            epoch_losses.append(float(np.mean(losses)))
        return epoch_losses

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256, loss_fn: Optional[Loss] = None
    ) -> Tuple[float, float]:
        """Return (loss, accuracy) over a labelled evaluation set."""
        if len(x) != len(y):
            raise ValueError("x and y must have the same number of samples")
        if len(x) == 0:
            raise ValueError("cannot evaluate on an empty dataset")
        loss_fn = loss_fn or CrossEntropyLoss()
        self.network.eval()
        total_loss = 0.0
        correct = 0
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.network.forward(xb)
            loss, _ = loss_fn.forward(logits, yb)
            total_loss += loss * len(xb)
            correct += int((logits.argmax(axis=1) == yb).sum())
        self.network.train()
        return total_loss / len(x), correct / len(x)

    def clone(self, rng: Optional[np.random.Generator] = None) -> "Model":
        """Create a structurally identical model carrying a copy of the weights."""
        raise NotImplementedError("clone is provided by concrete model classes")


class MLP(Model):
    """Multi-layer perceptron over flattened inputs; used in unit tests."""

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Tuple[int, ...] = (32,),
        num_classes: int = 2,
        seed: Optional[int] = None,
    ):
        self._config = dict(input_dim=input_dim, hidden_dims=tuple(hidden_dims), num_classes=num_classes)
        rng = np.random.default_rng(seed)
        layers: List[Layer] = []
        prev = input_dim
        for hidden in hidden_dims:
            layers.append(Dense(prev, hidden, rng=rng))
            layers.append(ReLU())
            prev = hidden
        layers.append(Dense(prev, num_classes, rng=rng))
        super().__init__(Sequential(layers), num_classes, (input_dim,))

    def clone(self, rng: Optional[np.random.Generator] = None) -> "MLP":
        copy = MLP(**self._config)
        copy.set_weights(self.get_weights())
        return copy


class SimpleCNN(Model):
    """The lightweight CNN of the paper's CIFAR-10 edge workload (~62K params).

    Structure: two convolution + pooling blocks followed by two dense layers,
    matching the classic Flower/McMahan CIFAR example the paper bases its
    62K-parameter count on.
    """

    def __init__(
        self,
        in_channels: int = 3,
        image_size: int = 16,
        num_classes: int = 10,
        conv_channels: Tuple[int, int] = (6, 16),
        hidden_dim: int = 64,
        seed: Optional[int] = None,
    ):
        self._config = dict(
            in_channels=in_channels,
            image_size=image_size,
            num_classes=num_classes,
            conv_channels=tuple(conv_channels),
            hidden_dim=hidden_dim,
        )
        rng = np.random.default_rng(seed)
        c1, c2 = conv_channels
        after_pool1 = image_size // 2
        after_pool2 = after_pool1 // 2
        flat = c2 * after_pool2 * after_pool2
        if flat <= 0:
            raise ValueError("image_size too small for two pooling stages")
        layers: List[Layer] = [
            Conv2d(in_channels, c1, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c1, c2, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(flat, hidden_dim, rng=rng),
            ReLU(),
            Dense(hidden_dim, num_classes, rng=rng),
        ]
        super().__init__(Sequential(layers), num_classes, (in_channels, image_size, image_size))

    def clone(self, rng: Optional[np.random.Generator] = None) -> "SimpleCNN":
        copy = SimpleCNN(**self._config)
        copy.set_weights(self.get_weights())
        return copy


class MiniVGG(Model):
    """A scaled-down VGG used in place of the paper's 138M-parameter VGG16.

    Keeps the VGG idiom — stacked 3x3 convolutions, doubling channel widths,
    2x2 max pooling between blocks, and a dense classifier head with dropout —
    at a size that trains quickly on synthetic Tiny-ImageNet-like data.
    """

    def __init__(
        self,
        in_channels: int = 3,
        image_size: int = 16,
        num_classes: int = 200,
        base_channels: int = 8,
        hidden_dim: int = 128,
        dropout: float = 0.0,
        seed: Optional[int] = None,
    ):
        self._config = dict(
            in_channels=in_channels,
            image_size=image_size,
            num_classes=num_classes,
            base_channels=base_channels,
            hidden_dim=hidden_dim,
            dropout=dropout,
        )
        rng = np.random.default_rng(seed)
        c1, c2 = base_channels, base_channels * 2
        after_block1 = image_size // 2
        after_block2 = after_block1 // 2
        flat = c2 * after_block2 * after_block2
        if flat <= 0:
            raise ValueError("image_size too small for the MiniVGG pooling stages")
        layers: List[Layer] = [
            Conv2d(in_channels, c1, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            Conv2d(c1, c1, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c1, c2, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            Conv2d(c2, c2, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(flat, hidden_dim, rng=rng),
            ReLU(),
        ]
        if dropout > 0:
            layers.append(Dropout(dropout, rng=rng))
        layers.append(Dense(hidden_dim, num_classes, rng=rng))
        super().__init__(Sequential(layers), num_classes, (in_channels, image_size, image_size))

    def clone(self, rng: Optional[np.random.Generator] = None) -> "MiniVGG":
        copy = MiniVGG(**self._config)
        copy.set_weights(self.get_weights())
        return copy


_MODEL_REGISTRY: Dict[str, Callable[..., Model]] = {
    "mlp": MLP,
    "simple_cnn": SimpleCNN,
    "cnn": SimpleCNN,
    "mini_vgg": MiniVGG,
    "vgg": MiniVGG,
}


def available_models() -> List[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_MODEL_REGISTRY)


def build_model(name: str, **kwargs) -> Model:
    """Construct a model from the registry by name."""
    key = name.lower()
    if key not in _MODEL_REGISTRY:
        raise ValueError(f"unknown model '{name}'; available: {available_models()}")
    return _MODEL_REGISTRY[key](**kwargs)


def count_parameters(model: Model) -> int:
    """Convenience alias for :meth:`Model.num_parameters`."""
    return model.num_parameters()
