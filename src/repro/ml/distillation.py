"""Knowledge distillation between heterogeneous models.

The paper's Section 5 (Q1) names multi-model FL via knowledge distillation as
future work: organisations whose model architectures differ cannot average
weights, but they can still collaborate by matching each other's *predictions*.
This module provides the distillation primitives used by
:mod:`repro.core.multimodel`:

* :func:`softmax_with_temperature` — softened teacher/student distributions.
* :func:`ensemble_soft_labels` — average the softened predictions of several
  teacher models on a batch of (unlabeled) local data.
* :class:`DistillationLoss` — the standard KD objective: a weighted sum of the
  cross-entropy with the hard labels and the KL divergence from the teacher
  ensemble's soft labels (Hinton et al., 2015).
* :func:`distill` — train a student model against hard labels + soft labels.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.losses import CrossEntropyLoss
from repro.ml.models import Model
from repro.ml.optim import Optimizer, SGD


def softmax_with_temperature(logits: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Numerically stable softmax of ``logits / temperature``."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    scaled = logits / temperature
    scaled = scaled - scaled.max(axis=-1, keepdims=True)
    exp = np.exp(scaled)
    return exp / exp.sum(axis=-1, keepdims=True)


def ensemble_soft_labels(
    teachers: Sequence[Model], x: np.ndarray, temperature: float = 2.0, batch_size: int = 256
) -> np.ndarray:
    """Mean softened prediction of several teacher models on a batch of inputs.

    Teachers may have arbitrary architectures as long as they share the number
    of output classes; that is the whole point of distillation-based
    collaboration.
    """
    if not teachers:
        raise ValueError("ensemble_soft_labels requires at least one teacher")
    num_classes = {t.num_classes for t in teachers}
    if len(num_classes) != 1:
        raise ValueError("all teachers must predict over the same class set")
    accumulated: Optional[np.ndarray] = None
    for teacher in teachers:
        parts = []
        for start in range(0, len(x), batch_size):
            logits = teacher.predict(x[start : start + batch_size])
            parts.append(softmax_with_temperature(logits, temperature))
        probs = np.concatenate(parts, axis=0)
        accumulated = probs if accumulated is None else accumulated + probs
    return accumulated / len(teachers)


class DistillationLoss:
    """Weighted hard-label cross-entropy plus soft-label KL divergence.

    ``alpha`` is the weight of the distillation (soft) term; ``1 - alpha`` is
    the weight of the ordinary cross-entropy with the hard labels.  The
    gradient is returned with respect to the student's logits.
    """

    def __init__(self, alpha: float = 0.5, temperature: float = 2.0):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.alpha = alpha
        self.temperature = temperature
        self._hard_loss = CrossEntropyLoss()

    def forward(
        self, logits: np.ndarray, targets: np.ndarray, soft_targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        if logits.shape != soft_targets.shape:
            raise ValueError("soft_targets must match the logits shape")
        hard_loss, hard_grad = self._hard_loss.forward(logits, targets)
        student_soft = softmax_with_temperature(logits, self.temperature)
        eps = 1e-12
        kl = float(np.mean(np.sum(soft_targets * (np.log(soft_targets + eps) - np.log(student_soft + eps)), axis=1)))
        # d KL / d logits for softened softmax: (student_soft - soft_targets) / (T * batch).
        n = logits.shape[0]
        soft_grad = (student_soft - soft_targets) / (self.temperature * n)
        # The usual T^2 factor keeps the soft gradient scale comparable to the hard one.
        loss = (1 - self.alpha) * hard_loss + self.alpha * (self.temperature**2) * kl
        grad = (1 - self.alpha) * hard_grad + self.alpha * (self.temperature**2) * soft_grad
        return loss, grad


def distill(
    student: Model,
    teachers: Sequence[Model],
    x: np.ndarray,
    y: np.ndarray,
    epochs: int = 1,
    batch_size: int = 32,
    alpha: float = 0.5,
    temperature: float = 2.0,
    optimizer: Optional[Optimizer] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[float]:
    """Train ``student`` on (x, y) while matching the teachers' soft labels.

    Returns the mean loss of each epoch.  The student's architecture is
    unconstrained; only the class count must match the teachers'.
    """
    if len(x) != len(y):
        raise ValueError("x and y must have the same number of samples")
    if epochs <= 0 or batch_size <= 0:
        raise ValueError("epochs and batch_size must be positive")
    optimizer = optimizer or SGD(learning_rate=0.05)
    rng = rng or np.random.default_rng(0)
    loss_fn = DistillationLoss(alpha=alpha, temperature=temperature)
    soft_labels = ensemble_soft_labels(teachers, x, temperature=temperature)

    epoch_losses: List[float] = []
    n = len(x)
    for _ in range(epochs):
        order = rng.permutation(n)
        losses: List[float] = []
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            student.network.train()
            logits = student.network.forward(x[idx])
            loss, grad = loss_fn.forward(logits, y[idx], soft_labels[idx])
            student.network.backward(grad)
            optimizer.step(student.network.parameters(), student.network.gradients())
            losses.append(loss)
        epoch_losses.append(float(np.mean(losses)))
    return epoch_losses
