"""Evaluation metrics for classification models."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ml.models import Model


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly matching labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of an empty label array")
    return float((y_true == y_pred).mean())


def top_k_accuracy(y_true: np.ndarray, logits: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true label appears in the top-k logits."""
    if k <= 0:
        raise ValueError("k must be positive")
    y_true = np.asarray(y_true)
    logits = np.asarray(logits)
    if logits.ndim != 2 or logits.shape[0] != y_true.shape[0]:
        raise ValueError("logits must be (n_samples, n_classes) aligned with y_true")
    k = min(k, logits.shape[1])
    top_k = np.argsort(-logits, axis=1)[:, :k]
    hits = (top_k == y_true[:, None]).any(axis=1)
    return float(hits.mean())


def evaluate_model(model: Model, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> Dict[str, float]:
    """Evaluate a model and return a metrics dictionary.

    Returns keys ``loss``, ``accuracy`` and ``top5_accuracy`` (the latter only
    meaningful for multi-class problems, otherwise equal to accuracy).
    """
    loss, accuracy = model.evaluate(x, y, batch_size=batch_size)
    logits = []
    for start in range(0, len(x), batch_size):
        logits.append(model.predict(x[start : start + batch_size]))
    stacked = np.concatenate(logits, axis=0)
    return {
        "loss": loss,
        "accuracy": accuracy,
        "top5_accuracy": top_k_accuracy(y, stacked, k=5),
    }
