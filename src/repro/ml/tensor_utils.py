"""Utilities for manipulating model weights as lists of numpy arrays.

Throughout the repository a model's parameters are exchanged as a list of
numpy arrays (the same convention the Flower framework uses).  These helpers
implement the vector-space operations federated aggregation and the MultiKRUM
scorer need: flattening, norms, distances and element-wise arithmetic.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

Weights = List[np.ndarray]


def flatten_weights(weights: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate every parameter tensor into a single 1-D vector."""
    if not weights:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([np.asarray(w, dtype=np.float64).ravel() for w in weights])


def unflatten_weights(
    vector: np.ndarray, template: Sequence[np.ndarray]
) -> Weights:
    """Reshape a flat vector back into the shapes given by ``template``.

    Raises:
        ValueError: if the vector length does not match the template size.
    """
    expected = sum(int(np.prod(w.shape)) for w in template)
    vector = np.asarray(vector, dtype=np.float64).ravel()
    if vector.size != expected:
        raise ValueError(
            f"cannot unflatten vector of size {vector.size} into template of size {expected}"
        )
    out: Weights = []
    offset = 0
    for w in template:
        size = int(np.prod(w.shape))
        out.append(vector[offset : offset + size].reshape(w.shape).astype(w.dtype))
        offset += size
    return out


def zeros_like_weights(weights: Sequence[np.ndarray]) -> Weights:
    """Return a weight list of zeros with the same shapes and dtypes."""
    return [np.zeros_like(w) for w in weights]


def add_weights(a: Sequence[np.ndarray], b: Sequence[np.ndarray]) -> Weights:
    """Element-wise sum of two weight lists."""
    _check_compatible(a, b)
    return [x + y for x, y in zip(a, b)]


def subtract_weights(a: Sequence[np.ndarray], b: Sequence[np.ndarray]) -> Weights:
    """Element-wise difference ``a - b`` of two weight lists."""
    _check_compatible(a, b)
    return [x - y for x, y in zip(a, b)]


def scale_weights(weights: Sequence[np.ndarray], factor: float) -> Weights:
    """Multiply every parameter by a scalar."""
    return [w * factor for w in weights]


def average_weights(
    weight_sets: Sequence[Sequence[np.ndarray]],
    coefficients: Sequence[float] | None = None,
) -> Weights:
    """Weighted average of several weight lists.

    Args:
        weight_sets: one weight list per contributor.
        coefficients: optional non-negative mixing weights; normalised to sum
            to one.  Defaults to a uniform average.

    Raises:
        ValueError: if ``weight_sets`` is empty, coefficient length mismatches,
            or the coefficients sum to zero.
    """
    if not weight_sets:
        raise ValueError("average_weights requires at least one weight set")
    if coefficients is None:
        coefficients = [1.0] * len(weight_sets)
    if len(coefficients) != len(weight_sets):
        raise ValueError("coefficients must match the number of weight sets")
    total = float(sum(coefficients))
    if total <= 0:
        raise ValueError("coefficients must sum to a positive value")
    normalised = np.array([float(c) / total for c in coefficients], dtype=np.float64)
    first = weight_sets[0]
    for weights in weight_sets[1:]:
        _check_compatible(first, weights)
    # One stacked contraction per layer instead of a per-contributor Python
    # loop: contributors go on axis 0, the float64 coefficient vector
    # contracts them away in a single BLAS-backed pass.  The result is cast
    # to the dtype scalar-times-array accumulation would have produced
    # (floats keep their width, integer layers average in float64).
    result: Weights = []
    for i in range(len(first)):
        stacked = np.stack([np.asarray(weights[i]) for weights in weight_sets])
        target = np.result_type(first[i].dtype, np.result_type(stacked.dtype, 1.0))
        layer = np.tensordot(normalised, stacked.astype(np.float64, copy=False), axes=1)
        result.append(layer.astype(target, copy=False))
    return result


class RunningWeightedAverage:
    """Streaming weighted accumulator over contributor weight lists.

    ``average_weights`` stacks every contributor before contracting, so its
    transient footprint is O(contributors × model).  At sampled-federation
    scale (hundreds of cohort members aggregating each round) the stack is
    the aggregation path's peak allocation; this accumulator folds each
    contributor in as it arrives and keeps only O(1) model-sized buffers.

    Two modes:

    * ``exact=True`` (the default): contributors are *buffered by reference*
      and finalisation delegates to :func:`average_weights`, so the result
      is bit-identical to the historical stacked contraction.  This is the
      mode the non-sampled aggregation path uses — existing runs stay
      reproducible to the last bit.
    * ``exact=False``: true in-place streaming — ``acc += c_i * w_i`` per
      contributor in float64.  This is NOT bit-identical to the stacked
      ``np.tensordot`` contraction (BLAS contracts with fused
      multiply-adds, an operand order no sequence of separate NumPy
      multiply/add ops reproduces; the difference is ~1 ULP).  The sampled
      path opts in, trading the last bit for O(1) memory.

    Both modes preserve the dtype-promotion rule of ``average_weights``:
    float layers keep their width, integer layers average in float64.
    """

    def __init__(self, exact: bool = True):
        self.exact = exact
        self._count = 0
        self._total = 0.0
        # exact mode: contributor references + raw coefficients.
        self._weight_sets: List[Sequence[np.ndarray]] = []
        self._coefficients: List[float] = []
        # streaming mode: running float64 sums plus the dtype bookkeeping
        # needed to reproduce average_weights' promotion rule.
        self._sums: List[np.ndarray] | None = None
        self._template: Sequence[np.ndarray] | None = None
        self._stacked_dtypes: List[np.dtype] | None = None

    @property
    def count(self) -> int:
        """Number of contributors folded in so far."""
        return self._count

    def add(self, weights: Sequence[np.ndarray], coefficient: float = 1.0) -> None:
        """Fold one contributor into the running average."""
        if coefficient < 0:
            raise ValueError("coefficients must be non-negative")
        self._count += 1
        self._total += float(coefficient)
        if self.exact:
            self._weight_sets.append(weights)
            self._coefficients.append(float(coefficient))
            return
        arrays = [np.asarray(w) for w in weights]
        if self._sums is None:
            self._template = arrays
            self._stacked_dtypes = [a.dtype for a in arrays]
            self._sums = [
                a.astype(np.float64, copy=True) * float(coefficient) for a in arrays
            ]
            return
        _check_compatible(self._template, arrays)
        assert self._stacked_dtypes is not None
        for i, (acc, a) in enumerate(zip(self._sums, arrays)):
            self._stacked_dtypes[i] = np.result_type(self._stacked_dtypes[i], a.dtype)
            acc += a.astype(np.float64, copy=False) * float(coefficient)

    def finalize(self) -> Weights:
        """Return the weighted average of every contributor added so far.

        Raises:
            ValueError: if no contributors were added or the coefficients
                sum to zero.
        """
        if self._count == 0:
            raise ValueError("RunningWeightedAverage.finalize requires at least one contributor")
        if self.exact:
            return average_weights(self._weight_sets, self._coefficients)
        if self._total <= 0:
            raise ValueError("coefficients must sum to a positive value")
        assert (
            self._sums is not None
            and self._template is not None
            and self._stacked_dtypes is not None
        )
        result: Weights = []
        for template_layer, stacked_dtype, acc in zip(
            self._template, self._stacked_dtypes, self._sums
        ):
            target = np.result_type(template_layer.dtype, np.result_type(stacked_dtype, 1.0))
            result.append((acc / self._total).astype(target, copy=False))
        return result


def weights_norm(weights: Sequence[np.ndarray]) -> float:
    """L2 norm of the flattened parameter vector."""
    return float(np.linalg.norm(flatten_weights(weights)))


def weights_distance(a: Sequence[np.ndarray], b: Sequence[np.ndarray]) -> float:
    """Euclidean distance between two parameter vectors."""
    _check_compatible(a, b)
    return float(np.linalg.norm(flatten_weights(a) - flatten_weights(b)))


def clip_weights(weights: Sequence[np.ndarray], max_norm: float) -> Weights:
    """Scale the weight list so its global L2 norm does not exceed ``max_norm``."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = weights_norm(weights)
    if norm <= max_norm or norm == 0.0:
        return [np.array(w, copy=True) for w in weights]
    return scale_weights(weights, max_norm / norm)


def weights_allclose(
    a: Sequence[np.ndarray], b: Sequence[np.ndarray], atol: float = 1e-8
) -> bool:
    """True when two weight lists have identical shapes and near-equal values."""
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if x.shape != y.shape:
            return False
        if not np.allclose(x, y, atol=atol):
            return False
    return True


def total_parameter_count(weights: Iterable[np.ndarray]) -> int:
    """Number of scalar parameters across a weight list."""
    return int(sum(int(np.prod(w.shape)) for w in weights))


def _check_compatible(a: Sequence[np.ndarray], b: Sequence[np.ndarray]) -> None:
    if len(a) != len(b):
        raise ValueError(
            f"weight lists have different lengths: {len(a)} vs {len(b)}"
        )
    for i, (x, y) in enumerate(zip(a, b)):
        if x.shape != y.shape:
            raise ValueError(
                f"weight tensor {i} has mismatched shapes: {x.shape} vs {y.shape}"
            )
