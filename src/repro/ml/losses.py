"""Classification and regression losses with analytic gradients."""

from __future__ import annotations

from typing import Tuple

import numpy as np


class Loss:
    """Base class: ``forward`` returns (loss, gradient w.r.t. predictions)."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        return self.forward(predictions, targets)


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over integer class labels.

    ``predictions`` are unnormalised logits of shape (batch, classes) and
    ``targets`` are integer labels of shape (batch,).  The returned gradient
    is with respect to the logits (softmax fused into the loss).
    """

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        if predictions.ndim != 2:
            raise ValueError("CrossEntropyLoss expects 2-D logits")
        targets = np.asarray(targets)
        if targets.ndim != 1 or targets.shape[0] != predictions.shape[0]:
            raise ValueError("targets must be a 1-D label array matching the batch size")
        n, num_classes = predictions.shape
        if targets.min() < 0 or targets.max() >= num_classes:
            raise ValueError("target labels out of range for the given logits")
        shifted = predictions - predictions.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        eps = 1e-12
        loss = float(-np.log(probs[np.arange(n), targets] + eps).mean())
        grad = probs.copy()
        grad[np.arange(n), targets] -= 1.0
        return loss, grad / n


class MSELoss(Loss):
    """Mean squared error; used by regression examples and sanity tests."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError("MSELoss requires predictions and targets of equal shape")
        diff = predictions - targets
        loss = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        return loss, grad
