"""Synthetic image-classification datasets standing in for CIFAR-10 / Tiny ImageNet.

Each class is represented by a smooth random "prototype image"; samples of
that class are the prototype plus Gaussian pixel noise and a random global
brightness shift.  This creates a learnable but non-trivial classification
problem: a small CNN reaches moderate accuracy in a handful of epochs, and
Dirichlet-skewed partitions of it exhibit the same non-IID pathologies the
paper studies (per-silo overfitting, collaboration gains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


@dataclass
class Dataset:
    """A labelled dataset: ``x`` has shape (n, ...), ``y`` has shape (n,)."""

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have the same number of samples")
        if self.num_classes <= 0:
            raise ValueError("num_classes must be positive")

    def __len__(self) -> int:
        return len(self.x)

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """A new dataset containing only the given sample indices."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(
            x=self.x[indices],
            y=self.y[indices],
            num_classes=self.num_classes,
            name=name or self.name,
        )

    def class_counts(self) -> np.ndarray:
        """Number of samples per class label (length ``num_classes``)."""
        return np.bincount(self.y, minlength=self.num_classes)


class SyntheticImageDataset:
    """Factory for class-conditional Gaussian image datasets.

    Args:
        num_classes: number of labels.
        image_size: square image side length.
        channels: image channels (3 for the RGB workloads).
        samples_per_class: training samples generated for each class.
        test_samples_per_class: held-out samples generated for each class.
        noise_scale: standard deviation of per-pixel noise added to prototypes.
        seed: base seed; the same seed always yields the same dataset.
    """

    def __init__(
        self,
        num_classes: int = 10,
        image_size: int = 16,
        channels: int = 3,
        samples_per_class: int = 100,
        test_samples_per_class: int = 20,
        noise_scale: float = 0.35,
        seed: int = 0,
        name: str = "synthetic",
    ):
        if num_classes <= 1:
            raise ValueError("num_classes must be at least 2")
        if samples_per_class <= 0 or test_samples_per_class <= 0:
            raise ValueError("sample counts must be positive")
        self.num_classes = num_classes
        self.image_size = image_size
        self.channels = channels
        self.samples_per_class = samples_per_class
        self.test_samples_per_class = test_samples_per_class
        self.noise_scale = noise_scale
        self.seed = seed
        self.name = name
        self._prototypes = self._make_prototypes()

    def _make_prototypes(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        shape = (self.num_classes, self.channels, self.image_size, self.image_size)
        raw = rng.normal(size=shape)
        # Smooth each prototype slightly so classes are separated by structure,
        # not single-pixel outliers; this keeps the task learnable by a CNN.
        smoothed = raw.copy()
        smoothed[:, :, 1:, :] += raw[:, :, :-1, :]
        smoothed[:, :, :, 1:] += raw[:, :, :, :-1]
        smoothed /= np.abs(smoothed).max()
        return smoothed

    def _sample_split(self, per_class: int, seed_offset: int) -> Tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed + seed_offset)
        xs = []
        ys = []
        for label in range(self.num_classes):
            proto = self._prototypes[label]
            noise = rng.normal(scale=self.noise_scale, size=(per_class,) + proto.shape)
            brightness = rng.normal(scale=0.1, size=(per_class, 1, 1, 1))
            xs.append(proto[None, ...] + noise + brightness)
            ys.append(np.full(per_class, label, dtype=np.int64))
        x = np.concatenate(xs).astype(np.float64)
        y = np.concatenate(ys)
        order = rng.permutation(len(x))
        return x[order], y[order]

    def train_split(self) -> Dataset:
        """The training portion of the dataset."""
        x, y = self._sample_split(self.samples_per_class, seed_offset=1)
        return Dataset(x=x, y=y, num_classes=self.num_classes, name=f"{self.name}-train")

    def test_split(self) -> Dataset:
        """The held-out evaluation portion of the dataset."""
        x, y = self._sample_split(self.test_samples_per_class, seed_offset=2)
        return Dataset(x=x, y=y, num_classes=self.num_classes, name=f"{self.name}-test")

    def splits(self) -> Tuple[Dataset, Dataset]:
        """Convenience accessor returning (train, test)."""
        return self.train_split(), self.test_split()


class SyntheticCIFAR10(SyntheticImageDataset):
    """Scaled-down stand-in for CIFAR-10 (10 classes, 3-channel images)."""

    def __init__(
        self,
        image_size: int = 16,
        samples_per_class: int = 120,
        test_samples_per_class: int = 30,
        noise_scale: float = 0.35,
        seed: int = 0,
    ):
        super().__init__(
            num_classes=10,
            image_size=image_size,
            channels=3,
            samples_per_class=samples_per_class,
            test_samples_per_class=test_samples_per_class,
            noise_scale=noise_scale,
            seed=seed,
            name="cifar10-synth",
        )


class SyntheticTinyImageNet(SyntheticImageDataset):
    """Scaled-down stand-in for Tiny ImageNet (many classes, 3-channel images).

    The real dataset has 200 classes; the default here keeps the many-class
    character (harder task, lower absolute accuracy) at a tractable size.
    The class count can be raised to 200 for full-fidelity runs.
    """

    def __init__(
        self,
        num_classes: int = 20,
        image_size: int = 16,
        samples_per_class: int = 60,
        test_samples_per_class: int = 15,
        noise_scale: float = 0.45,
        seed: int = 0,
    ):
        super().__init__(
            num_classes=num_classes,
            image_size=image_size,
            channels=3,
            samples_per_class=samples_per_class,
            test_samples_per_class=test_samples_per_class,
            noise_scale=noise_scale,
            seed=seed,
            name="tiny-imagenet-synth",
        )


def make_classification_dataset(
    num_samples: int = 500,
    num_features: int = 20,
    num_classes: int = 4,
    class_separation: float = 2.0,
    noise_scale: float = 1.0,
    seed: int = 0,
    name: str = "tabular-synth",
) -> Dataset:
    """Simple tabular classification dataset for MLP unit tests and examples."""
    if num_samples < num_classes:
        raise ValueError("need at least one sample per class")
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=class_separation, size=(num_classes, num_features))
    y = rng.integers(0, num_classes, size=num_samples)
    x = centers[y] + rng.normal(scale=noise_scale, size=(num_samples, num_features))
    return Dataset(x=x.astype(np.float64), y=y.astype(np.int64), num_classes=num_classes, name=name)
