"""Minibatch iteration and train/test splitting helpers."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.datasets.synthetic import Dataset


class DataLoader:
    """Iterate over a dataset in shuffled minibatches.

    Mirrors the small subset of the PyTorch ``DataLoader`` interface the FL
    clients need: iteration yields ``(x_batch, y_batch)`` tuples and ``len``
    returns the number of batches per epoch.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: Optional[int] = None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if len(dataset) == 0:
            raise ValueError("cannot construct a DataLoader over an empty dataset")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        full, rem = divmod(len(self.dataset), self.batch_size)
        if rem and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            yield self.dataset.x[idx], self.dataset.y[idx]


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, seed: Optional[int] = None
) -> Tuple[Dataset, Dataset]:
    """Split a dataset into train and test subsets by a random permutation."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = len(dataset)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError("dataset too small for the requested split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    test_idx = np.sort(order[:n_test])
    train_idx = np.sort(order[n_test:])
    return (
        dataset.subset(train_idx, name=f"{dataset.name}-train"),
        dataset.subset(test_idx, name=f"{dataset.name}-test"),
    )
