"""Dataset partitioners reproducing the paper's IID and non-IID splits.

Table 4 and Section 4.1.2 of the paper describe two partitioning regimes:

* a random uniform IID split, and
* a Dirichlet-distribution non-IID split with concentration α ∈ {0.1, 0.5}
  (smaller α ⇒ more skewed label distribution per silo).

Both are implemented here, plus a shard-based partitioner (the classic
McMahan-style pathological non-IID split) used in ablation benchmarks.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.datasets.synthetic import Dataset


class Partitioner:
    """Base class: split a dataset into ``num_partitions`` client datasets."""

    def __init__(self, num_partitions: int, seed: Optional[int] = None):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self.seed = seed

    def partition(self, dataset: Dataset) -> List[Dataset]:
        indices = self.partition_indices(dataset)
        return [
            dataset.subset(idx, name=f"{dataset.name}-part{i}")
            for i, idx in enumerate(indices)
        ]

    def partition_indices(self, dataset: Dataset) -> List[np.ndarray]:
        raise NotImplementedError


class IIDPartitioner(Partitioner):
    """Uniformly random split into equally sized partitions."""

    def partition_indices(self, dataset: Dataset) -> List[np.ndarray]:
        if len(dataset) < self.num_partitions:
            raise ValueError("dataset has fewer samples than partitions")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(len(dataset))
        return [np.sort(chunk) for chunk in np.array_split(order, self.num_partitions)]


class DirichletPartitioner(Partitioner):
    """Label-skewed split following a Dirichlet(α) distribution per class.

    For each class, the class's samples are distributed across partitions
    according to proportions drawn from Dirichlet(α).  α = 0.1 produces the
    severe skew of the paper's hardest setting; α = 0.5 a moderate skew.
    Every partition is guaranteed at least ``min_samples`` samples by
    re-drawing when a draw leaves a partition starved.
    """

    def __init__(
        self,
        num_partitions: int,
        alpha: float = 0.5,
        min_samples: int = 2,
        max_retries: int = 50,
        seed: Optional[int] = None,
    ):
        super().__init__(num_partitions, seed)
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if min_samples < 0:
            raise ValueError("min_samples must be non-negative")
        self.alpha = alpha
        self.min_samples = min_samples
        self.max_retries = max_retries

    def partition_indices(self, dataset: Dataset) -> List[np.ndarray]:
        if len(dataset) < self.num_partitions * max(self.min_samples, 1):
            raise ValueError("dataset too small for the requested partitioning")
        rng = np.random.default_rng(self.seed)
        labels = np.asarray(dataset.y)
        for _ in range(self.max_retries):
            partitions: List[List[int]] = [[] for _ in range(self.num_partitions)]
            for label in range(dataset.num_classes):
                class_indices = np.flatnonzero(labels == label)
                if class_indices.size == 0:
                    continue
                rng.shuffle(class_indices)
                proportions = rng.dirichlet([self.alpha] * self.num_partitions)
                cuts = (np.cumsum(proportions) * class_indices.size).astype(int)[:-1]
                for part, chunk in enumerate(np.split(class_indices, cuts)):
                    partitions[part].extend(chunk.tolist())
            sizes = [len(p) for p in partitions]
            if min(sizes) >= self.min_samples:
                return [np.sort(np.asarray(p, dtype=np.int64)) for p in partitions]
        # Fall back to topping up starved partitions from the largest one so the
        # partitioner always terminates, even for adversarial α / class counts.
        partitions.sort(key=len, reverse=True)
        donor = partitions[0]
        for part in partitions[1:]:
            while len(part) < self.min_samples and len(donor) > self.min_samples:
                part.append(donor.pop())
        rng.shuffle(partitions)
        return [np.sort(np.asarray(p, dtype=np.int64)) for p in partitions]


class ShardPartitioner(Partitioner):
    """Pathological non-IID split: sort by label, deal out contiguous shards."""

    def __init__(self, num_partitions: int, shards_per_partition: int = 2, seed: Optional[int] = None):
        super().__init__(num_partitions, seed)
        if shards_per_partition <= 0:
            raise ValueError("shards_per_partition must be positive")
        self.shards_per_partition = shards_per_partition

    def partition_indices(self, dataset: Dataset) -> List[np.ndarray]:
        total_shards = self.num_partitions * self.shards_per_partition
        if len(dataset) < total_shards:
            raise ValueError("dataset has fewer samples than shards")
        rng = np.random.default_rng(self.seed)
        sorted_indices = np.argsort(dataset.y, kind="stable")
        shards = np.array_split(sorted_indices, total_shards)
        shard_order = rng.permutation(total_shards)
        partitions: List[np.ndarray] = []
        for i in range(self.num_partitions):
            picked = shard_order[i * self.shards_per_partition : (i + 1) * self.shards_per_partition]
            partitions.append(np.sort(np.concatenate([shards[s] for s in picked])))
        return partitions


def partition_dataset(
    dataset: Dataset,
    num_partitions: int,
    scheme: str = "iid",
    alpha: float = 0.5,
    seed: Optional[int] = None,
) -> List[Dataset]:
    """Partition a dataset by scheme name (``iid``, ``dirichlet``, ``shard``)."""
    scheme = scheme.lower()
    if scheme == "iid":
        partitioner: Partitioner = IIDPartitioner(num_partitions, seed=seed)
    elif scheme in ("dirichlet", "niid"):
        partitioner = DirichletPartitioner(num_partitions, alpha=alpha, seed=seed)
    elif scheme == "shard":
        partitioner = ShardPartitioner(num_partitions, seed=seed)
    else:
        raise ValueError(f"unknown partition scheme '{scheme}'")
    return partitioner.partition(dataset)
