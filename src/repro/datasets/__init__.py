"""Synthetic workloads and data partitioners for the UnifyFL evaluation.

The paper evaluates on CIFAR-10 and Tiny ImageNet, partitioned across FL
clients either uniformly (IID) or by a Dirichlet distribution with
α ∈ {0.1, 0.5} (non-IID).  Real datasets are not available offline, so
:mod:`repro.datasets.synthetic` generates class-conditional Gaussian image
datasets with the same shape (channels, classes, sample counts scaled down)
— what matters for the paper's results is the *partitioning structure*, which
:mod:`repro.datasets.partition` reproduces exactly.
"""

from repro.datasets.partition import (
    DirichletPartitioner,
    IIDPartitioner,
    Partitioner,
    ShardPartitioner,
    partition_dataset,
)
from repro.datasets.synthetic import (
    Dataset,
    SyntheticCIFAR10,
    SyntheticImageDataset,
    SyntheticTinyImageNet,
    make_classification_dataset,
)
from repro.datasets.dataloader import DataLoader, train_test_split

__all__ = [
    "DirichletPartitioner",
    "IIDPartitioner",
    "Partitioner",
    "ShardPartitioner",
    "partition_dataset",
    "Dataset",
    "SyntheticCIFAR10",
    "SyntheticImageDataset",
    "SyntheticTinyImageNet",
    "make_classification_dataset",
    "DataLoader",
    "train_test_split",
]
