"""Clique proof-of-authority consensus (EIP-225), as used by the paper's chain.

The paper's private Ethereum network uses Clique PoA "to provide high
security, scalability with minimal computing power consumption, and faster
transaction validation".  Clique replaces proof-of-work with a rotating set of
authorised *signers*: the signer whose turn it is seals the block in-turn;
other signers may seal out-of-turn after a delay; a signer may not seal two of
the last ``N/2 + 1`` blocks.  This module reproduces that sealer-rotation
logic and header validation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.chain.account import Account
from repro.chain.block import Block, BlockHeader
from repro.chain.crypto import verify_signature


class CliqueError(Exception):
    """Raised when a block violates the Clique sealing rules."""


#: simulated per-transaction validation/gossip cost in seconds — the single
#: source of truth shared by the constant-cost timing model
#: (:meth:`repro.core.timing.ClusterTimingModel.chain_interaction_time`) and
#: the event-stream chain actor (:class:`repro.sched.actors.ChainActor`), so
#: the two cost models cannot silently drift apart.
TX_VALIDATION_COST_S = 0.05


class CliqueEngine:
    """Implements the Clique signer rotation and seal validation.

    Args:
        signers: the authorised sealer accounts (the aggregator nodes in
            UnifyFL — each organisation runs one Geth validator).
        block_period: target seconds between blocks (Clique's ``period``);
            only used by the timing simulation.
    """

    def __init__(self, signers: Sequence[Account], block_period: float = 2.0):
        if not signers:
            raise CliqueError("Clique requires at least one authorised signer")
        if block_period <= 0:
            raise CliqueError("block_period must be positive")
        addresses = [s.address for s in signers]
        if len(set(addresses)) != len(addresses):
            raise CliqueError("duplicate signer addresses")
        self._signers: Dict[str, Account] = {s.address: s for s in signers}
        self._signer_order: List[str] = sorted(addresses)
        self.block_period = block_period

    @property
    def signer_addresses(self) -> List[str]:
        """Sorted list of authorised sealer addresses."""
        return list(self._signer_order)

    def is_authorized(self, address: str) -> bool:
        """Whether an address belongs to the signer set."""
        return address in self._signers

    def in_turn_signer(self, block_number: int) -> str:
        """The address whose turn it is to seal ``block_number``."""
        return self._signer_order[block_number % len(self._signer_order)]

    def recently_sealed(self, chain: Sequence[Block], address: str) -> bool:
        """True if ``address`` sealed one of the last ``len(signers)//2`` blocks.

        Clique forbids a signer from sealing again before ``N/2 + 1`` other
        blocks have passed; with a small signer set this reduces to not
        sealing two consecutive blocks.
        """
        limit = len(self._signer_order) // 2
        if limit == 0:
            return False
        recent = list(chain)[-limit:]
        return any(block.header.sealer == address for block in recent)

    def select_sealer(self, chain: Sequence[Block], block_number: int) -> str:
        """Choose the sealer for the next block.

        Prefers the in-turn signer; if that signer sealed too recently, fall
        back to the first eligible out-of-turn signer in address order.
        """
        in_turn = self.in_turn_signer(block_number)
        if not self.recently_sealed(chain, in_turn):
            return in_turn
        for address in self._signer_order:
            if address != in_turn and not self.recently_sealed(chain, address):
                return address
        raise CliqueError("no eligible sealer available (signer set too small)")

    def seal(self, header: BlockHeader) -> BlockHeader:
        """Sign a block header with the sealer's key."""
        account = self._signers.get(header.sealer)
        if account is None:
            raise CliqueError(f"sealer {header.sealer} is not an authorised signer")
        header.seal_signature = account.sign({"header": header.hash()})
        return header

    def verify_seal(self, block: Block, chain: Sequence[Block]) -> None:
        """Validate a sealed block against the Clique rules.

        Raises:
            CliqueError: if the sealer is unauthorised, the seal signature is
                invalid, or the sealer violated the recent-sealing restriction.
        """
        header = block.header
        account = self._signers.get(header.sealer)
        if account is None:
            raise CliqueError(f"block {header.number} sealed by unauthorised address {header.sealer}")
        valid = verify_signature(
            account.keypair.public_key,
            account.keypair.private_key,
            {"header": header.hash()},
            header.seal_signature,
        )
        if not valid:
            raise CliqueError(f"block {header.number} carries an invalid seal signature")
        if self.recently_sealed(chain, header.sealer):
            raise CliqueError(
                f"signer {header.sealer} sealed a recent block and must wait its turn"
            )

    def seal_delay(self, block_number: int, sealer: str) -> float:
        """Simulated sealing latency: in-turn signers seal after ``block_period``,
        out-of-turn signers add a wiggle delay (as Geth does)."""
        if sealer == self.in_turn_signer(block_number):
            return self.block_period
        return self.block_period * 1.5


def consensus_delay(num_signers: int, block_period: float) -> float:
    """Expected per-block Clique consensus latency beyond the block interval.

    A sealed block is not final the instant its interval elapses: every signer
    verifies the seal (a small per-signer cost) and, once per rotation, the
    in-turn signer is ineligible and an out-of-turn signer seals after Geth's
    wiggle delay (``period / 2``, amortised over the rotation here).  The
    event-stream chain actor (:class:`repro.sched.actors.ChainActor`) adds
    this on top of the block-interval quantisation.

    Args:
        num_signers: size of the authorised signer set.
        block_period: Clique target seconds between blocks.

    Returns:
        Simulated seconds of consensus overhead per sealed block.
    """
    if num_signers <= 0:
        raise CliqueError("consensus delay requires at least one signer")
    if block_period <= 0:
        raise CliqueError("block_period must be positive")
    verification = 0.01 * num_signers
    amortised_wiggle = (block_period / 2.0) / num_signers
    return verification + amortised_wiggle
