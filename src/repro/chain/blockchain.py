"""The simulated private blockchain tying accounts, Clique and contracts together.

The :class:`Blockchain` exposes the Geth-like surface UnifyFL's orchestrator
layer uses:

* ``submit_transaction`` — add a signed contract call to the pending pool.
* ``mine_block`` — have the next eligible Clique sealer produce a block,
  executing every pooled transaction against the contract runtime, recording
  receipts and stamping emitted events into the event bus.
* ``call`` — execute a read-only view method without a transaction.
* ``events`` / ``subscribe`` — the event log aggregators listen to.

Determinism: transactions execute in pool order (FIFO, per-sender nonce
checked), so every node observing the same chain derives the same contract
state — the property that lets all UnifyFL aggregators see identical model
CIDs and scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.chain.account import Account
from repro.chain.block import Block, BlockHeader
from repro.chain.clique import CliqueEngine, CliqueError
from repro.chain.contract import Contract, ContractError, ContractRuntime, GasExhaustedError
from repro.chain.crypto import verify_signature
from repro.chain.events import Event, EventBus, EventFilter
from repro.chain.transaction import Transaction, TransactionReceipt


class BlockchainError(Exception):
    """Raised for invalid transactions or blocks."""


@dataclass
class ChainMetrics:
    """Counters used by the system-overhead study (Table 7)."""

    transactions_processed: int = 0
    transactions_failed: int = 0
    blocks_mined: int = 0
    total_gas_used: int = 0
    total_bytes: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "transactions_processed": float(self.transactions_processed),
            "transactions_failed": float(self.transactions_failed),
            "blocks_mined": float(self.blocks_mined),
            "total_gas_used": float(self.total_gas_used),
            "total_bytes": float(self.total_bytes),
        }


class Blockchain:
    """A single logical chain shared by all validator nodes.

    In the real deployment each organisation runs its own Geth node and the
    nodes converge through Clique consensus; because consensus is
    deterministic given the same transaction order, the simulation keeps one
    canonical chain object that every :class:`~repro.core.aggregator` interacts
    with, while the Clique engine still enforces sealer rotation and seal
    validity for every block.
    """

    def __init__(
        self,
        validators: Sequence[Account],
        block_period: float = 2.0,
        clock: Optional[Callable[[], float]] = None,
    ):
        if not validators:
            raise BlockchainError("the chain requires at least one validator account")
        self.validators = list(validators)
        self.engine = CliqueEngine(validators, block_period=block_period)
        self.runtime = ContractRuntime()
        self.event_bus = EventBus()
        self.metrics = ChainMetrics()
        self._clock = clock or (lambda: 0.0)
        self._pending: List[Transaction] = []
        self._receipts: Dict[str, TransactionReceipt] = {}
        self._known_accounts: Dict[str, Account] = {a.address: a for a in validators}
        self._expected_nonces: Dict[str, int] = {}
        #: callbacks fired after every sealed block (see :meth:`add_block_listener`).
        self._block_listeners: List[Callable[[Block], None]] = []
        self.blocks: List[Block] = [self._genesis_block()]

    # -- setup ---------------------------------------------------------------
    def register_account(self, account: Account) -> None:
        """Make a non-validator account known to the chain (clients, scorers)."""
        self._known_accounts[account.address] = account

    def deploy_contract(self, contract: Contract) -> Contract:
        """Deploy a contract to the runtime."""
        return self.runtime.deploy(contract)

    def add_block_listener(self, callback: Callable[[Block], None]) -> Callable[[], None]:
        """Invoke ``callback`` with every block sealed from now on.

        This is the chain-side emission hook the event-stream layer uses: the
        :class:`~repro.sched.actors.ChainActor` subscribes so each sealed
        block (and the transactions it carries) becomes an observable event on
        the simulation timeline.  Returns an unsubscribe callable.
        """
        self._block_listeners.append(callback)

        def unsubscribe() -> None:
            if callback in self._block_listeners:
                self._block_listeners.remove(callback)

        return unsubscribe

    def _genesis_block(self) -> Block:
        header = BlockHeader(
            number=0,
            parent_hash="0x" + "0" * 64,
            timestamp=self._clock(),
            sealer=self.engine.signer_addresses[0],
            transactions_root=Block.compute_transactions_root([]),
        )
        self.engine.seal(header)
        return Block(header=header, transactions=[])

    # -- transaction pool ----------------------------------------------------
    def submit_transaction(self, tx: Transaction) -> str:
        """Validate a transaction and add it to the pending pool.

        Returns the transaction hash.  Raises :class:`BlockchainError` for an
        unknown sender, a bad signature or an out-of-order nonce.
        """
        account = self._known_accounts.get(tx.sender)
        if account is None:
            raise BlockchainError(f"unknown sender {tx.sender}; register the account first")
        if not verify_signature(
            account.keypair.public_key,
            account.keypair.private_key,
            tx.signing_payload(),
            tx.signature,
        ):
            raise BlockchainError(f"invalid signature on transaction from {tx.sender}")
        expected = self._expected_nonces.get(tx.sender, 0)
        if tx.nonce != expected:
            raise BlockchainError(
                f"bad nonce from {tx.sender}: expected {expected}, got {tx.nonce}"
            )
        self._expected_nonces[tx.sender] = expected + 1
        self._pending.append(tx)
        return tx.tx_hash

    def send(
        self,
        account: Account,
        contract: str,
        method: str,
        args: Optional[Dict[str, Any]] = None,
        gas_limit: int = 1_000_000,
    ) -> str:
        """Convenience wrapper: create, sign and submit a transaction."""
        if account.address not in self._known_accounts:
            self.register_account(account)
        tx = Transaction.create(account, contract, method, args, gas_limit=gas_limit)
        return self.submit_transaction(tx)

    @property
    def pending_count(self) -> int:
        """Number of transactions waiting to be included in a block."""
        return len(self._pending)

    # -- block production ----------------------------------------------------
    def mine_block(self) -> Block:
        """Seal the pending transactions into a new block.

        The eligible Clique sealer executes each transaction against the
        contract runtime; failures revert that transaction only (recorded in
        its receipt) — the block is still produced, as on Ethereum.
        """
        number = len(self.blocks)
        sealer = self.engine.select_sealer(self.blocks, number)
        timestamp = self._clock()
        included = list(self._pending)
        self._pending.clear()

        receipts: List[TransactionReceipt] = []
        block_gas = 0
        for tx in included:
            receipt = self._execute_transaction(tx, number, timestamp)
            receipts.append(receipt)
            block_gas += receipt.gas_used

        header = BlockHeader(
            number=number,
            parent_hash=self.blocks[-1].block_hash,
            timestamp=timestamp,
            sealer=sealer,
            transactions_root=Block.compute_transactions_root(included),
            gas_used=block_gas,
        )
        self.engine.seal(header)
        block = Block(header=header, transactions=included)
        self.engine.verify_seal(block, self.blocks)
        self._validate_block(block)
        self.blocks.append(block)

        for receipt in receipts:
            self._receipts[receipt.tx_hash] = receipt
            for event in receipt.events:
                self.event_bus.append(
                    Event(
                        contract=event.contract,
                        name=event.name,
                        payload=event.payload,
                        block_number=number,
                        tx_hash=receipt.tx_hash,
                    )
                )
        self.metrics.blocks_mined += 1
        self.metrics.total_gas_used += block_gas
        self.metrics.total_bytes += block.estimated_size_bytes()
        for listener in list(self._block_listeners):
            listener(block)
        return block

    def mine_until_empty(self) -> List[Block]:
        """Mine blocks until the pending pool is drained (usually one block)."""
        mined: List[Block] = []
        while self._pending:
            mined.append(self.mine_block())
        return mined

    def _execute_transaction(self, tx: Transaction, block_number: int, timestamp: float) -> TransactionReceipt:
        try:
            result, ctx = self.runtime.call(
                tx.contract,
                tx.method,
                tx.args,
                sender=tx.sender,
                block_number=block_number,
                timestamp=timestamp,
                gas_limit=tx.gas_limit,
            )
            self.metrics.transactions_processed += 1
            return TransactionReceipt(
                tx_hash=tx.tx_hash,
                block_number=block_number,
                success=True,
                gas_used=ctx.gas_used,
                return_value=result,
                events=list(ctx.events),
            )
        except (ContractError, GasExhaustedError) as exc:
            self.metrics.transactions_failed += 1
            return TransactionReceipt(
                tx_hash=tx.tx_hash,
                block_number=block_number,
                success=False,
                gas_used=tx.gas_limit if isinstance(exc, GasExhaustedError) else 21_000,
                error=str(exc),
            )

    def _validate_block(self, block: Block) -> None:
        parent = self.blocks[-1]
        if block.header.parent_hash != parent.block_hash:
            raise BlockchainError("block parent hash does not match the chain head")
        if block.header.number != parent.number + 1:
            raise BlockchainError("non-sequential block number")
        expected_root = Block.compute_transactions_root(block.transactions)
        if block.header.transactions_root != expected_root:
            raise BlockchainError("transactions root mismatch")

    # -- reads ---------------------------------------------------------------
    def call(self, contract: str, method: str, args: Optional[Dict[str, Any]] = None, sender: str = "0x0") -> Any:
        """Execute a read-only view method against the latest state."""
        target = self.runtime.get(contract)
        if not target.is_view(method):
            raise BlockchainError(
                f"method '{method}' mutates state; submit it as a transaction instead"
            )
        result, _ = self.runtime.call(
            contract,
            method,
            args,
            sender=sender,
            block_number=self.height,
            timestamp=self._clock(),
        )
        return result

    def receipt(self, tx_hash: str) -> Optional[TransactionReceipt]:
        """Receipt of a mined transaction, or None if not yet mined."""
        return self._receipts.get(tx_hash)

    def events(self, event_filter: Optional[EventFilter] = None) -> List[Event]:
        """Query the chain's event log."""
        return self.event_bus.query(event_filter)

    def subscribe(self, callback: Callable[[Event], None], event_filter: Optional[EventFilter] = None) -> Callable[[], None]:
        """Subscribe to future events; returns an unsubscribe callable."""
        return self.event_bus.subscribe(callback, event_filter)

    @property
    def height(self) -> int:
        """Number of the latest sealed block."""
        return self.blocks[-1].number

    def verify_chain(self) -> bool:
        """Re-validate every link and seal in the chain (integrity check)."""
        for i in range(1, len(self.blocks)):
            block = self.blocks[i]
            parent = self.blocks[i - 1]
            if block.header.parent_hash != parent.block_hash:
                return False
            if block.header.transactions_root != Block.compute_transactions_root(block.transactions):
                return False
            try:
                self.engine.verify_seal(block, self.blocks[:i])
            except CliqueError:
                return False
        return True
