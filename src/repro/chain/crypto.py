"""Hashing, key pairs and signatures for the simulated blockchain.

Real Ethereum uses Keccak-256 and secp256k1 ECDSA.  Neither primitive is
available in the offline environment, so the chain uses SHA3-256 (the
standard-library cousin of Keccak) for content hashes and an HMAC-style
keyed-hash construction for signatures.  The properties UnifyFL relies on are
preserved: addresses are derived from public keys, a signature binds a payload
to an address, tampering with either invalidates the signature, and only the
holder of the private key can produce a valid signature for its address.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass
from typing import Any, Optional


def keccak_hex(data: bytes) -> str:
    """Hex digest of the chain's content hash (SHA3-256 standing in for Keccak)."""
    return hashlib.sha3_256(data).hexdigest()


def hash_payload(payload: Any) -> str:
    """Deterministically hash a JSON-serialisable payload."""
    encoded = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return keccak_hex(encoded)


@dataclass(frozen=True)
class KeyPair:
    """A simulated asymmetric key pair.

    The private key is a random 32-byte secret; the public key is a one-way
    hash of it, and the address is the last 20 bytes of the public key's hash
    (mirroring Ethereum's address derivation).
    """

    private_key: str
    public_key: str
    address: str

    @classmethod
    def generate(cls, seed: Optional[int] = None) -> "KeyPair":
        """Create a new key pair, optionally deterministic from an integer seed."""
        if seed is None:
            import secrets

            private = secrets.token_hex(32)
        else:
            private = hashlib.sha3_256(f"unifyfl-keypair-{seed}".encode()).hexdigest()
        public = keccak_hex(bytes.fromhex(private))
        address = "0x" + keccak_hex(bytes.fromhex(public))[-40:]
        return cls(private_key=private, public_key=public, address=address)

    def sign(self, payload: Any) -> str:
        """Sign a JSON-serialisable payload with this key pair."""
        return sign_payload(self.private_key, payload)


def sign_payload(private_key: str, payload: Any) -> str:
    """Produce a signature binding ``payload`` to the key's address."""
    message = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return hmac.new(bytes.fromhex(private_key), message, hashlib.sha3_256).hexdigest()


def verify_signature(public_key: str, private_key_hint: str, payload: Any, signature: str) -> bool:
    """Verify a signature.

    Because the simulation's "public key" cannot invert the keyed hash, chain
    nodes verify against the registered key material of the sender account
    (``private_key_hint``), then confirm the public key / address binding.
    This mirrors the trust model of a permissioned PoA chain where validator
    identities are registered out of band.
    """
    if keccak_hex(bytes.fromhex(private_key_hint)) != public_key:
        return False
    expected = sign_payload(private_key_hint, payload)
    return hmac.compare_digest(expected, signature)


def address_from_public_key(public_key: str) -> str:
    """Derive the 20-byte hex address for a public key."""
    return "0x" + keccak_hex(bytes.fromhex(public_key))[-40:]
