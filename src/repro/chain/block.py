"""Blocks and block headers for the simulated chain."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.chain.crypto import hash_payload
from repro.chain.transaction import Transaction


@dataclass
class BlockHeader:
    """Header of a sealed block.

    Carries the parent link, the sealer's address and signature (Clique PoA
    puts the validator's seal in the header rather than a proof-of-work
    nonce), and a Merkle-style digest of the transaction list.
    """

    number: int
    parent_hash: str
    timestamp: float
    sealer: str
    transactions_root: str
    state_root: str = ""
    seal_signature: str = ""
    gas_used: int = 0

    def hash(self) -> str:
        """Deterministic hash of the header contents (excluding the seal)."""
        return "0x" + hash_payload(
            {
                "number": self.number,
                "parent_hash": self.parent_hash,
                "timestamp": self.timestamp,
                "sealer": self.sealer,
                "transactions_root": self.transactions_root,
                "state_root": self.state_root,
                "gas_used": self.gas_used,
            }
        )


@dataclass
class Block:
    """A sealed block: a header plus the ordered list of included transactions."""

    header: BlockHeader
    transactions: List[Transaction] = field(default_factory=list)

    @property
    def number(self) -> int:
        return self.header.number

    @property
    def block_hash(self) -> str:
        return self.header.hash()

    @staticmethod
    def compute_transactions_root(transactions: List[Transaction]) -> str:
        """Digest of the ordered transaction hashes included in a block."""
        return hash_payload([tx.tx_hash for tx in transactions])

    def estimated_size_bytes(self) -> int:
        """Approximate encoded block size for the overhead accounting."""
        header_size = 200
        return header_size + sum(tx.estimated_size_bytes() for tx in self.transactions)
