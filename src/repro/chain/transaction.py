"""Transactions and receipts for the simulated chain.

A transaction carries a smart-contract call: the target contract name, the
method, and JSON-serialisable arguments.  It is signed by the sender and
ordered by the sender's nonce.  A receipt records execution status, gas used,
the return value and any events emitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chain.account import Account
from repro.chain.crypto import hash_payload
from repro.chain.events import Event


@dataclass
class Transaction:
    """A signed contract-call transaction."""

    sender: str
    nonce: int
    contract: str
    method: str
    args: Dict[str, Any] = field(default_factory=dict)
    gas_limit: int = 1_000_000
    signature: str = ""
    sender_public_key: str = ""

    @classmethod
    def create(
        cls,
        account: Account,
        contract: str,
        method: str,
        args: Optional[Dict[str, Any]] = None,
        gas_limit: int = 1_000_000,
    ) -> "Transaction":
        """Build and sign a transaction from an account."""
        if gas_limit <= 0:
            raise ValueError("gas_limit must be positive")
        args = dict(args or {})
        tx = cls(
            sender=account.address,
            nonce=account.next_nonce(),
            contract=contract,
            method=method,
            args=args,
            gas_limit=gas_limit,
            sender_public_key=account.keypair.public_key,
        )
        tx.signature = account.sign(tx.signing_payload())
        return tx

    def signing_payload(self) -> Dict[str, Any]:
        """The canonical payload covered by the signature."""
        return {
            "sender": self.sender,
            "nonce": self.nonce,
            "contract": self.contract,
            "method": self.method,
            "args": self.args,
            "gas_limit": self.gas_limit,
        }

    @property
    def tx_hash(self) -> str:
        """Deterministic transaction hash (includes the signature)."""
        payload = dict(self.signing_payload())
        payload["signature"] = self.signature
        return "0x" + hash_payload(payload)

    def estimated_size_bytes(self) -> int:
        """Rough encoded size, used by the overhead accounting."""
        import json

        return len(json.dumps(self.signing_payload(), default=str)) + 64


@dataclass
class TransactionReceipt:
    """Execution outcome of a transaction included in a block."""

    tx_hash: str
    block_number: int
    success: bool
    gas_used: int
    return_value: Any = None
    error: Optional[str] = None
    events: List[Event] = field(default_factory=list)
