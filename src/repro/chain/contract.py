"""Smart-contract runtime: the stand-in for the EVM + Solidity contracts.

Contracts are Python classes whose externally callable methods are marked with
:func:`contract_method` (state-mutating, invoked through transactions) or
:func:`view_method` (read-only, invoked directly without a transaction).
During execution a contract can read the caller's address, the current block
number and timestamp, emit events, and consume gas.  The runtime enforces the
gas limit and rolls back nothing (contracts are expected to validate before
mutating — the same discipline Solidity's ``require`` encourages and which the
UnifyFL contract follows).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.chain.events import Event


class ContractError(Exception):
    """Raised when a contract call reverts (a ``require`` failure)."""


class GasExhaustedError(ContractError):
    """Raised when a call consumes more gas than the transaction's limit."""


@dataclass
class CallContext:
    """Execution context visible to a contract method (``msg``/``block`` in Solidity)."""

    sender: str
    block_number: int
    timestamp: float
    gas_limit: int = 1_000_000
    gas_used: int = 0
    events: List[Event] = field(default_factory=list)

    def charge(self, amount: int) -> None:
        """Consume gas; raises :class:`GasExhaustedError` past the limit."""
        if amount < 0:
            raise ValueError("gas amount must be non-negative")
        self.gas_used += amount
        if self.gas_used > self.gas_limit:
            raise GasExhaustedError(
                f"gas limit {self.gas_limit} exhausted (needed {self.gas_used})"
            )


def contract_method(func: Callable) -> Callable:
    """Mark a contract method as externally callable via transactions."""
    func.__contract_method__ = True
    func.__view_method__ = False
    return func


def view_method(func: Callable) -> Callable:
    """Mark a contract method as a read-only view (no transaction required)."""
    func.__contract_method__ = True
    func.__view_method__ = True
    return func


class Contract:
    """Base class for deployed contracts.

    Subclasses define state in ``__init__`` and expose methods with the
    :func:`contract_method` / :func:`view_method` decorators.  Inside a
    method, ``self.ctx`` exposes the call context and ``self.emit`` records
    an event.
    """

    #: human-readable contract name used as its address on the chain.
    name: str = "contract"

    #: base gas charged per call; methods may charge more via ``self.ctx.charge``.
    base_gas_per_call: int = 21_000

    def __init__(self) -> None:
        self._ctx: Optional[CallContext] = None

    # -- context management (driven by the runtime) -------------------------
    @property
    def ctx(self) -> CallContext:
        """The active call context; only valid during a call."""
        if self._ctx is None:
            raise ContractError("contract method accessed outside of a call context")
        return self._ctx

    def emit(self, event_name: str, **payload: Any) -> None:
        """Emit an event from the current call."""
        self.ctx.events.append(Event(contract=self.name, name=event_name, payload=dict(payload)))
        self.ctx.charge(375 + 8 * len(str(payload)))

    def require(self, condition: bool, message: str) -> None:
        """Solidity-style ``require``: revert with ``message`` when false."""
        if not condition:
            raise ContractError(message)

    # -- introspection -------------------------------------------------------
    @classmethod
    def callable_methods(cls) -> Dict[str, Callable]:
        """All methods exposed to external callers."""
        methods = {}
        for attr in dir(cls):
            candidate = getattr(cls, attr)
            if callable(candidate) and getattr(candidate, "__contract_method__", False):
                methods[attr] = candidate
        return methods

    @classmethod
    def is_view(cls, method_name: str) -> bool:
        """Whether a method is a read-only view."""
        method = cls.callable_methods().get(method_name)
        if method is None:
            raise ContractError(f"{cls.__name__} has no external method '{method_name}'")
        return bool(getattr(method, "__view_method__", False))


class ContractRuntime:
    """Executes contract calls within call contexts and collects gas/events."""

    def __init__(self) -> None:
        self._contracts: Dict[str, Contract] = {}

    def deploy(self, contract: Contract) -> Contract:
        """Register a contract instance under its name."""
        if contract.name in self._contracts:
            raise ContractError(f"a contract named '{contract.name}' is already deployed")
        self._contracts[contract.name] = contract
        return contract

    def get(self, name: str) -> Contract:
        """Look up a deployed contract by name."""
        if name not in self._contracts:
            raise ContractError(f"no contract deployed under the name '{name}'")
        return self._contracts[name]

    @property
    def deployed_names(self) -> List[str]:
        """Names of all deployed contracts."""
        return sorted(self._contracts)

    def call(
        self,
        contract_name: str,
        method: str,
        args: Optional[Dict[str, Any]] = None,
        sender: str = "0x0",
        block_number: int = 0,
        timestamp: float = 0.0,
        gas_limit: int = 1_000_000,
    ) -> tuple[Any, CallContext]:
        """Execute a contract method and return (result, call context).

        View methods may be called freely; state-mutating methods are normally
        reached through :meth:`repro.chain.blockchain.Blockchain.submit_transaction`,
        which provides ordering and consensus on top of this runtime.
        """
        contract = self.get(contract_name)
        methods = contract.callable_methods()
        if method not in methods:
            raise ContractError(f"contract '{contract_name}' has no external method '{method}'")
        ctx = CallContext(
            sender=sender,
            block_number=block_number,
            timestamp=timestamp,
            gas_limit=gas_limit,
        )
        ctx.charge(contract.base_gas_per_call)
        bound = getattr(contract, method)
        previous = contract._ctx
        contract._ctx = ctx
        try:
            result = bound(**(args or {}))
        finally:
            contract._ctx = previous
        return result, ctx
