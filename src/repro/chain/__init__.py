"""Private Ethereum-style blockchain used as UnifyFL's decentralized orchestrator.

The paper deploys a private chain of Geth nodes with Clique proof-of-authority
consensus and Solidity smart contracts.  This package reproduces the pieces of
that stack whose behaviour UnifyFL observes:

* :mod:`repro.chain.crypto` — hashing and simulated key pairs / signatures.
* :mod:`repro.chain.account` — externally owned accounts with nonces.
* :mod:`repro.chain.transaction` — signed transactions carrying contract calls.
* :mod:`repro.chain.block` — block headers and bodies linked by parent hash.
* :mod:`repro.chain.clique` — the Clique PoA sealer rotation and validation.
* :mod:`repro.chain.blockchain` — the chain itself: a transaction pool,
  block production, validation and state management.
* :mod:`repro.chain.contract` — a Python smart-contract runtime with gas
  accounting and an event log (the stand-in for the EVM + Solidity).
* :mod:`repro.chain.events` — event subscription used by the aggregators to
  follow ``StartTraining`` / ``StartScoring`` notifications.
"""

from repro.chain.account import Account
from repro.chain.block import Block, BlockHeader
from repro.chain.blockchain import Blockchain, BlockchainError
from repro.chain.clique import CliqueEngine, CliqueError
from repro.chain.contract import (
    Contract,
    ContractError,
    ContractRuntime,
    GasExhaustedError,
    contract_method,
    view_method,
)
from repro.chain.crypto import KeyPair, keccak_hex, sign_payload, verify_signature
from repro.chain.events import Event, EventBus, EventFilter
from repro.chain.transaction import Transaction, TransactionReceipt

__all__ = [
    "Account",
    "Block",
    "BlockHeader",
    "Blockchain",
    "BlockchainError",
    "CliqueEngine",
    "CliqueError",
    "Contract",
    "ContractError",
    "ContractRuntime",
    "GasExhaustedError",
    "contract_method",
    "view_method",
    "KeyPair",
    "keccak_hex",
    "sign_payload",
    "verify_signature",
    "Event",
    "EventBus",
    "EventFilter",
    "Transaction",
    "TransactionReceipt",
]
