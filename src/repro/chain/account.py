"""Externally owned accounts on the simulated chain."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chain.crypto import KeyPair


@dataclass
class Account:
    """An account identified by an address, holding a nonce and a balance.

    On the private PoA chain the balance only matters for gas accounting in
    the overhead study; the nonce orders the account's transactions and
    prevents replay, exactly as on Ethereum.
    """

    keypair: KeyPair
    nonce: int = 0
    balance: float = 0.0
    label: str = ""

    @classmethod
    def create(cls, label: str = "", seed: Optional[int] = None, balance: float = 1_000_000.0) -> "Account":
        """Generate a fresh account with a funded balance."""
        return cls(keypair=KeyPair.generate(seed=seed), balance=balance, label=label)

    @property
    def address(self) -> str:
        """The account's hex address."""
        return self.keypair.address

    def next_nonce(self) -> int:
        """Return the nonce to use for the next transaction and advance it."""
        nonce = self.nonce
        self.nonce += 1
        return nonce

    def sign(self, payload: Any) -> str:
        """Sign an arbitrary JSON-serialisable payload."""
        return self.keypair.sign(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        name = self.label or "account"
        return f"Account({name}, {self.address[:10]}..., nonce={self.nonce})"
