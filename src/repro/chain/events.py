"""Contract event log and subscriptions.

UnifyFL's aggregators subscribe to ``StartTraining`` and ``StartScoring``
events emitted by the orchestrator contract (Algorithm 1 in the paper).  The
:class:`EventBus` reproduces the Geth behaviour they rely on: events are
appended in block order, can be filtered by contract / name / block range, and
subscribers receive callbacks as new events are sealed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class Event:
    """A single log entry emitted by a contract method."""

    contract: str
    name: str
    payload: Dict[str, Any]
    block_number: int = -1
    tx_hash: str = ""
    log_index: int = -1


@dataclass
class EventFilter:
    """Criteria for selecting events from the log."""

    contract: Optional[str] = None
    name: Optional[str] = None
    from_block: int = 0
    to_block: Optional[int] = None

    def matches(self, event: Event) -> bool:
        if self.contract is not None and event.contract != self.contract:
            return False
        if self.name is not None and event.name != self.name:
            return False
        if event.block_number < self.from_block:
            return False
        if self.to_block is not None and event.block_number > self.to_block:
            return False
        return True


class EventBus:
    """Append-only event log with filtering and callback subscriptions."""

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._subscribers: List[tuple[EventFilter, Callable[[Event], None]]] = []

    def append(self, event: Event) -> Event:
        """Record an event (already stamped with block metadata) and notify."""
        stamped = Event(
            contract=event.contract,
            name=event.name,
            payload=dict(event.payload),
            block_number=event.block_number,
            tx_hash=event.tx_hash,
            log_index=len(self._events),
        )
        self._events.append(stamped)
        for event_filter, callback in list(self._subscribers):
            if event_filter.matches(stamped):
                callback(stamped)
        return stamped

    def query(self, event_filter: Optional[EventFilter] = None) -> List[Event]:
        """Return all events matching a filter, in log order."""
        event_filter = event_filter or EventFilter()
        return [e for e in self._events if event_filter.matches(e)]

    def subscribe(self, callback: Callable[[Event], None], event_filter: Optional[EventFilter] = None) -> Callable[[], None]:
        """Register a callback for future events; returns an unsubscribe function."""
        entry = (event_filter or EventFilter(), callback)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            if entry in self._subscribers:
                self._subscribers.remove(entry)

        return unsubscribe

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[Event]:
        """A copy of the full event log."""
        return list(self._events)
