"""Differential privacy for client updates (the paper's §5 Q3 future work).

UnifyFL inherits traditional FL's privacy model: raw data never leaves a
client, but model updates do.  The paper names Differential Privacy as the
first privacy-enhancing technique to integrate.  This module implements the
standard DP-FedAvg client-side mechanism:

1. compute the client's *update* (new weights minus the received global
   weights),
2. clip the update to an L2 norm bound ``clip_norm``, and
3. add Gaussian noise with standard deviation
   ``noise_multiplier * clip_norm`` to every coordinate.

The mechanism is exposed two ways: :class:`GaussianDPMechanism` for direct
use, and via :class:`repro.fl.client.ClientConfig`'s ``dp_clip_norm`` /
``dp_noise_multiplier`` fields, which make every client of a cluster privatise
its updates before they reach the aggregator (and therefore before anything is
published to the storage swarm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.ml.tensor_utils import add_weights, clip_weights, subtract_weights

Weights = List[np.ndarray]


@dataclass(frozen=True)
class PrivacyAccountant:
    """Tracks the (approximate) privacy budget spent across rounds.

    The accountant uses the simple composition bound for the Gaussian
    mechanism: each application with noise multiplier ``z`` is
    (ε₀, δ)-DP with ε₀ ≈ sqrt(2 ln(1.25/δ)) / z, and ε adds up linearly across
    rounds.  This is intentionally conservative (no moments accountant); it is
    meant to let experiments report a budget, not to be a tight analysis.
    """

    noise_multiplier: float
    delta: float = 1e-5

    def epsilon_per_round(self) -> float:
        """Approximate ε spent by one privatised update."""
        if self.noise_multiplier <= 0:
            return float("inf")
        return float(np.sqrt(2.0 * np.log(1.25 / self.delta)) / self.noise_multiplier)

    def epsilon_after(self, rounds: int) -> float:
        """Approximate cumulative ε after ``rounds`` privatised updates."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        return rounds * self.epsilon_per_round()


class GaussianDPMechanism:
    """Clip-and-noise mechanism applied to a client's model update."""

    def __init__(
        self,
        clip_norm: float = 1.0,
        noise_multiplier: float = 0.1,
        delta: float = 1e-5,
        rng: Optional[np.random.Generator] = None,
    ):
        if clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        self.clip_norm = clip_norm
        self.noise_multiplier = noise_multiplier
        self.accountant = PrivacyAccountant(noise_multiplier=noise_multiplier, delta=delta)
        self._rng = rng or np.random.default_rng(0)
        self._applications = 0

    @property
    def applications(self) -> int:
        """How many updates have been privatised so far."""
        return self._applications

    def privatize_update(self, update: Sequence[np.ndarray]) -> Weights:
        """Clip an update to ``clip_norm`` and add calibrated Gaussian noise."""
        clipped = clip_weights(list(update), self.clip_norm)
        if self.noise_multiplier > 0:
            sigma = self.noise_multiplier * self.clip_norm
            clipped = [w + self._rng.normal(scale=sigma, size=w.shape) for w in clipped]
        self._applications += 1
        return clipped

    def privatize_weights(
        self, global_weights: Sequence[np.ndarray], new_weights: Sequence[np.ndarray]
    ) -> Weights:
        """Privatise trained weights relative to the global weights they started from.

        Returns weights equal to ``global_weights`` plus the privatised update,
        which is what the client reports to its aggregator.
        """
        update = subtract_weights(new_weights, global_weights)
        private_update = self.privatize_update(update)
        return add_weights(list(global_weights), private_update)

    def spent_epsilon(self) -> float:
        """Approximate cumulative ε spent through this mechanism so far."""
        return self.accountant.epsilon_after(self._applications)
