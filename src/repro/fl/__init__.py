"""Single-silo federated learning framework (the Flower-equivalent substrate).

UnifyFL is implemented *on top of* an existing FL framework: inside every
silo (cluster), an aggregator coordinates its own clients through standard
FedAvg-style rounds.  This package provides that layer:

* :class:`~repro.fl.client.Client` — owns a local data partition, trains the
  global model for a configurable number of local epochs, and evaluates.
* :class:`~repro.fl.strategy.FedAvg` / :class:`~repro.fl.strategy.FedYogi` /
  :class:`~repro.fl.strategy.FedAdagrad` — aggregation strategies.
* :class:`~repro.fl.server.FLServer` — the in-cluster aggregator running the
  client/strategy round loop and recording history.
"""

from repro.fl.client import Client, ClientConfig, FitResult
from repro.fl.history import RoundMetrics, TrainingHistory
from repro.fl.privacy import GaussianDPMechanism, PrivacyAccountant
from repro.fl.server import FLServer
from repro.fl.strategy import (
    FedAdagrad,
    FedAvg,
    FedYogi,
    Strategy,
    build_strategy,
)

__all__ = [
    "Client",
    "ClientConfig",
    "FitResult",
    "RoundMetrics",
    "TrainingHistory",
    "GaussianDPMechanism",
    "PrivacyAccountant",
    "FLServer",
    "FedAdagrad",
    "FedAvg",
    "FedYogi",
    "Strategy",
    "build_strategy",
]
