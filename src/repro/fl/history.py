"""Round-by-round training history for FL runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RoundMetrics:
    """Metrics recorded for a single federated round."""

    round_number: int
    loss: float
    accuracy: float
    num_clients: int = 0
    sim_time: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Accumulates :class:`RoundMetrics` across an FL run."""

    rounds: List[RoundMetrics] = field(default_factory=list)

    def record(self, metrics: RoundMetrics) -> None:
        """Append one round of metrics."""
        self.rounds.append(metrics)

    def __len__(self) -> int:
        return len(self.rounds)

    @property
    def final_accuracy(self) -> float:
        """Accuracy of the most recent round (NaN when no rounds recorded)."""
        return self.rounds[-1].accuracy if self.rounds else float("nan")

    @property
    def final_loss(self) -> float:
        """Loss of the most recent round (NaN when no rounds recorded)."""
        return self.rounds[-1].loss if self.rounds else float("nan")

    @property
    def best_accuracy(self) -> float:
        """Highest accuracy observed across all rounds."""
        return max((r.accuracy for r in self.rounds), default=float("nan"))

    def accuracies(self) -> List[float]:
        """Accuracy series over rounds."""
        return [r.accuracy for r in self.rounds]

    def losses(self) -> List[float]:
        """Loss series over rounds."""
        return [r.loss for r in self.rounds]

    def sim_times(self) -> List[float]:
        """Simulated completion time of each round."""
        return [r.sim_time for r in self.rounds]

    def rounds_to_reach(self, target_accuracy: float) -> Optional[int]:
        """First round number whose accuracy meets the target, if any."""
        for metrics in self.rounds:
            if metrics.accuracy >= target_accuracy:
                return metrics.round_number
        return None
