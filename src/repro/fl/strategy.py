"""Server-side aggregation strategies.

``FedAvg`` is the sample-weighted average of McMahan et al.; ``FedYogi`` and
``FedAdagrad`` follow the adaptive-federated-optimisation formulation of
Reddi et al. (2021): the strategy keeps server-side optimizer state and
applies the averaged client update as a pseudo-gradient.  UnifyFL's
flexibility experiment (Table 5 Run 4) mixes FedAvg and FedYogi aggregators
within the same federation, which these classes make possible because each
aggregator owns its own strategy instance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.client import FitResult
from repro.ml.optim import Adagrad, Optimizer, Yogi
from repro.ml.tensor_utils import RunningWeightedAverage, subtract_weights


class Strategy:
    """Base class: combine client fit results into new global weights."""

    name = "strategy"

    def aggregate(
        self,
        current_weights: List[np.ndarray],
        results: Sequence[FitResult],
    ) -> List[np.ndarray]:
        """Produce new global weights from the previous weights and updates."""
        raise NotImplementedError

    def aggregate_weight_sets(
        self,
        current_weights: List[np.ndarray],
        weight_sets: Sequence[List[np.ndarray]],
        coefficients: Optional[Sequence[float]] = None,
    ) -> List[np.ndarray]:
        """Aggregate raw weight lists (used for cross-silo global aggregation).

        UnifyFL's aggregators re-use their in-cluster strategy when combining
        the *global* models pulled from other silos, so this entry point takes
        plain weight lists instead of :class:`FitResult` objects.
        """
        results = [
            FitResult(client_id=f"peer-{i}", weights=w, num_samples=1)
            for i, w in enumerate(weight_sets)
        ]
        if coefficients is not None:
            if len(coefficients) != len(results):
                raise ValueError("coefficients must match the number of weight sets")
            for result, coef in zip(results, coefficients):
                result.num_samples = max(1, int(round(float(coef) * 1000)))
        return self.aggregate(current_weights, results)

    def aggregate_stream(
        self,
        current_weights: List[np.ndarray],
        contributions: Iterable[Tuple[List[np.ndarray], float]],
    ) -> List[np.ndarray]:
        """Aggregate ``(weights, coefficient)`` pairs from a lazy producer.

        The streaming entry point of the aggregation path: the aggregator
        feeds pulled peer models through here one at a time so a strategy
        that can fold contributors in place (``FedAvg`` with
        ``streaming=True``) never holds the whole round in memory.  The
        base implementation simply materialises the pairs and delegates to
        :meth:`aggregate_weight_sets`, which keeps the server-side optimizer
        strategies working unchanged.
        """
        weight_sets: List[List[np.ndarray]] = []
        coefficients: List[float] = []
        for weights, coefficient in contributions:
            weight_sets.append(weights)
            coefficients.append(float(coefficient))
        if not weight_sets:
            return [np.array(w, copy=True) for w in current_weights]
        # Pass coefficients only when they carry information: an all-ones
        # vector must take the historical no-coefficient path so the
        # num_samples quantisation cannot perturb bit-identical results.
        if all(c == 1.0 for c in coefficients):
            return self.aggregate_weight_sets(current_weights, weight_sets)
        return self.aggregate_weight_sets(current_weights, weight_sets, coefficients)


class FedAvg(Strategy):
    """Sample-count-weighted averaging of client models.

    Aggregation runs through :class:`RunningWeightedAverage`.  With
    ``streaming=False`` (the default) the accumulator's exact mode delegates
    to the historical stacked contraction, so results are bit-identical to
    every earlier release.  With ``streaming=True`` contributors are folded
    in place as they arrive — O(1) model-sized buffers instead of a stack of
    the whole round — at the cost of the last bit versus the BLAS
    contraction; the sampled-federation path opts in.
    """

    name = "fedavg"

    def __init__(self, streaming: bool = False):
        self.streaming = streaming

    def aggregate(
        self,
        current_weights: List[np.ndarray],
        results: Sequence[FitResult],
    ) -> List[np.ndarray]:
        if not results:
            return [np.array(w, copy=True) for w in current_weights]
        accumulator = RunningWeightedAverage(exact=not self.streaming)
        for result in results:
            accumulator.add(result.weights, float(result.num_samples))
        return accumulator.finalize()

    def aggregate_stream(
        self,
        current_weights: List[np.ndarray],
        contributions: Iterable[Tuple[List[np.ndarray], float]],
    ) -> List[np.ndarray]:
        accumulator = RunningWeightedAverage(exact=not self.streaming)
        for weights, coefficient in contributions:
            accumulator.add(weights, float(coefficient))
        if accumulator.count == 0:
            return [np.array(w, copy=True) for w in current_weights]
        return accumulator.finalize()


class _ServerOptStrategy(Strategy):
    """Shared machinery for strategies that apply a server-side optimizer."""

    def __init__(self, optimizer: Optimizer):
        self._optimizer = optimizer

    def aggregate(
        self,
        current_weights: List[np.ndarray],
        results: Sequence[FitResult],
    ) -> List[np.ndarray]:
        if not results:
            return [np.array(w, copy=True) for w in current_weights]
        averaged = FedAvg().aggregate(current_weights, results)
        # Pseudo-gradient: the negative of the average client movement.
        pseudo_grad = subtract_weights(current_weights, averaged)
        new_weights = [np.array(w, copy=True) for w in current_weights]
        self._optimizer.step(new_weights, pseudo_grad)
        return new_weights

    def reset(self) -> None:
        """Clear the server optimizer's state (used between experiments)."""
        self._optimizer.reset()


class FedYogi(_ServerOptStrategy):
    """FedYogi: server-side Yogi optimizer applied to the averaged update."""

    name = "fedyogi"

    def __init__(self, learning_rate: float = 0.05, beta1: float = 0.9, beta2: float = 0.99, eps: float = 1e-3):
        super().__init__(Yogi(learning_rate=learning_rate, beta1=beta1, beta2=beta2, eps=eps))


class FedAdagrad(_ServerOptStrategy):
    """FedAdagrad: server-side Adagrad optimizer applied to the averaged update."""

    name = "fedadagrad"

    def __init__(self, learning_rate: float = 0.05, eps: float = 1e-6):
        super().__init__(Adagrad(learning_rate=learning_rate, eps=eps))


_STRATEGIES: Dict[str, type] = {
    "fedavg": FedAvg,
    "fedyogi": FedYogi,
    "fedadagrad": FedAdagrad,
}


def build_strategy(name: str, streaming: bool = False, **kwargs) -> Strategy:
    """Construct a strategy by name (``fedavg``, ``fedyogi``, ``fedadagrad``).

    ``streaming=True`` opts ``fedavg`` into the in-place accumulator (used
    by sampled federations); the server-side optimizer strategies ignore it
    because their pseudo-gradient step needs the full averaged model anyway.
    """
    key = name.lower()
    if key not in _STRATEGIES:
        raise ValueError(f"unknown strategy '{name}'; available: {sorted(_STRATEGIES)}")
    strategy = _STRATEGIES[key](**kwargs)
    if streaming and isinstance(strategy, FedAvg):
        strategy.streaming = True
    return strategy
