"""Federated learning clients.

Clients hold a private partition of the training data, receive global weights
from their cluster's aggregator, train locally for a small number of epochs,
and return the updated weights together with sample counts and metrics —
exactly the Flower ``fit``/``evaluate`` contract the paper's clients follow
(Section 3.4.5: "clients operate as standard Flower clients and remain
unaffected by the changes made to the aggregators").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.ml.losses import CrossEntropyLoss
from repro.ml.models import Model
from repro.ml.optim import Optimizer, build_optimizer


@dataclass
class ClientConfig:
    """Hyper-parameters of local training (Table 4 of the paper).

    The two ``dp_*`` fields enable the differential-privacy extension of the
    paper's Section 5: when ``dp_clip_norm`` is set, every update the client
    reports is clipped to that L2 norm and perturbed with Gaussian noise of
    scale ``dp_noise_multiplier * dp_clip_norm``
    (see :mod:`repro.fl.privacy`).
    """

    local_epochs: int = 2
    batch_size: int = 5
    learning_rate: float = 0.01
    optimizer: str = "sgd"
    momentum: float = 0.0
    seed: Optional[int] = None
    dp_clip_norm: Optional[float] = None
    dp_noise_multiplier: float = 0.0

    def __post_init__(self) -> None:
        if self.local_epochs <= 0:
            raise ValueError("local_epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.dp_clip_norm is not None and self.dp_clip_norm <= 0:
            raise ValueError("dp_clip_norm must be positive when set")
        if self.dp_noise_multiplier < 0:
            raise ValueError("dp_noise_multiplier must be non-negative")


@dataclass
class FitResult:
    """Outcome of one local-training request to a client."""

    client_id: str
    weights: List[np.ndarray]
    num_samples: int
    metrics: Dict[str, float] = field(default_factory=dict)


class Client:
    """An FL client owning a private data partition and a local model copy."""

    def __init__(
        self,
        client_id: str,
        model: Model,
        train_data: Dataset,
        eval_data: Optional[Dataset] = None,
        config: Optional[ClientConfig] = None,
    ):
        if len(train_data) == 0:
            raise ValueError(f"client {client_id} has an empty training partition")
        self.client_id = client_id
        self.model = model
        self.train_data = train_data
        self.eval_data = eval_data
        self.config = config or ClientConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._optimizer: Optimizer = self._build_optimizer()
        self._dp_mechanism = None
        if self.config.dp_clip_norm is not None:
            from repro.fl.privacy import GaussianDPMechanism

            self._dp_mechanism = GaussianDPMechanism(
                clip_norm=self.config.dp_clip_norm,
                noise_multiplier=self.config.dp_noise_multiplier,
                rng=self._rng,
            )

    def _build_optimizer(self) -> Optimizer:
        kwargs: Dict[str, float] = {"learning_rate": self.config.learning_rate}
        if self.config.optimizer.lower() == "sgd":
            kwargs["momentum"] = self.config.momentum
        return build_optimizer(self.config.optimizer, **kwargs)

    @property
    def num_samples(self) -> int:
        """Size of this client's private training partition."""
        return len(self.train_data)

    def get_weights(self) -> List[np.ndarray]:
        """Current local model weights."""
        return self.model.get_weights()

    def fit(self, global_weights: List[np.ndarray]) -> FitResult:
        """Install the global weights, train locally, and return the update."""
        self.model.set_weights(global_weights)
        losses = self.model.fit(
            self.train_data.x,
            self.train_data.y,
            epochs=self.config.local_epochs,
            batch_size=self.config.batch_size,
            optimizer=self._optimizer,
            loss_fn=CrossEntropyLoss(),
            rng=self._rng,
        )
        metrics = {"train_loss": float(losses[-1]) if losses else float("nan")}
        reported_weights = self.model.get_weights()
        if self._dp_mechanism is not None:
            reported_weights = self._dp_mechanism.privatize_weights(global_weights, reported_weights)
            metrics["dp_epsilon_spent"] = self._dp_mechanism.spent_epsilon()
        return FitResult(
            client_id=self.client_id,
            weights=reported_weights,
            num_samples=self.num_samples,
            metrics=metrics,
        )

    def evaluate(self, weights: List[np.ndarray]) -> Dict[str, float]:
        """Evaluate the given weights on this client's evaluation partition.

        Falls back to the training partition when no evaluation data was
        provided (the paper's scorers likewise use whatever held-out split the
        silo owns).
        """
        data = self.eval_data if self.eval_data is not None and len(self.eval_data) else self.train_data
        self.model.set_weights(weights)
        loss, accuracy = self.model.evaluate(data.x, data.y)
        return {"loss": loss, "accuracy": accuracy, "num_samples": float(len(data))}
