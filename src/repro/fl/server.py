"""In-cluster FL aggregation server.

This is the single-silo ("single-level FL") loop the paper's Table 1 runs in
its *No Collab* configuration and that every UnifyFL cluster runs internally
each round: broadcast global weights to the cluster's clients, collect their
locally trained weights, aggregate with the cluster's strategy, and evaluate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.fl.client import Client, FitResult
from repro.fl.history import RoundMetrics, TrainingHistory
from repro.fl.strategy import FedAvg, Strategy


class FLServer:
    """Coordinates FedAvg-style rounds over a fixed set of clients."""

    def __init__(
        self,
        server_id: str,
        model_weights: List[np.ndarray],
        clients: Sequence[Client],
        strategy: Optional[Strategy] = None,
        eval_data: Optional[Dataset] = None,
        eval_model=None,
    ):
        if not clients:
            raise ValueError("FLServer requires at least one client")
        self.server_id = server_id
        self.global_weights = [np.array(w, copy=True) for w in model_weights]
        self.clients = list(clients)
        self.strategy = strategy or FedAvg()
        self.eval_data = eval_data
        self.eval_model = eval_model
        self.history = TrainingHistory()
        self._round = 0

    @property
    def current_round(self) -> int:
        """Number of completed federated rounds."""
        return self._round

    def run_round(self, client_fraction: float = 1.0, rng: Optional[np.random.Generator] = None) -> RoundMetrics:
        """Execute one federated round and return its metrics."""
        if not 0.0 < client_fraction <= 1.0:
            raise ValueError("client_fraction must be in (0, 1]")
        rng = rng or np.random.default_rng(0)
        participants = self._select_clients(client_fraction, rng)
        results = [client.fit(self.global_weights) for client in participants]
        self.global_weights = self.strategy.aggregate(self.global_weights, results)
        self._round += 1
        metrics = self._evaluate_round(results)
        self.history.record(metrics)
        return metrics

    def run(self, num_rounds: int, client_fraction: float = 1.0, seed: Optional[int] = None) -> TrainingHistory:
        """Run several rounds back to back."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        rng = np.random.default_rng(seed)
        for _ in range(num_rounds):
            self.run_round(client_fraction=client_fraction, rng=rng)
        return self.history

    def evaluate(self) -> Dict[str, float]:
        """Evaluate the current global weights on the server's evaluation data.

        Falls back to averaging client-side evaluations when the server has no
        held-out dataset of its own.
        """
        if self.eval_data is not None and self.eval_model is not None and len(self.eval_data):
            self.eval_model.set_weights(self.global_weights)
            loss, accuracy = self.eval_model.evaluate(self.eval_data.x, self.eval_data.y)
            return {"loss": loss, "accuracy": accuracy}
        evals = [client.evaluate(self.global_weights) for client in self.clients]
        total = sum(e["num_samples"] for e in evals)
        loss = sum(e["loss"] * e["num_samples"] for e in evals) / total
        accuracy = sum(e["accuracy"] * e["num_samples"] for e in evals) / total
        return {"loss": loss, "accuracy": accuracy}

    def _select_clients(self, fraction: float, rng: np.random.Generator) -> List[Client]:
        count = max(1, int(round(fraction * len(self.clients))))
        if count >= len(self.clients):
            return list(self.clients)
        picked = rng.choice(len(self.clients), size=count, replace=False)
        return [self.clients[i] for i in sorted(picked)]

    def _evaluate_round(self, results: Sequence[FitResult]) -> RoundMetrics:
        evaluation = self.evaluate()
        return RoundMetrics(
            round_number=self._round,
            loss=evaluation["loss"],
            accuracy=evaluation["accuracy"],
            num_clients=len(results),
        )
