"""UnifyFL reproduction: decentralized cross-silo federated learning.

The package is organised as one subpackage per subsystem:

* ``repro.ml`` — numpy neural-network engine (the PyTorch substitute).
* ``repro.datasets`` — synthetic CIFAR-10 / Tiny-ImageNet workloads and the
  IID / Dirichlet non-IID partitioners.
* ``repro.fl`` — the in-cluster federated-learning framework (the Flower
  substitute): clients, server, FedAvg / FedYogi strategies.
* ``repro.chain`` — the private Ethereum-style blockchain with Clique PoA and
  a Python smart-contract runtime (the Geth + Solidity substitute).
* ``repro.ipfs`` — content-addressed distributed storage (the IPFS substitute).
* ``repro.simnet`` — simulated clocks, hardware profiles, links and resource
  accounting standing in for the paper's physical testbeds.
* ``repro.core`` — UnifyFL itself: the orchestrator contract, aggregators,
  scoring, policies, Sync/Async orchestration, attacks, baselines and the
  experiment runner.

Quick start::

    from repro.core import (
        ExperimentConfig, cifar10_workload, edge_cluster_configs, run_experiment,
    )

    config = ExperimentConfig(
        name="quickstart",
        workload=cifar10_workload(rounds=5),
        clusters=edge_cluster_configs(),
        mode="async",
        partitioning="dirichlet",
        dirichlet_alpha=0.5,
        rounds=5,
    )
    result = run_experiment(config)
    print(result.mean_global_accuracy)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
