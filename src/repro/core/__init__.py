"""UnifyFL core: the paper's primary contribution.

This package assembles the substrates (``repro.ml``, ``repro.datasets``,
``repro.fl``, ``repro.chain``, ``repro.ipfs``, ``repro.simnet``) into the
decentralized cross-silo federated-learning framework described in the paper:

* the orchestrator smart contract (:mod:`repro.core.contract`),
* the cluster aggregator with its trainer/scorer duality
  (:mod:`repro.core.aggregator`),
* accuracy and MultiKRUM scoring (:mod:`repro.core.scorer`),
* aggregation and scoring policies (:mod:`repro.core.policies`),
* synchronous and asynchronous orchestration (:mod:`repro.core.orchestrator`),
* Byzantine attacks (:mod:`repro.core.attacks`),
* the baselines UnifyFL is compared against (:mod:`repro.core.baselines`), and
* the experiment runner and result/table utilities
  (:mod:`repro.core.runner`, :mod:`repro.core.results`).
"""

from repro.core.aggregator import AggregatorRoundRecord, UnifyFLAggregator
from repro.core.attacks import (
    GaussianNoiseAttack,
    ModelPoisoningAttack,
    ScalingAttack,
    SignFlipAttack,
    ZeroAttack,
    available_attacks,
    build_attack,
)
from repro.core.baselines import (
    BaselineClusterResult,
    BaselineResult,
    CentralizedMultilevelBaseline,
    NoCollabBaseline,
    SingleLevelFL,
)
from repro.core.capabilities import (
    FrameworkCapabilities,
    capability_table,
    format_capability_table,
    sync_async_comparison,
    unifyfl_capabilities,
)
from repro.core.config import (
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
    cifar10_workload,
    edge_cluster_configs,
    gpu_cluster_configs,
    tiny_imagenet_workload,
)
from repro.core.contract import ModelSubmission, UnifyFLContract
from repro.core.multimodel import (
    MultiModelCollaboration,
    MultiModelParticipant,
    MultiModelRoundRecord,
)
from repro.core.orchestrator import (
    AsyncOrchestrator,
    GossipOrchestrator,
    HierarchicalOrchestrator,
    OrchestrationResult,
    SemiSyncOrchestrator,
    SyncOrchestrator,
)
from repro.core.policies import (
    AboveAverage,
    AboveMedian,
    AboveSelf,
    AggregationPolicy,
    CandidateModel,
    MaxScore,
    MeanScore,
    MedianScore,
    MinScore,
    PickAll,
    PickSelf,
    RandomK,
    ScoringPolicy,
    TopK,
    available_aggregation_policies,
    available_scoring_policies,
    build_aggregation_policy,
    build_scoring_policy,
)
from repro.core.reporting import (
    load_result_json,
    load_results_csv,
    result_to_dict,
    save_result_json,
    save_results_csv,
)
from repro.core.results import (
    AggregatorResult,
    ExperimentResult,
    format_comm_table,
    format_comparison,
    format_policy_table,
    format_resource_table,
    format_run_table,
)
from repro.core.runner import ExperimentRunner, run_experiment
from repro.core.scorer import (
    AccuracyScorer,
    CosineSimilarityScorer,
    LossScorer,
    MultiKRUMScorer,
    Scorer,
    build_scorer,
)
from repro.core.timing import ClusterTimingModel, RoundTiming

__all__ = [
    "AggregatorRoundRecord",
    "UnifyFLAggregator",
    "GaussianNoiseAttack",
    "ModelPoisoningAttack",
    "ScalingAttack",
    "SignFlipAttack",
    "ZeroAttack",
    "available_attacks",
    "build_attack",
    "BaselineClusterResult",
    "BaselineResult",
    "CentralizedMultilevelBaseline",
    "NoCollabBaseline",
    "SingleLevelFL",
    "FrameworkCapabilities",
    "capability_table",
    "format_capability_table",
    "sync_async_comparison",
    "unifyfl_capabilities",
    "ClusterConfig",
    "ExperimentConfig",
    "WorkloadConfig",
    "cifar10_workload",
    "edge_cluster_configs",
    "gpu_cluster_configs",
    "tiny_imagenet_workload",
    "ModelSubmission",
    "UnifyFLContract",
    "MultiModelCollaboration",
    "MultiModelParticipant",
    "MultiModelRoundRecord",
    "AsyncOrchestrator",
    "GossipOrchestrator",
    "HierarchicalOrchestrator",
    "OrchestrationResult",
    "SemiSyncOrchestrator",
    "SyncOrchestrator",
    "AboveAverage",
    "AboveMedian",
    "AboveSelf",
    "AggregationPolicy",
    "CandidateModel",
    "MaxScore",
    "MeanScore",
    "MedianScore",
    "MinScore",
    "PickAll",
    "PickSelf",
    "RandomK",
    "ScoringPolicy",
    "TopK",
    "available_aggregation_policies",
    "available_scoring_policies",
    "build_aggregation_policy",
    "build_scoring_policy",
    "load_result_json",
    "load_results_csv",
    "result_to_dict",
    "save_result_json",
    "save_results_csv",
    "AggregatorResult",
    "ExperimentResult",
    "format_comm_table",
    "format_comparison",
    "format_policy_table",
    "format_resource_table",
    "format_run_table",
    "ExperimentRunner",
    "run_experiment",
    "AccuracyScorer",
    "CosineSimilarityScorer",
    "LossScorer",
    "MultiKRUMScorer",
    "Scorer",
    "build_scorer",
    "ClusterTimingModel",
    "RoundTiming",
]
