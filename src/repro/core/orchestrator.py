"""Orchestration of a UnifyFL federation (Sections 3.2 / 3.3).

The orchestrator in UnifyFL is logically the smart contract; these classes
drive the protocol steps against the contract and manage the simulated time
of every cluster.  Since the discrete-event refactor they are thin facades:
each one owns a :class:`~repro.sched.kernel.SimulationKernel` and installs a
*round policy* (:mod:`repro.sched.policies`) that expresses its mode as an
event stream:

* :class:`SyncOrchestrator` — all clusters move through the training and
  scoring phases together.  Each phase has a fixed duration (provisioned from
  the timing model, or supplied explicitly); clusters that finish early idle
  until the phase window closes, and a cluster whose work exceeds the window
  *straggles*: its model is only submitted in the next round.
* :class:`AsyncOrchestrator` — clusters run independently.  Each cluster is
  an event stream keyed by its simulated clock; the heap always dispatches
  the earliest one (O(log n), replacing the old per-step O(n) scan).  When a
  model CID is submitted the contract immediately assigns scorers, and
  scorers handle their queue the next time they are idle.
* :class:`SemiSyncOrchestrator` — bounded-staleness buffered-async
  (FedBuff-style): clusters free-run like Async, but a logical round only
  closes once ``quorum_k`` clusters have submitted or ``max_staleness``
  simulated seconds elapse, and a cluster that already fed the open round
  waits for the close before training again.
* :class:`HierarchicalOrchestrator` — clusters grouped by topology site run
  cheap LAN-priced local aggregation rounds; one rotating leader per site
  submits over WAN/chain per global round, under a per-cluster round budget.
* :class:`GossipOrchestrator` — barrier-free epidemic rounds: each cluster
  pulls ``gossip_fanout`` deterministic seeded peers' published models,
  merges locally, trains and re-publishes.

Every orchestration mode registers itself with the round-policy registry
(:mod:`repro.sched.registry`) at the bottom of this module; the runner, the
``ExperimentConfig`` validation, the CLI ``--mode`` choices and the
contract's behaviour profile are all derived from those registrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.runner import ClientPopulation

from repro.chain.account import Account
from repro.chain.blockchain import Blockchain
from repro.core.aggregator import AggregatorRoundRecord, UnifyFLAggregator
from repro.core.timing import ClusterTimingModel
from repro.sched.actors import CommFabric
from repro.sched.kernel import SimulationKernel
from repro.core.config import ExperimentConfig, majority_quorum, validate_semi_params
from repro.sched.policies import (
    AsyncRoundPolicy,
    GossipRoundPolicy,
    HierarchicalRoundPolicy,
    OrchestrationContext,
    RoundPolicy,
    SemiSyncRoundPolicy,
    SyncRoundPolicy,
)
from repro.sched.registry import (
    ContractProfile,
    PolicyBuildContext,
    PolicySpec,
    register_policy,
)


@dataclass
class OrchestrationResult:
    """Outcome of driving a federation for a number of rounds."""

    mode: str
    rounds_completed: int
    #: per-aggregator history, keyed by cluster name.
    histories: Dict[str, List[AggregatorRoundRecord]] = field(default_factory=dict)
    #: per-aggregator total simulated time.
    total_times: Dict[str, float] = field(default_factory=dict)
    #: per-aggregator cumulative idle (barrier / quorum-wait) time — zero in async mode.
    idle_times: Dict[str, float] = field(default_factory=dict)
    #: count of straggler incidents per aggregator.
    straggler_counts: Dict[str, int] = field(default_factory=dict)
    #: policy-specific annotations (semi-sync quorum/staleness closures, ...).
    extras: Dict[str, object] = field(default_factory=dict)


class _BaseOrchestrator:
    """Shared plumbing: validation, registration, kernel driving, results."""

    mode = "base"

    def __init__(
        self,
        chain: Blockchain,
        driver_account: Account,
        aggregators: Sequence[UnifyFLAggregator],
        timing_model: ClusterTimingModel,
        comm: Optional[CommFabric] = None,
        population: Optional["ClientPopulation"] = None,
    ):
        if not aggregators:
            raise ValueError("an orchestrator needs at least one aggregator")
        names = [a.name for a in aggregators]
        if len(set(names)) != len(names):
            raise ValueError("aggregator names must be unique")
        self.chain = chain
        self.driver = driver_account
        #: sampled federations keep the *live* list the population appends
        #: to, so clusters that materialise mid-run show up in the results;
        #: the classic shape copies, as the list is fixed for the whole run.
        self.population = population
        self.aggregators = aggregators if population is not None else list(aggregators)
        self.timing = timing_model
        #: event-stream communication fabric shared with the aggregators, or
        #: ``None`` for the constant-cost timing path.
        self.comm = comm
        self._idle_totals: Dict[str, float] = {a.name: 0.0 for a in aggregators}
        self._straggles: Dict[str, int] = {a.name: 0 for a in aggregators}
        self.kernel: Optional[SimulationKernel] = None
        #: optional simulation sanitizer, installed on every kernel this
        #: orchestrator creates (set by the runner before :meth:`run`).
        self.sanitizer = None

    def register_all(self) -> None:
        """Register every aggregator with the contract (idempotent per run)."""
        registered = set(self.chain.call("unifyfl", "getAggregators"))
        for aggregator in self.aggregators:
            if aggregator.address not in registered:
                aggregator.register(mine=False)
        self.chain.mine_until_empty()

    def _context(self, num_rounds: int) -> OrchestrationContext:
        return OrchestrationContext(
            chain=self.chain,
            driver=self.driver,
            aggregators=self.aggregators,
            timing=self.timing,
            num_rounds=num_rounds,
            idle_totals=self._idle_totals,
            straggles=self._straggles,
            comm=self.comm,
            population=self.population,
        )

    def _build_policy(self, ctx: OrchestrationContext) -> RoundPolicy:
        raise NotImplementedError

    def run(self, num_rounds: int) -> OrchestrationResult:
        """Drive the federation until every cluster completed ``num_rounds``."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        self.register_all()
        self.kernel = SimulationKernel()
        self.kernel.sanitizer = self.sanitizer
        policy = self._build_policy(self._context(num_rounds))
        policy.install(self.kernel)
        self.kernel.run()
        policy.finalize()
        return self._result(num_rounds, policy)

    def _result(self, rounds: int, policy: Optional[RoundPolicy] = None) -> OrchestrationResult:
        extras = dict(policy.extras()) if policy is not None else {}
        # Memory behaviour of the per-aggregator model caches: hit rate says
        # how much IPFS traffic the LRU absorbed, evictions say whether the
        # working set outgrew its bound.
        extras["weights_cache_hits"] = sum(a.weights_cache_hits for a in self.aggregators)
        extras["weights_cache_evictions"] = sum(
            a.weights_cache_evictions for a in self.aggregators
        )
        return OrchestrationResult(
            mode=self.mode,
            rounds_completed=rounds,
            histories={a.name: list(a.history) for a in self.aggregators},
            total_times={a.name: a.total_time() for a in self.aggregators},
            idle_times=dict(self._idle_totals),
            straggler_counts=dict(self._straggles),
            extras=extras,
        )


class SyncOrchestrator(_BaseOrchestrator):
    """Lock-step orchestration with fixed phase windows."""

    mode = "sync"

    def __init__(
        self,
        chain: Blockchain,
        driver_account: Account,
        aggregators: Sequence[UnifyFLAggregator],
        timing_model: ClusterTimingModel,
        training_window: Optional[float] = None,
        scoring_window: Optional[float] = None,
        scoring_algorithm: str = "accuracy",
        comm: Optional[CommFabric] = None,
        population: Optional["ClientPopulation"] = None,
    ):
        super().__init__(
            chain, driver_account, aggregators, timing_model, comm=comm, population=population
        )
        clusters = [a.config for a in aggregators]
        # ``is not None`` rather than truthiness: an explicit window of 0.0 is
        # a (degenerate but meaningful) operator choice, not "use the default".
        if training_window is not None:
            self.training_window = training_window
        else:
            self.training_window = timing_model.expected_training_window(clusters)
        if scoring_window is not None:
            self.scoring_window = scoring_window
        else:
            self.scoring_window = timing_model.expected_scoring_window(
                clusters, algorithm=scoring_algorithm
            )

    def _build_policy(self, ctx: OrchestrationContext) -> RoundPolicy:
        return SyncRoundPolicy(
            ctx, training_window=self.training_window, scoring_window=self.scoring_window
        )


class AsyncOrchestrator(_BaseOrchestrator):
    """Event-driven orchestration where every cluster proceeds at its own pace."""

    mode = "async"

    def _build_policy(self, ctx: OrchestrationContext) -> RoundPolicy:
        return AsyncRoundPolicy(ctx)


class SemiSyncOrchestrator(_BaseOrchestrator):
    """Quorum/staleness-bounded buffered-async orchestration (FedBuff-style)."""

    mode = "semi"

    def __init__(
        self,
        chain: Blockchain,
        driver_account: Account,
        aggregators: Sequence[UnifyFLAggregator],
        timing_model: ClusterTimingModel,
        quorum_k: Optional[int] = None,
        max_staleness: Optional[float] = None,
        comm: Optional[CommFabric] = None,
        population: Optional["ClientPopulation"] = None,
    ):
        super().__init__(
            chain, driver_account, aggregators, timing_model, comm=comm, population=population
        )
        clusters = [a.config for a in aggregators]
        # Default quorum: a majority of clusters, mirroring the scorer-majority
        # rule of the contract.  Default staleness bound: one provisioned sync
        # training window — the round never lags a full lock-step phase behind.
        self.quorum_k = quorum_k if quorum_k is not None else majority_quorum(len(clusters))
        if max_staleness is not None:
            self.max_staleness = max_staleness
        else:
            self.max_staleness = timing_model.expected_training_window(clusters)
        # Fail fast at construction; the policy re-runs the same shared check.
        validate_semi_params(self.quorum_k, self.max_staleness, len(clusters))

    def _build_policy(self, ctx: OrchestrationContext) -> RoundPolicy:
        return SemiSyncRoundPolicy(
            ctx, quorum_k=self.quorum_k, max_staleness=self.max_staleness
        )


class HierarchicalOrchestrator(_BaseOrchestrator):
    """Two-tier orchestration: local site rounds under a thin global tier."""

    mode = "hierarchical"

    def __init__(
        self,
        chain: Blockchain,
        driver_account: Account,
        aggregators: Sequence[UnifyFLAggregator],
        timing_model: ClusterTimingModel,
        num_sites: int = 1,
        local_rounds_per_global: int = 2,
        round_budget: Optional[int] = None,
        comm: Optional[CommFabric] = None,
        population: Optional["ClientPopulation"] = None,
    ):
        super().__init__(
            chain, driver_account, aggregators, timing_model, comm=comm, population=population
        )
        if num_sites < 1:
            raise ValueError("num_sites must be at least 1")
        if local_rounds_per_global < 1:
            raise ValueError("local_rounds_per_global must be at least 1")
        if round_budget is not None and round_budget < 1:
            raise ValueError("round_budget must be at least 1 when set")
        self.num_sites = num_sites
        self.local_rounds_per_global = local_rounds_per_global
        self.round_budget = round_budget

    def _build_policy(self, ctx: OrchestrationContext) -> RoundPolicy:
        return HierarchicalRoundPolicy(
            ctx,
            num_sites=self.num_sites,
            local_rounds_per_global=self.local_rounds_per_global,
            round_budget=self.round_budget,
        )


class GossipOrchestrator(_BaseOrchestrator):
    """Barrier-free epidemic orchestration with a deterministic seeded fanout."""

    mode = "gossip"

    def __init__(
        self,
        chain: Blockchain,
        driver_account: Account,
        aggregators: Sequence[UnifyFLAggregator],
        timing_model: ClusterTimingModel,
        fanout: int = 2,
        seed: int = 0,
        comm: Optional[CommFabric] = None,
        population: Optional["ClientPopulation"] = None,
    ):
        super().__init__(
            chain, driver_account, aggregators, timing_model, comm=comm, population=population
        )
        if fanout < 0:
            raise ValueError("gossip fanout must be non-negative")
        self.fanout = fanout
        self.seed = seed

    def _build_policy(self, ctx: OrchestrationContext) -> RoundPolicy:
        return GossipRoundPolicy(ctx, fanout=self.fanout, seed=self.seed)


# --------------------------------------------------------------------------
# Built-in registrations: every consumer of "what modes exist" (runner
# dispatch, ExperimentConfig validation, CLI --mode choices, contract
# behaviour) derives its view from these specs.
# --------------------------------------------------------------------------

def _reject_similarity_scoring(config: ExperimentConfig) -> None:
    """Free-running modes never see a whole round at once."""
    if config.scoring_algorithm in ("multikrum", "cosine"):
        raise ValueError(
            "similarity-based scoring needs all models of a round at once and is only "
            "supported in sync mode"
        )


def _sync_factory(build: PolicyBuildContext) -> SyncOrchestrator:
    config = build.config
    return SyncOrchestrator(
        build.chain,
        build.driver,
        build.aggregators,
        build.timing,
        training_window=config.phase_duration if config else None,
        scoring_window=config.phase_duration if config else None,
        scoring_algorithm=config.scoring_algorithm if config else "accuracy",
        comm=build.comm,
        population=build.population,
    )


def _async_factory(build: PolicyBuildContext) -> AsyncOrchestrator:
    return AsyncOrchestrator(
        build.chain,
        build.driver,
        build.aggregators,
        build.timing,
        comm=build.comm,
        population=build.population,
    )


def _semi_factory(build: PolicyBuildContext) -> SemiSyncOrchestrator:
    config = build.config
    return SemiSyncOrchestrator(
        build.chain,
        build.driver,
        build.aggregators,
        build.timing,
        quorum_k=config.semi_quorum_k if config else None,
        max_staleness=config.max_staleness if config else None,
        comm=build.comm,
        population=build.population,
    )


def _hierarchical_factory(build: PolicyBuildContext) -> HierarchicalOrchestrator:
    config = build.config
    # Site grouping mirrors the event-stream fabric's round-robin assignment
    # of clusters to storage replicas, so a "group" is exactly the set of
    # clusters sharing a storage site (one group when replicas are off); the
    # policy clamps the count to the federation size.
    return HierarchicalOrchestrator(
        build.chain,
        build.driver,
        build.aggregators,
        build.timing,
        num_sites=config.storage_replicas if config else 1,
        local_rounds_per_global=config.local_rounds_per_global if config else 2,
        round_budget=config.round_budget if config else None,
        comm=build.comm,
        population=build.population,
    )


def _gossip_factory(build: PolicyBuildContext) -> GossipOrchestrator:
    config = build.config
    return GossipOrchestrator(
        build.chain,
        build.driver,
        build.aggregators,
        build.timing,
        fanout=config.gossip_fanout if config else 2,
        seed=config.seed if config else 0,
        comm=build.comm,
        population=build.population,
    )


register_policy(PolicySpec(
    name="sync",
    factory=_sync_factory,
    description="lock-step phases with fixed training/scoring windows",
    contract=ContractProfile(phase_gated=True),
))
register_policy(PolicySpec(
    name="async",
    factory=_async_factory,
    description="free-running clusters, scorers assigned at submission",
    validate=_reject_similarity_scoring,
    contract=ContractProfile(assigns_scorers_on_submit=True),
))
register_policy(PolicySpec(
    name="semi",
    factory=_semi_factory,
    description="buffered-async rounds closed by quorum or staleness expiry",
    # The quorum/staleness bounds check is mode-agnostic and already runs
    # unconditionally in ExperimentConfig.__post_init__ (the knobs can be
    # set, and are range-checked, on any config).
    validate=_reject_similarity_scoring,
    contract=ContractProfile(assigns_scorers_on_submit=True, buffered=True),
))
register_policy(PolicySpec(
    name="hierarchical",
    factory=_hierarchical_factory,
    description="per-site local rounds, one leader submission per site per global round",
    validate=_reject_similarity_scoring,
    contract=ContractProfile(assigns_scorers_on_submit=True),
))
register_policy(PolicySpec(
    name="gossip",
    factory=_gossip_factory,
    description="barrier-free seeded peer exchanges, per-cluster convergence",
    validate=_reject_similarity_scoring,
    contract=ContractProfile(),
))
