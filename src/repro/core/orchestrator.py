"""Sync and Async orchestration of a UnifyFL federation (Sections 3.2 / 3.3).

The orchestrator in UnifyFL is logically the smart contract; these classes
drive the protocol steps against the contract and manage the simulated time
of every cluster:

* :class:`SyncOrchestrator` — all clusters move through the training and
  scoring phases together.  Each phase has a fixed duration (provisioned from
  the timing model, or supplied explicitly); clusters that finish early idle
  until the phase window closes, and a cluster whose work exceeds the window
  *straggles*: its model is only submitted in the next round.
* :class:`AsyncOrchestrator` — clusters run independently.  The event loop
  always advances the cluster with the smallest simulated clock; when a model
  CID is submitted the contract immediately assigns scorers, and scorers
  handle their queue the next time they are idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.chain.account import Account
from repro.chain.blockchain import Blockchain
from repro.core.aggregator import AggregatorRoundRecord, UnifyFLAggregator
from repro.core.timing import ClusterTimingModel, RoundTiming


@dataclass
class OrchestrationResult:
    """Outcome of driving a federation for a number of rounds."""

    mode: str
    rounds_completed: int
    #: per-aggregator history, keyed by cluster name.
    histories: Dict[str, List[AggregatorRoundRecord]] = field(default_factory=dict)
    #: per-aggregator total simulated time.
    total_times: Dict[str, float] = field(default_factory=dict)
    #: per-aggregator cumulative idle (barrier) time — only meaningful in sync mode.
    idle_times: Dict[str, float] = field(default_factory=dict)
    #: count of straggler incidents per aggregator.
    straggler_counts: Dict[str, int] = field(default_factory=dict)


class _BaseOrchestrator:
    """Shared plumbing between the two orchestration modes."""

    mode = "base"

    def __init__(
        self,
        chain: Blockchain,
        driver_account: Account,
        aggregators: Sequence[UnifyFLAggregator],
        timing_model: ClusterTimingModel,
    ):
        if not aggregators:
            raise ValueError("an orchestrator needs at least one aggregator")
        names = [a.name for a in aggregators]
        if len(set(names)) != len(names):
            raise ValueError("aggregator names must be unique")
        self.chain = chain
        self.driver = driver_account
        self.aggregators = list(aggregators)
        self.timing = timing_model
        self._idle_totals: Dict[str, float] = {a.name: 0.0 for a in aggregators}
        self._straggles: Dict[str, int] = {a.name: 0 for a in aggregators}

    def register_all(self) -> None:
        """Register every aggregator with the contract (idempotent per run)."""
        registered = set(self.chain.call("unifyfl", "getAggregators"))
        for aggregator in self.aggregators:
            if aggregator.address not in registered:
                aggregator.register(mine=False)
        self.chain.mine_until_empty()

    def _result(self, rounds: int) -> OrchestrationResult:
        return OrchestrationResult(
            mode=self.mode,
            rounds_completed=rounds,
            histories={a.name: list(a.history) for a in self.aggregators},
            total_times={a.name: a.total_time() for a in self.aggregators},
            idle_times=dict(self._idle_totals),
            straggler_counts=dict(self._straggles),
        )

    def run(self, num_rounds: int) -> OrchestrationResult:
        raise NotImplementedError


class SyncOrchestrator(_BaseOrchestrator):
    """Lock-step orchestration with fixed phase windows."""

    mode = "sync"

    def __init__(
        self,
        chain: Blockchain,
        driver_account: Account,
        aggregators: Sequence[UnifyFLAggregator],
        timing_model: ClusterTimingModel,
        training_window: Optional[float] = None,
        scoring_window: Optional[float] = None,
        scoring_algorithm: str = "accuracy",
    ):
        super().__init__(chain, driver_account, aggregators, timing_model)
        clusters = [a.config for a in aggregators]
        self.training_window = training_window or timing_model.expected_training_window(clusters)
        self.scoring_window = scoring_window or timing_model.expected_scoring_window(
            clusters, algorithm=scoring_algorithm
        )
        #: clusters that missed the submission window and owe a late submission.
        self._pending_late: Dict[str, bool] = {a.name: False for a in aggregators}

    def run(self, num_rounds: int) -> OrchestrationResult:
        """Drive ``num_rounds`` synchronous rounds."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        self.register_all()
        for round_number in range(1, num_rounds + 1):
            self._run_round(round_number)
        return self._result(num_rounds)

    def _run_round(self, round_number: int) -> None:
        # All clusters enter the round at the same simulated instant.
        barrier = max(a.clock.now() for a in self.aggregators)
        for aggregator in self.aggregators:
            waited = aggregator.clock.advance_to(barrier)
            self._idle_totals[aggregator.name] += waited

        # --- training phase -------------------------------------------------
        self.chain.send(self.driver, "unifyfl", "startTraining")
        self.chain.mine_until_empty()
        phase_start = barrier
        round_timings: Dict[str, RoundTiming] = {}
        straggled: Dict[str, bool] = {}
        offline: Dict[str, bool] = {}
        for aggregator in self.aggregators:
            timing = RoundTiming()
            # Fault injection: an unavailable organisation sits the round out.
            if not aggregator.is_available():
                offline[aggregator.name] = True
                straggled[aggregator.name] = False
                round_timings[aggregator.name] = timing
                continue
            offline[aggregator.name] = False
            # A cluster that straggled last round submits its stale model first.
            if self._pending_late[aggregator.name]:
                cid, late_timing = aggregator.submit_local_model()
                timing.store_time += late_timing.store_time
                timing.chain_time += late_timing.chain_time
                self._pending_late[aggregator.name] = False
            pull_timing = aggregator.build_global_model()
            train_timing = aggregator.local_training_round()
            timing.pull_time += pull_timing.pull_time
            timing.aggregation_time += pull_timing.aggregation_time + train_timing.aggregation_time
            timing.client_training_time += train_timing.client_training_time
            elapsed = aggregator.clock.now() - phase_start
            submit_cost = self.timing.transfer_time(aggregator.config.aggregator_profile, 1) + \
                self.timing.chain_interaction_time(1)
            if elapsed + submit_cost <= self.training_window:
                _, submit_timing = aggregator.submit_local_model()
                timing.store_time += submit_timing.store_time
                timing.chain_time += submit_timing.chain_time
                straggled[aggregator.name] = False
            else:
                # Missed the submission window: submit next round instead.
                straggled[aggregator.name] = True
                self._pending_late[aggregator.name] = True
                self._straggles[aggregator.name] += 1
            round_timings[aggregator.name] = timing

        # Close the training window: everyone waits until it elapses.
        window_end = phase_start + self.training_window
        for aggregator in self.aggregators:
            waited = aggregator.clock.advance_to(window_end)
            self._idle_totals[aggregator.name] += waited
            round_timings[aggregator.name].idle_time += waited

        # --- scoring phase ----------------------------------------------------
        self.chain.send(self.driver, "unifyfl", "startScoring")
        self.chain.mine_until_empty()
        scoring_start = window_end
        for aggregator in self.aggregators:
            if offline.get(aggregator.name, False):
                continue
            score_timing = aggregator.score_assigned()
            timing = round_timings[aggregator.name]
            timing.scoring_time += score_timing.scoring_time
            timing.pull_time += score_timing.pull_time
            timing.chain_time += score_timing.chain_time

        scoring_end = scoring_start + self.scoring_window
        for aggregator in self.aggregators:
            waited = aggregator.clock.advance_to(scoring_end)
            self._idle_totals[aggregator.name] += waited
            round_timings[aggregator.name].idle_time += waited

        self.chain.send(self.driver, "unifyfl", "endRound")
        self.chain.mine_until_empty()

        for aggregator in self.aggregators:
            aggregator.record_round(
                round_number,
                round_timings[aggregator.name],
                straggled=straggled.get(aggregator.name, False),
                offline=offline.get(aggregator.name, False),
            )


class AsyncOrchestrator(_BaseOrchestrator):
    """Event-driven orchestration where every cluster proceeds at its own pace."""

    mode = "async"

    def run(self, num_rounds: int) -> OrchestrationResult:
        """Drive the federation until every cluster completed ``num_rounds`` rounds."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        self.register_all()
        rounds_done = {a.name: 0 for a in self.aggregators}
        while True:
            runnable = [a for a in self.aggregators if rounds_done[a.name] < num_rounds]
            if not runnable:
                break
            # The cluster with the smallest simulated clock acts next.
            aggregator = min(runnable, key=lambda a: (a.clock.now(), a.name))
            self._run_cluster_round(aggregator, rounds_done[aggregator.name] + 1)
            rounds_done[aggregator.name] += 1
        # Drain any scoring work still queued so final score lists are complete.
        for aggregator in sorted(self.aggregators, key=lambda a: a.clock.now()):
            aggregator.score_assigned(before_time=aggregator.clock.now())
        return self._result(num_rounds)

    def _run_cluster_round(self, aggregator: UnifyFLAggregator, round_number: int) -> None:
        now = aggregator.clock.now()
        # Fault injection: a down organisation spends the round offline and
        # contributes nothing; the rest of the federation is unaffected.
        if not aggregator.is_available():
            downtime = self.timing.client_training_time(aggregator.config, jitter=False)
            aggregator.clock.advance(downtime)
            aggregator.record_round(round_number, RoundTiming(idle_time=downtime), offline=True)
            return
        # Idle aggregators first serve the scoring requests assigned to them.
        score_timing = aggregator.score_assigned(before_time=now)
        pull_timing = aggregator.build_global_model(before_time=aggregator.clock.now())
        train_timing = aggregator.local_training_round()
        _, submit_timing = aggregator.submit_local_model()

        timing = RoundTiming(
            pull_time=pull_timing.pull_time + score_timing.pull_time,
            client_training_time=train_timing.client_training_time,
            aggregation_time=pull_timing.aggregation_time + train_timing.aggregation_time,
            store_time=submit_timing.store_time,
            chain_time=submit_timing.chain_time + score_timing.chain_time,
            scoring_time=score_timing.scoring_time,
        )
        aggregator.record_round(round_number, timing, straggled=False)
