"""Baselines the paper compares UnifyFL against.

* :class:`NoCollabBaseline` — each cluster trains alone (traditional
  single-silo FL); this is the "No Collab" half of Table 1.
* :class:`CentralizedMultilevelBaseline` — the HBFL-style oracle: a trusted
  central third-party aggregator merges every cluster's model each round and
  pushes the result back to all clusters (Section 1.1.2, Table 1 "Collab" and
  Table 5 Run 1).
* :class:`SingleLevelFL` — all clients of every organisation join one flat
  federation under a single aggregator (the 12-client comparison point of
  Section 4.2.3 and the scalability study of Section 4.2.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import ClusterConfig, WorkloadConfig
from repro.core.timing import ClusterTimingModel
from repro.datasets.synthetic import Dataset
from repro.fl.client import Client
from repro.fl.server import FLServer
from repro.fl.strategy import FedAvg, Strategy, build_strategy
from repro.ml.models import Model
from repro.ml.tensor_utils import average_weights


@dataclass
class BaselineClusterResult:
    """Final metrics of one cluster under a baseline."""

    name: str
    accuracy: float
    loss: float
    global_accuracy: float = float("nan")
    global_loss: float = float("nan")
    total_time: float = 0.0
    accuracy_history: List[float] = field(default_factory=list)


@dataclass
class BaselineResult:
    """Outcome of a baseline run."""

    baseline: str
    clusters: List[BaselineClusterResult]
    global_accuracy: float = float("nan")
    global_loss: float = float("nan")
    total_time: float = 0.0
    global_accuracy_history: List[float] = field(default_factory=list)


class NoCollabBaseline:
    """Independent per-cluster training with no cross-silo exchange."""

    name = "no_collab"

    def __init__(
        self,
        workload: WorkloadConfig,
        clusters: Sequence[ClusterConfig],
        cluster_clients: Dict[str, List[Client]],
        model_template: Model,
        eval_data: Dataset,
        timing_model: Optional[ClusterTimingModel] = None,
    ):
        self.workload = workload
        self.clusters = list(clusters)
        self.cluster_clients = cluster_clients
        self.model_template = model_template
        self.eval_data = eval_data
        self.timing = timing_model or ClusterTimingModel(workload)

    def run(self, num_rounds: int, seed: int = 0) -> BaselineResult:
        """Train every cluster independently for ``num_rounds`` rounds."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        results: List[BaselineClusterResult] = []
        for cluster in self.clusters:
            clients = self.cluster_clients[cluster.name]
            server = FLServer(
                server_id=cluster.name,
                model_weights=self.model_template.get_weights(),
                clients=clients,
                strategy=build_strategy(cluster.strategy),
                eval_data=self.eval_data,
                eval_model=self.model_template.clone(),
            )
            history = server.run(num_rounds, seed=seed)
            per_round = self.timing.client_training_time(cluster, jitter=False) + \
                self.timing.aggregation_time(cluster, cluster.num_clients)
            results.append(
                BaselineClusterResult(
                    name=cluster.name,
                    accuracy=history.final_accuracy,
                    loss=history.final_loss,
                    total_time=num_rounds * per_round,
                    accuracy_history=history.accuracies(),
                )
            )
        return BaselineResult(
            baseline=self.name,
            clusters=results,
            total_time=max(r.total_time for r in results),
        )


class CentralizedMultilevelBaseline:
    """The trusted-third-party multilevel FL oracle (HBFL-style)."""

    name = "centralized_multilevel"

    def __init__(
        self,
        workload: WorkloadConfig,
        clusters: Sequence[ClusterConfig],
        cluster_clients: Dict[str, List[Client]],
        model_template: Model,
        eval_data: Dataset,
        timing_model: Optional[ClusterTimingModel] = None,
        central_strategy: Optional[Strategy] = None,
    ):
        self.workload = workload
        self.clusters = list(clusters)
        self.cluster_clients = cluster_clients
        self.model_template = model_template
        self.eval_data = eval_data
        self.timing = timing_model or ClusterTimingModel(workload)
        self.central_strategy = central_strategy or FedAvg()
        # HBFL is itself a synchronous, blockchain-backed multilevel system: every
        # round all clusters train inside a provisioned phase window and the
        # reducer validates/aggregates before the next round starts.  The round
        # duration therefore matches Sync UnifyFL's provisioned windows, which is
        # also what the paper measures (6230 s vs 6380 s over 50 rounds).
        self._round_duration = self.timing.expected_training_window(self.clusters) + \
            self.timing.expected_scoring_window(self.clusters)

    def run(self, num_rounds: int, seed: int = 0) -> BaselineResult:
        """Run multilevel FL: local FL per cluster, then central aggregation."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        rng = np.random.default_rng(seed)
        eval_model = self.model_template.clone()
        global_weights = self.model_template.get_weights()
        servers: Dict[str, FLServer] = {}
        for cluster in self.clusters:
            servers[cluster.name] = FLServer(
                server_id=cluster.name,
                model_weights=global_weights,
                clients=self.cluster_clients[cluster.name],
                strategy=build_strategy(cluster.strategy),
                eval_data=self.eval_data,
                eval_model=self.model_template.clone(),
            )

        cluster_metrics: Dict[str, Dict[str, float]] = {}
        global_history: List[float] = []
        total_time = 0.0
        for _ in range(num_rounds):
            cluster_weights = []
            for cluster in self.clusters:
                server = servers[cluster.name]
                server.global_weights = [np.array(w, copy=True) for w in global_weights]
                server.run_round(rng=rng)
                cluster_weights.append(server.global_weights)
                evaluation = server.evaluate()
                cluster_metrics[cluster.name] = evaluation
            global_weights = self.central_strategy.aggregate_weight_sets(global_weights, cluster_weights)
            eval_model.set_weights(global_weights)
            loss, accuracy = eval_model.evaluate(self.eval_data.x, self.eval_data.y)
            global_history.append(accuracy)
            # Every cluster waits out the provisioned training window, then the
            # central reducer validates and aggregates before the next round.
            total_time += self._round_duration

        eval_model.set_weights(global_weights)
        global_loss, global_accuracy = eval_model.evaluate(self.eval_data.x, self.eval_data.y)
        results = [
            BaselineClusterResult(
                name=cluster.name,
                accuracy=cluster_metrics[cluster.name]["accuracy"],
                loss=cluster_metrics[cluster.name]["loss"],
                global_accuracy=global_accuracy,
                global_loss=global_loss,
                total_time=total_time,
            )
            for cluster in self.clusters
        ]
        return BaselineResult(
            baseline=self.name,
            clusters=results,
            global_accuracy=global_accuracy,
            global_loss=global_loss,
            total_time=total_time,
            global_accuracy_history=global_history,
        )


class SingleLevelFL:
    """One flat federation over every client of every organisation."""

    name = "single_level"

    def __init__(
        self,
        workload: WorkloadConfig,
        clients: Sequence[Client],
        model_template: Model,
        eval_data: Dataset,
        strategy: Optional[Strategy] = None,
    ):
        self.workload = workload
        self.clients = list(clients)
        self.model_template = model_template
        self.eval_data = eval_data
        self.strategy = strategy or FedAvg()

    def run(self, num_rounds: int, seed: int = 0) -> BaselineResult:
        """Run flat FedAvg over all clients for ``num_rounds`` rounds."""
        server = FLServer(
            server_id="single-level",
            model_weights=self.model_template.get_weights(),
            clients=self.clients,
            strategy=self.strategy,
            eval_data=self.eval_data,
            eval_model=self.model_template.clone(),
        )
        history = server.run(num_rounds, seed=seed)
        result = BaselineClusterResult(
            name="single-level",
            accuracy=history.final_accuracy,
            loss=history.final_loss,
            accuracy_history=history.accuracies(),
        )
        return BaselineResult(
            baseline=self.name,
            clusters=[result],
            global_accuracy=history.final_accuracy,
            global_loss=history.final_loss,
            global_accuracy_history=history.accuracies(),
        )
