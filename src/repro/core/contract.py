"""The UnifyFL orchestrator smart contract (Algorithm 1 of the paper).

The contract coordinates the two phases of every round:

* **Training phase** — ``startTraining`` notifies the aggregators; each
  aggregator later calls ``submitModel`` with the IPFS CID of its freshly
  aggregated local model.
* **Scoring phase** — ``startScoring`` samples a majority subset
  (``N // 2 + 1``) of the registered aggregators as scorers for each submitted
  model; scorers call ``submitScore``.  ``getLatestModelsWithScores`` then
  exposes every model together with the full list of scores so each aggregator
  can apply its own aggregation and scoring policies.

The contract's per-mode behaviour is derived from the round-policy registry
(:mod:`repro.sched.registry`): each registered mode carries a
:class:`~repro.sched.registry.ContractProfile` naming the three behavioural
axes.  In **sync** mode (phase-gated) the contract enforces phase windows:
models may only be submitted during the training phase and scores only
during the scoring phase (anything later is disregarded, as in Section 3.2).
In **async** mode scorers are assigned immediately when a model CID is
submitted (Section 3.3) — **hierarchical** leader submissions behave the
same way.  In **semi** mode (bounded-staleness buffered-async) scorers are
likewise assigned at submission, but the contract additionally *buffers* the
round's submissions: ``closeSemiRound`` advances the round counter once a
quorum of clusters has contributed or the driver decides the staleness bound
expired, and ``getSemiRoundStatus`` exposes the buffer so the orchestrator
can make that call.  In **gossip** mode submissions are pure publications:
recorded and auditable, but nobody is assigned to score them — each cluster
judges what it merges.

Submission and score records carry the submitting actor's simulated timestamp
so asynchronous aggregators only observe state that existed at their local
time — the contract's view methods accept a ``before_time`` cutoff for this.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chain.contract import Contract, contract_method, view_method
from repro.core.config import majority_quorum
from repro.sched.registry import get_policy


@dataclass
class ModelSubmission:
    """A model CID registered on the contract by an aggregator."""

    cid: str
    submitter: str
    round_number: int
    timestamp: float
    scores: Dict[str, float] = field(default_factory=dict)
    score_timestamps: Dict[str, float] = field(default_factory=dict)
    assigned_scorers: List[str] = field(default_factory=list)

    def as_record(self, before_time: Optional[float] = None) -> Dict[str, Any]:
        """A JSON-friendly view of this submission, optionally time-filtered."""
        if before_time is None:
            visible_scores = dict(self.scores)
        else:
            visible_scores = {
                scorer: score
                for scorer, score in self.scores.items()
                if self.score_timestamps.get(scorer, 0.0) <= before_time
            }
        return {
            "cid": self.cid,
            "submitter": self.submitter,
            "round": self.round_number,
            "timestamp": self.timestamp,
            "scores": visible_scores,
            "assigned_scorers": list(self.assigned_scorers),
        }


class UnifyFLContract(Contract):
    """The Solidity orchestrator contract, reimplemented for the Python runtime."""

    name = "unifyfl"

    #: phases of the synchronous cycle.
    PHASE_IDLE = "idle"
    PHASE_TRAINING = "training"
    PHASE_SCORING = "scoring"
    #: the (only) phase of the semi-synchronous cycle: submissions buffer up
    #: until the round is closed by quorum or staleness expiry.
    PHASE_BUFFERING = "buffering"

    def __init__(self, mode: str = "sync", scorer_seed: int = 0, semi_quorum_k: int = 0):
        super().__init__()
        # The accepted modes and their behaviour are derived from the
        # round-policy registry: the spec's ContractProfile decides whether
        # submissions are phase-gated, whether scorers are assigned at
        # submission, and whether the semi round buffer is live — so a new
        # registered policy needs no contract edits.
        self._profile = get_policy(mode).contract
        if semi_quorum_k < 0:
            raise ValueError("semi_quorum_k must be non-negative (0 = majority)")
        self.mode = mode
        self.scorer_seed = scorer_seed
        self.aggregators: List[str] = []
        self.current_round = 1 if self._profile.buffered else 0
        self.phase = self.PHASE_BUFFERING if self._profile.buffered else self.PHASE_IDLE
        self.submissions: Dict[str, ModelSubmission] = {}
        self.round_submissions: Dict[int, List[str]] = {}
        #: scorer address -> list of CIDs awaiting that scorer's score.
        self.pending_assignments: Dict[str, List[str]] = {}
        #: semi mode: quorum size (0 = majority of registered aggregators),
        #: the open round's buffered CIDs and its opening timestamp.
        self.semi_quorum_k = semi_quorum_k
        self.semi_buffer: List[str] = []
        #: distinct submitters of the open round's buffer, kept incrementally
        #: so quorum checks stay O(1) per submission.
        self.semi_submitters: set = set()
        self.semi_opened_at = 0.0
        #: ensures SemiQuorumReached fires at most once per open round, even
        #: if the effective quorum drifts (e.g. a late registration).
        self._semi_quorum_fired = False
        #: sampled federations: the addresses drawn for the current round.
        #: ``None`` (the default, and the only state non-sampled runs ever
        #: see) means every registered aggregator is eligible to score.
        self.active_cohort: Optional[List[str]] = None

    # ------------------------------------------------------------------ setup
    @contract_method
    def registerAggregator(self) -> int:
        """Register the calling address as a participating aggregator/scorer."""
        sender = self.ctx.sender
        self.require(sender not in self.aggregators, "aggregator already registered")
        self.aggregators.append(sender)
        self.pending_assignments.setdefault(sender, [])
        self.emit("AggregatorRegistered", aggregator=sender, count=len(self.aggregators))
        self.ctx.charge(5_000)
        return len(self.aggregators)

    @contract_method
    def setActiveCohort(self, addresses: List[str]) -> int:
        """Declare the aggregators sampled for the current round.

        Sampled federations register every materialised virtual cluster but
        only a cohort participates per round; the driver publishes the drawn
        addresses so scorer assignment stays inside the cohort instead of
        drafting idle (unmaterialised-next-round) clusters.  Passing an empty
        list clears the restriction.  Non-sampled runs never call this, so
        their assignment behaviour is untouched.
        """
        for address in addresses:
            self.require(
                address in self.aggregators,
                "active cohort contains an unregistered aggregator",
            )
        self.active_cohort = list(addresses) if addresses else None
        self.emit("ActiveCohortSet", size=len(addresses))
        self.ctx.charge(5_000)
        return len(addresses)

    # --------------------------------------------------------------- training
    @contract_method
    def startTraining(self) -> int:
        """Start the training phase of a new round (Sync orchestration)."""
        self.require(len(self.aggregators) > 0, "no aggregators registered")
        self.require(
            self.phase in (self.PHASE_IDLE, self.PHASE_SCORING),
            "training phase already open",
        )
        self.current_round += 1
        self.phase = self.PHASE_TRAINING
        self.round_submissions.setdefault(self.current_round, [])
        self.emit("StartTraining", round=self.current_round)
        self.ctx.charge(10_000)
        return self.current_round

    @contract_method
    def submitModel(self, cid: str, timestamp: float = 0.0) -> Dict[str, Any]:
        """Submit the CID of an aggregated local model (valid trainers only)."""
        sender = self.ctx.sender
        self.require(sender in self.aggregators, "sender is not a registered aggregator")
        self.require(bool(cid), "cid must be non-empty")
        self.require(cid not in self.submissions, "this model CID was already submitted")
        if self._profile.phase_gated:
            self.require(
                self.phase == self.PHASE_TRAINING,
                "model submissions are only accepted during the training phase",
            )
        round_number = max(self.current_round, 1)
        submission = ModelSubmission(
            cid=cid,
            submitter=sender,
            round_number=round_number,
            timestamp=float(timestamp),
        )
        self.submissions[cid] = submission
        self.round_submissions.setdefault(round_number, []).append(cid)
        self.emit("ModelSubmitted", cid=cid, submitter=sender, round=round_number)
        self.ctx.charge(20_000)
        if self._profile.assigns_scorers_on_submit:
            self._assign_scorers(submission)
        if self._profile.buffered:
            self.semi_buffer.append(cid)
            self.semi_submitters.add(sender)
            # Quorum counts distinct submitting clusters, not raw submissions
            # (one cluster resubmitting must not close a round by itself), and
            # the event fires at most once per open round.
            quorum = self._effective_quorum()
            if not self._semi_quorum_fired and len(self.semi_submitters) >= quorum:
                self._semi_quorum_fired = True
                self.emit(
                    "SemiQuorumReached",
                    round=self.current_round,
                    buffered=len(self.semi_buffer),
                    submitters=len(self.semi_submitters),
                    quorum=quorum,
                )
        return submission.as_record()

    # ---------------------------------------------------------------- scoring
    @contract_method
    def startScoring(self) -> Dict[str, List[str]]:
        """Close the training window and assign scorers to every submitted model."""
        self.require(self._profile.phase_gated, "startScoring is only used in sync mode")
        self.require(self.phase == self.PHASE_TRAINING, "no training phase to close")
        self.phase = self.PHASE_SCORING
        assignments: Dict[str, List[str]] = {}
        for cid in self.round_submissions.get(self.current_round, []):
            submission = self.submissions[cid]
            if not submission.assigned_scorers:
                self._assign_scorers(submission)
            assignments[cid] = list(submission.assigned_scorers)
        self.emit("StartScoring", round=self.current_round, assignments=assignments)
        self.ctx.charge(10_000)
        return assignments

    @contract_method
    def submitScore(self, cid: str, score: float, timestamp: float = 0.0) -> Dict[str, Any]:
        """Submit a score for a model CID (valid assigned scorers only)."""
        sender = self.ctx.sender
        self.require(cid in self.submissions, "unknown model CID")
        submission = self.submissions[cid]
        self.require(sender in submission.assigned_scorers, "sender is not an assigned scorer for this model")
        self.require(sender not in submission.scores, "scorer already submitted a score for this model")
        if self._profile.phase_gated:
            self.require(
                self.phase == self.PHASE_SCORING,
                "scores are only accepted during the scoring phase",
            )
        submission.scores[sender] = float(score)
        submission.score_timestamps[sender] = float(timestamp)
        pending = self.pending_assignments.get(sender, [])
        if cid in pending:
            pending.remove(cid)
        self.emit("ScoreSubmitted", cid=cid, scorer=sender, score=float(score))
        self.ctx.charge(15_000)
        return submission.as_record()

    @contract_method
    def endRound(self) -> int:
        """Close the scoring window (Sync orchestration)."""
        self.require(self._profile.phase_gated, "endRound is only used in sync mode")
        self.require(self.phase == self.PHASE_SCORING, "no scoring phase to close")
        self.phase = self.PHASE_IDLE
        self.emit("RoundEnded", round=self.current_round)
        self.ctx.charge(5_000)
        return self.current_round

    # ------------------------------------------------------- semi-sync rounds
    @contract_method
    def configureSemiRound(self, quorum_k: int = 0) -> int:
        """Set the quorum size for semi mode (0 = majority of aggregators).

        Only allowed between rounds (empty buffer): changing the quorum while
        submissions are buffered would make the SemiQuorumReached threshold
        crossing ambiguous (fire twice, or never).
        """
        self.require(self._profile.buffered, "configureSemiRound is only used in semi mode")
        self.require(quorum_k >= 0, "quorum_k must be non-negative")
        self.require(
            not self.aggregators or quorum_k <= len(self.aggregators),
            "quorum_k cannot exceed the number of registered aggregators",
        )
        self.require(
            not self.semi_buffer,
            "quorum can only be reconfigured between rounds (buffer must be empty)",
        )
        self.semi_quorum_k = int(quorum_k)
        self.emit("SemiRoundConfigured", quorum_k=self.semi_quorum_k)
        self.ctx.charge(5_000)
        return self._effective_quorum()

    @contract_method
    def closeSemiRound(self, timestamp: float = 0.0) -> Dict[str, Any]:
        """Advance the semi round: clear the buffer, bump the round counter.

        The driver calls this when the quorum is reached or when it judges the
        staleness bound expired; the contract only checks that there is an open
        round with at least one buffered submission to close.
        """
        self.require(self._profile.buffered, "closeSemiRound is only used in semi mode")
        self.require(bool(self.semi_buffer), "cannot close a semi round with no submissions")
        closed = {
            "round": self.current_round,
            "buffered": len(self.semi_buffer),
            "submitters": len(self.semi_submitters),
            "opened_at": self.semi_opened_at,
            "closed_at": float(timestamp),
            "duration": float(timestamp) - self.semi_opened_at,
        }
        self.current_round += 1
        self.round_submissions.setdefault(self.current_round, [])
        self.semi_buffer = []
        self.semi_submitters = set()
        self.semi_opened_at = float(timestamp)
        self._semi_quorum_fired = False
        self.emit("SemiRoundClosed", **closed)
        self.ctx.charge(10_000)
        return closed

    # ------------------------------------------------------------------ views
    @view_method
    def getSemiRoundStatus(self) -> Dict[str, Any]:
        """Open-round state in semi mode: buffer fill vs quorum, opening time."""
        self.require(self._profile.buffered, "getSemiRoundStatus is only used in semi mode")
        quorum = self._effective_quorum()
        return {
            "round": self.current_round,
            "buffered": len(self.semi_buffer),
            "submitters": len(self.semi_submitters),
            "quorum_k": quorum,
            "opened_at": self.semi_opened_at,
            "quorum_reached": len(self.semi_submitters) >= quorum,
        }

    @view_method
    def getAggregators(self) -> List[str]:
        """Registered aggregator addresses, in registration order."""
        return list(self.aggregators)

    @view_method
    def getPhase(self) -> str:
        """Current phase of the synchronous cycle."""
        return self.phase

    @view_method
    def getCurrentRound(self) -> int:
        """The current (or most recent) round number."""
        return self.current_round

    @view_method
    def getLatestModelsWithScores(
        self,
        max_rounds: int = 0,
        before_time: Optional[float] = None,
        exclude_submitter: str = "",
    ) -> List[Dict[str, Any]]:
        """Models with their score lists, newest round first.

        Args:
            max_rounds: number of most recent rounds to include (0 = all).
            before_time: only include submissions / scores visible at this
                simulated time (used by asynchronous aggregators).
            exclude_submitter: optionally hide one submitter's own models.
        """
        records: List[Dict[str, Any]] = []
        for submission in self.submissions.values():
            if before_time is not None and submission.timestamp > before_time:
                continue
            if exclude_submitter and submission.submitter == exclude_submitter:
                continue
            records.append(submission.as_record(before_time))
        records.sort(key=lambda r: (-r["round"], r["timestamp"], r["cid"]))
        if max_rounds > 0 and records:
            newest = records[0]["round"]
            records = [r for r in records if r["round"] > newest - max_rounds]
        return records

    @view_method
    def getAssignedModels(self, scorer: str, before_time: Optional[float] = None) -> List[str]:
        """CIDs assigned to ``scorer`` that it has not scored yet."""
        pending = self.pending_assignments.get(scorer, [])
        if before_time is None:
            return list(pending)
        return [cid for cid in pending if self.submissions[cid].timestamp <= before_time]

    @view_method
    def getSubmission(self, cid: str) -> Dict[str, Any]:
        """Full record for a single CID."""
        self.require(cid in self.submissions, "unknown model CID")
        return self.submissions[cid].as_record()

    @view_method
    def roundSubmissionCount(self, round_number: int) -> int:
        """Number of models submitted in a given round."""
        return len(self.round_submissions.get(round_number, []))

    # --------------------------------------------------------------- internals
    def _effective_quorum(self) -> int:
        """The configured semi quorum, or a majority when left at 0.

        A constructor-supplied quorum above the registered aggregator count is
        clamped to "all registered" (registration happens after deployment, so
        the constructor cannot validate against it; ``configureSemiRound``
        rejects such values once aggregators exist).
        """
        if self.semi_quorum_k > 0:
            return min(self.semi_quorum_k, max(len(self.aggregators), 1))
        return majority_quorum(len(self.aggregators))

    def _assign_scorers(self, submission: ModelSubmission) -> None:
        """Deterministically sample a majority subset of scorers for a model.

        The selection hashes (seed, round, CID) so every chain node derives
        the same assignment without an external randomness beacon.  The
        submitter itself is excluded when enough other aggregators exist,
        which is the bias-removal rationale of Section 3 step (2).

        When an active cohort is declared (sampled federations), both the
        candidate pool and the majority threshold are scoped to the cohort —
        a cluster that was not drawn this round is never asked to score.
        """
        pool = self.active_cohort if self.active_cohort else self.aggregators
        majority = majority_quorum(len(pool))
        candidates = [a for a in pool if a != submission.submitter]
        if len(candidates) < majority:
            candidates = list(pool)
        digest = hashlib.sha256(
            f"{self.scorer_seed}:{submission.round_number}:{submission.cid}".encode()
        ).digest()
        # Deterministic shuffle: sort candidates by a per-candidate hash value.
        def sort_key(address: str) -> str:
            return hashlib.sha256(digest + address.encode()).hexdigest()

        chosen = sorted(candidates, key=sort_key)[:majority]
        submission.assigned_scorers = chosen
        for scorer in chosen:
            self.pending_assignments.setdefault(scorer, []).append(submission.cid)
        self.emit(
            "ScorersAssigned",
            cid=submission.cid,
            scorers=list(chosen),
            round=submission.round_number,
        )
