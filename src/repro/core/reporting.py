"""Exporting experiment results to JSON and CSV.

The paper's artifact stores per-run metrics for plotting; this module provides
the equivalent for the reproduction: a stable, versioned JSON document per
:class:`~repro.core.results.ExperimentResult` (full per-round history
included) and a flat CSV with one row per aggregator for spreadsheet-style
comparison across runs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.core.results import AggregatorResult, ExperimentResult

#: schema 2 adds the optional ``sampling`` block (population / cohort /
#: sampling-seed / materialised-cluster metadata of sampled runs).  Classic
#: fully-materialised runs keep emitting version-1 documents so their JSON
#: exports stay byte-identical across releases; loaders accept both.
_SCHEMA_VERSION = 2
_SUPPORTED_SCHEMA_VERSIONS = (1, 2)

PathLike = Union[str, Path]


def _jsonable(value):
    """Recursively coerce policy extras (tuples, nested dicts) to JSON types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def result_to_dict(result: ExperimentResult) -> Dict:
    """Convert an experiment result into a JSON-serialisable dictionary."""
    document = {
        "schema_version": _SCHEMA_VERSION if result.sampling else 1,
        "name": result.name,
        "mode": result.mode,
        "scoring_algorithm": result.scoring_algorithm,
        "partitioning": result.partitioning,
        "rounds": result.rounds,
        "chain_metrics": dict(result.chain_metrics),
        "storage_metrics": dict(result.storage_metrics),
        "comm_metrics": dict(result.comm_metrics),
        "orchestration_extras": _jsonable(result.orchestration_extras),
        "resource_reports": {
            process: report.as_dict() for process, report in result.resource_reports.items()
        },
        "aggregators": [_aggregator_to_dict(a) for a in result.aggregators],
    }
    if result.sampling:
        document["sampling"] = dict(result.sampling)
    return document


def _aggregator_to_dict(aggregator: AggregatorResult) -> Dict:
    return {
        "name": aggregator.name,
        "policy": aggregator.policy,
        "strategy": aggregator.strategy,
        "total_time": aggregator.total_time,
        "idle_time": aggregator.idle_time,
        "straggler_count": aggregator.straggler_count,
        "global_accuracy": aggregator.global_accuracy,
        "global_loss": aggregator.global_loss,
        "local_accuracy": aggregator.local_accuracy,
        "local_loss": aggregator.local_loss,
        "history": [
            {
                "round": record.round_number,
                "global_accuracy": record.global_accuracy,
                "global_loss": record.global_loss,
                "local_accuracy": record.local_accuracy,
                "local_loss": record.local_loss,
                "models_pulled": record.models_pulled,
                "models_scored": record.models_scored,
                "sim_time": record.sim_time,
                "straggled": record.straggled,
                "timing": {
                    "pull_time": record.timing.pull_time,
                    "client_training_time": record.timing.client_training_time,
                    "aggregation_time": record.timing.aggregation_time,
                    "store_time": record.timing.store_time,
                    "chain_time": record.timing.chain_time,
                    "scoring_time": record.timing.scoring_time,
                    "exchange_time": record.timing.exchange_time,
                    "idle_time": record.timing.idle_time,
                },
            }
            for record in aggregator.history
        ],
    }


def save_result_json(result: ExperimentResult, path: PathLike) -> Path:
    """Write an experiment result to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle, indent=2, sort_keys=True)
    return path


def load_result_json(path: PathLike) -> Dict:
    """Load a previously saved result document.

    Raises:
        ValueError: if the document does not carry a known schema version.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema_version") not in _SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"unsupported result schema version {document.get('schema_version')!r} in {path}"
        )
    return document


_CSV_COLUMNS = [
    "experiment",
    "mode",
    "partitioning",
    "scoring_algorithm",
    "rounds",
    "aggregator",
    "policy",
    "strategy",
    "total_time",
    "idle_time",
    "straggler_count",
    "global_accuracy",
    "global_loss",
    "local_accuracy",
    "local_loss",
    # Run-level event-stream totals (repeated on every aggregator row; empty
    # for constant-cost runs) so topology sweeps can compare queueing from the
    # flat CSV alone.
    "network_queued_s",
    "chain_wait_s",
    # Inter-replica propagation traffic (eager pushes + lazy fetches).
    "replication_time_s",
    "replication_queued_s",
    "replication_count",
    # Peer-level exchange traffic (hierarchical shuttles, gossip pulls) and
    # the bytes that crossed a WAN hop.
    "exchange_time_s",
    "exchange_count",
    "wan_bytes",
    # Fault-injection / resilience accounting (zeros on fault-free event-stream
    # runs, empty without a fabric unless churn ran on the constant path).
    "retries",
    "breaker_open_s",
    "failovers",
    "dropped_clients",
]

#: Stable ``CommFabric.summary`` keys deliberately *not* exported as CSV
#: columns.  The ``WIRE002`` cross-layer lint rule requires every stable
#: summary key to appear in :data:`_CSV_COLUMNS` (directly or via the
#: ``_s``-suffix mapping, e.g. ``chain_wait`` -> ``chain_wait_s``) or in
#: this reviewed list — adding a summary total silently absent from both is
#: a lint failure, so the CSV schema can no longer drift by accident.
_CSV_EXEMPT_SUMMARY_KEYS = frozenset(
    {
        # Per-phase upload/download splits: the CSV carries the aggregate
        # network totals (network_queued_s) plus the phases that distinguish
        # topologies (replication_*, exchange_*); the full split lives in the
        # JSON document's comm_metrics.
        "upload_time",
        "upload_queued",
        "upload_count",
        "download_time",
        "download_queued",
        "download_count",
        "exchange_queued",
        # Run configuration echoes and engine counters, not per-run costs.
        "storage_replicas",
        "network_time",
        "chain_ops",
        "chain_blocks_spanned",
        "chain_blocks_observed",
        "chain_transactions_observed",
        # Resilience detail beyond the four headline columns (retries,
        # breaker_open_s, failovers, dropped_clients); kept JSON-only.
        "backoff_wait_s",
        "breaker_trips",
        "breaker_fast_fails",
        "fault_outage_s",
        "fault_partition_s",
    }
)


def save_results_csv(results: Iterable[ExperimentResult], path: PathLike) -> Path:
    """Write one CSV row per aggregator across several experiments."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_COLUMNS)
        writer.writeheader()
        for result in results:
            comm = result.comm_metrics
            # Churn on the constant-cost path exports drop accounting without
            # any stream totals; keep the stream columns empty there.
            streams = "network_queued" in comm
            for aggregator in result.aggregators:
                writer.writerow(
                    {
                        "network_queued_s": f"{comm['network_queued']:.3f}" if streams else "",
                        "chain_wait_s": f"{comm['chain_wait']:.3f}" if streams else "",
                        "replication_time_s": f"{comm.get('replication_time', 0.0):.3f}" if streams else "",
                        "replication_queued_s": f"{comm.get('replication_queued', 0.0):.3f}" if streams else "",
                        "replication_count": f"{comm.get('replication_count', 0.0):.0f}" if streams else "",
                        "exchange_time_s": f"{comm.get('exchange_time', 0.0):.3f}" if streams else "",
                        "exchange_count": f"{comm.get('exchange_count', 0.0):.0f}" if streams else "",
                        "wan_bytes": f"{comm.get('wan_bytes', 0.0):.0f}" if streams else "",
                        "retries": f"{comm.get('retries', 0.0):.0f}" if comm else "",
                        "breaker_open_s": f"{comm.get('breaker_open_s', 0.0):.3f}" if comm else "",
                        "failovers": f"{comm.get('failovers', 0.0):.0f}" if comm else "",
                        "dropped_clients": f"{comm.get('dropped_clients', 0.0):.0f}" if comm else "",
                        "experiment": result.name,
                        "mode": result.mode,
                        "partitioning": result.partitioning,
                        "scoring_algorithm": result.scoring_algorithm,
                        "rounds": result.rounds,
                        "aggregator": aggregator.name,
                        "policy": aggregator.policy,
                        "strategy": aggregator.strategy,
                        "total_time": f"{aggregator.total_time:.3f}",
                        "idle_time": f"{aggregator.idle_time:.3f}",
                        "straggler_count": aggregator.straggler_count,
                        "global_accuracy": f"{aggregator.global_accuracy:.6f}",
                        "global_loss": f"{aggregator.global_loss:.6f}",
                        "local_accuracy": f"{aggregator.local_accuracy:.6f}",
                        "local_loss": f"{aggregator.local_loss:.6f}",
                    }
                )
    return path


def load_results_csv(path: PathLike) -> List[Dict[str, str]]:
    """Read a CSV written by :func:`save_results_csv` back into row dictionaries."""
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as handle:
        return list(csv.DictReader(handle))
