"""Multi-model cross-silo collaboration via knowledge distillation (§5 Q1).

The UnifyFL protocol exchanges *weights*, which requires every organisation to
train the same architecture.  The paper's first future-work item is to lift
that restriction.  This module implements the collaboration pattern the paper
sketches ("knowledge distillation ... where clusters with varying model
architectures can contribute to a shared learning objective"):

* every organisation keeps its own architecture and its own private data;
* each round, an organisation trains locally, then *distills* from the other
  organisations' current models: the peers act as an ensemble teacher whose
  softened predictions on the organisation's own inputs provide the soft
  labels (no raw data ever leaves a silo — only models move, exactly as in
  weight-exchanging UnifyFL).

:class:`MultiModelCollaboration` drives that loop for a set of
:class:`MultiModelParticipant` organisations and records per-round accuracy,
so the extension benchmark can compare heterogeneous-architecture
collaboration against isolated training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.ml.distillation import distill
from repro.ml.models import Model
from repro.ml.optim import SGD


@dataclass
class MultiModelParticipant:
    """One organisation in a heterogeneous-architecture federation."""

    name: str
    model: Model
    train_data: Dataset
    learning_rate: float = 0.05
    local_epochs: int = 1
    batch_size: int = 16
    #: weight of the distillation term when learning from peers.
    distill_alpha: float = 0.5
    distill_temperature: float = 2.0

    def __post_init__(self) -> None:
        if len(self.train_data) == 0:
            raise ValueError(f"participant {self.name} has no training data")
        if not 0.0 <= self.distill_alpha <= 1.0:
            raise ValueError("distill_alpha must be in [0, 1]")


@dataclass
class MultiModelRoundRecord:
    """Accuracy of every participant after one collaboration round."""

    round_number: int
    accuracies: Dict[str, float] = field(default_factory=dict)


class MultiModelCollaboration:
    """Round loop for distillation-based collaboration between different architectures."""

    def __init__(
        self,
        participants: Sequence[MultiModelParticipant],
        eval_data: Dataset,
        seed: int = 0,
    ):
        if len(participants) < 2:
            raise ValueError("multi-model collaboration needs at least two participants")
        names = [p.name for p in participants]
        if len(set(names)) != len(names):
            raise ValueError("participant names must be unique")
        class_counts = {p.model.num_classes for p in participants}
        if len(class_counts) != 1:
            raise ValueError("all participants must predict over the same class set")
        if len(eval_data) == 0:
            raise ValueError("eval_data must be non-empty")
        self.participants = list(participants)
        self.eval_data = eval_data
        self.history: List[MultiModelRoundRecord] = []
        self._rng = np.random.default_rng(seed)

    def run_round(self, collaborate: bool = True) -> MultiModelRoundRecord:
        """Run one round: local training for everyone, then (optionally) distillation."""
        for participant in self.participants:
            participant.model.fit(
                participant.train_data.x,
                participant.train_data.y,
                epochs=participant.local_epochs,
                batch_size=participant.batch_size,
                optimizer=SGD(learning_rate=participant.learning_rate),
                rng=self._rng,
            )
        if collaborate:
            for participant in self.participants:
                teachers = [p.model for p in self.participants if p.name != participant.name]
                distill(
                    participant.model,
                    teachers,
                    participant.train_data.x,
                    participant.train_data.y,
                    epochs=participant.local_epochs,
                    batch_size=participant.batch_size,
                    alpha=participant.distill_alpha,
                    temperature=participant.distill_temperature,
                    optimizer=SGD(learning_rate=participant.learning_rate),
                    rng=self._rng,
                )
        record = MultiModelRoundRecord(round_number=len(self.history) + 1)
        for participant in self.participants:
            _, accuracy = participant.model.evaluate(self.eval_data.x, self.eval_data.y)
            record.accuracies[participant.name] = accuracy
        self.history.append(record)
        return record

    def run(self, num_rounds: int, collaborate: bool = True) -> List[MultiModelRoundRecord]:
        """Run several rounds and return the full history."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        for _ in range(num_rounds):
            self.run_round(collaborate=collaborate)
        return list(self.history)

    def final_accuracies(self) -> Dict[str, float]:
        """Accuracy of every participant after the most recent round."""
        if not self.history:
            raise ValueError("no rounds have been run yet")
        return dict(self.history[-1].accuracies)
