"""Timing model translating cluster activity into simulated seconds.

The accuracy/loss numbers of the reproduction come from actually training the
(scaled-down) models; the *Time* columns come from this timing model, which is
parameterised by the paper's nominal workload sizes (Table 4) and the hardware
profiles of Section 4.1 rather than by the host machine's speed.  This keeps
the reproduced tables' timing structure faithful: client training dominates,
heterogeneous clients create stragglers, transfers scale with the real model's
size, and chain interactions add a small constant cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.chain.clique import TX_VALIDATION_COST_S
from repro.core.config import ClusterConfig, WorkloadConfig
from repro.simnet.hardware import HardwareProfile
from repro.simnet.units import bytes_over_scaled_bandwidth, float32_model_bytes


@dataclass
class RoundTiming:
    """Durations (simulated seconds) of one cluster round's activities."""

    pull_time: float = 0.0
    client_training_time: float = 0.0
    aggregation_time: float = 0.0
    store_time: float = 0.0
    chain_time: float = 0.0
    scoring_time: float = 0.0
    #: peer-level model traffic (hierarchical intra-group shuttles, gossip
    #: pulls) — zero in the storage-mediated sync/async/semi modes.
    exchange_time: float = 0.0
    idle_time: float = 0.0

    @property
    def active_time(self) -> float:
        """Time the cluster spends doing useful work (everything but idling)."""
        return (
            self.pull_time
            + self.client_training_time
            + self.aggregation_time
            + self.store_time
            + self.chain_time
            + self.scoring_time
            + self.exchange_time
        )

    @property
    def total_time(self) -> float:
        """Active time plus idle (barrier) time."""
        return self.active_time + self.idle_time


class ClusterTimingModel:
    """Computes the simulated duration of each cluster activity."""

    #: fraction of a training pass that one evaluation pass costs.
    EVAL_COST_RATIO = 0.3
    #: weight averaging is memory-bound: it streams weights at a multiple of
    #: the node's *network* bandwidth (the profile attribute that tracks the
    #: device class's overall I/O capability).
    MEMORY_BANDWIDTH_SCALE = 4
    #: similarity scoring (MultiKRUM / cosine) streams flattened weights even
    #: faster — pairwise dot products, no optimiser state.
    SIMILARITY_BANDWIDTH_SCALE = 20
    #: multiplicative log-normal jitter applied to training times (systems noise).
    JITTER_SIGMA = 0.10

    def __init__(self, workload: WorkloadConfig, block_period: float = 2.0, seed: int = 0):
        self.workload = workload
        self.block_period = block_period
        self._rng = np.random.default_rng(seed)

    # -- model size ------------------------------------------------------------
    @property
    def nominal_model_bytes(self) -> int:
        """Serialized size of the paper's full-scale model (float32 weights)."""
        return float32_model_bytes(self.workload.reference_parameters)

    @property
    def compute_scale(self) -> float:
        """Per-sample compute cost relative to the reference 62K-parameter CNN.

        Grows sub-linearly with parameter count: large convolutional models
        reuse weights across spatial positions, so compute does not scale 1:1
        with parameters (VGG16 is roughly 30-60x the small CNN per image, not
        2000x).
        """
        ratio = self.workload.reference_parameters / 62_000.0
        return float(max(1.0, ratio ** 0.35))

    # -- per-activity durations ---------------------------------------------------
    def client_training_time(self, cluster: ClusterConfig, jitter: bool = True) -> float:
        """Wall time of one round of local training within a cluster.

        Clients train in parallel, so the cluster-level duration is the time
        of one (the slowest) client over its share of the nominal dataset.
        """
        samples_per_client = self.workload.nominal_samples_per_client
        base = cluster.client_profile.training_time(
            samples_per_client, self.workload.local_epochs, self.compute_scale
        )
        if jitter and self.JITTER_SIGMA > 0:
            base *= float(self._rng.lognormal(mean=0.0, sigma=self.JITTER_SIGMA))
        return base

    def aggregation_time(self, cluster: ClusterConfig, num_models: int) -> float:
        """Time for the aggregator to average ``num_models`` weight sets."""
        per_model = bytes_over_scaled_bandwidth(
            self.nominal_model_bytes,
            cluster.aggregator_profile.bandwidth_mbytes_per_s,
            self.MEMORY_BANDWIDTH_SCALE,
        )
        return 0.2 + max(0, num_models) * max(per_model, 0.05)

    def transfer_time(self, profile: HardwareProfile, num_models: int = 1) -> float:
        """Time to move ``num_models`` full-scale serialized models over the network."""
        return num_models * profile.transfer_time(self.nominal_model_bytes)

    def chain_interaction_time(self, num_transactions: int = 1) -> float:
        """Latency of having transactions included in a Clique block."""
        return max(0, num_transactions) * TX_VALIDATION_COST_S + self.block_period

    def scoring_time(self, cluster: ClusterConfig, num_models: int, algorithm: str = "accuracy") -> float:
        """Time for a scorer to evaluate ``num_models`` candidate models."""
        if num_models <= 0:
            return 0.0
        if algorithm in ("multikrum", "cosine"):
            # Similarity computation over flattened weights: cheap, bandwidth-bound.
            per_model = bytes_over_scaled_bandwidth(
                self.nominal_model_bytes,
                cluster.aggregator_profile.bandwidth_mbytes_per_s,
                self.SIMILARITY_BANDWIDTH_SCALE,
            )
            return num_models * max(per_model, 0.05)
        test_samples = self.workload.nominal_test_samples
        per_model = (
            cluster.aggregator_profile.training_time(test_samples, 1, self.compute_scale)
            * self.EVAL_COST_RATIO
        )
        return num_models * per_model

    # -- phase windows ------------------------------------------------------------
    def expected_training_window(self, clusters, headroom: float = 1.5) -> float:
        """Fixed training-phase duration for Sync mode.

        The synchronous orchestrator allocates each phase a predefined
        duration (Section 3.2); the default is the expected slowest cluster's
        training + submission time with a scheduling headroom, which is what
        an operator would provision.
        """
        slowest = max(
            cluster.client_profile.training_time(
                self.workload.nominal_samples_per_client,
                self.workload.local_epochs,
                self.compute_scale,
            )
            for cluster in clusters
        )
        submit = self.transfer_time(clusters[0].aggregator_profile) + self.chain_interaction_time()
        return headroom * (slowest + submit)

    def expected_scoring_window(self, clusters, algorithm: str = "accuracy", headroom: float = 1.5) -> float:
        """Fixed scoring-phase duration for Sync mode."""
        per_cluster = max(
            self.scoring_time(cluster, max(1, len(clusters) - 1), algorithm) for cluster in clusters
        )
        fetch = self.transfer_time(clusters[0].aggregator_profile, max(1, len(clusters) - 1))
        return headroom * (per_cluster + fetch + self.chain_interaction_time())
