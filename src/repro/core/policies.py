"""Aggregation and scoring policies (Section 3.4.4 of the paper).

When an aggregator pulls the list of available global models and their score
lists from the smart contract, two decisions remain:

1. **Scoring policy** — how to collapse the list of scores (one per scorer)
   attached to each model into a single number.  Implemented: mean, median,
   min, max.
2. **Aggregation policy** — which models to pull and aggregate with the local
   model.  Implemented, following the paper exactly:

   * Sampling-based: *Random k*, *All*, *Self*.
   * Performance-based: *Top k*, *Above Average*, *Above Median*, *Above Self*.

Policies operate on :class:`CandidateModel` records so they are independent of
how the models were retrieved (contract + IPFS in production, in-memory in the
unit tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class CandidateModel:
    """One model available for cross-silo aggregation."""

    cid: str
    submitter: str
    round_number: int
    scores: Dict[str, float] = field(default_factory=dict)
    #: resolved by the scoring policy before the aggregation policy runs.
    resolved_score: float = float("nan")
    #: True when this record is the aggregator's own local model.
    is_self: bool = False


# --------------------------------------------------------------------------- scoring policies
class ScoringPolicy:
    """Collapse a model's per-scorer score list into a single number."""

    name = "scoring-policy"

    def resolve(self, scores: Sequence[float]) -> float:
        raise NotImplementedError

    def apply(self, candidates: Sequence[CandidateModel]) -> List[CandidateModel]:
        """Return candidates with ``resolved_score`` populated."""
        resolved = []
        for candidate in candidates:
            values = list(candidate.scores.values())
            candidate.resolved_score = self.resolve(values) if values else float("nan")
            resolved.append(candidate)
        return list(resolved)


class MeanScore(ScoringPolicy):
    """Average of all submitted scores."""

    name = "mean"

    def resolve(self, scores: Sequence[float]) -> float:
        return float(np.mean(scores))


class MedianScore(ScoringPolicy):
    """Median score — robust to a single malicious or poorly split scorer."""

    name = "median"

    def resolve(self, scores: Sequence[float]) -> float:
        return float(np.median(scores))


class MinScore(ScoringPolicy):
    """Most pessimistic scorer wins."""

    name = "min"

    def resolve(self, scores: Sequence[float]) -> float:
        return float(np.min(scores))


class MaxScore(ScoringPolicy):
    """Most optimistic scorer wins."""

    name = "max"

    def resolve(self, scores: Sequence[float]) -> float:
        return float(np.max(scores))


_SCORING_POLICIES = {
    "mean": MeanScore,
    "median": MedianScore,
    "min": MinScore,
    "max": MaxScore,
}


def build_scoring_policy(name: str) -> ScoringPolicy:
    """Construct a scoring policy by name."""
    key = name.lower()
    if key not in _SCORING_POLICIES:
        raise ValueError(f"unknown scoring policy '{name}'; available: {sorted(_SCORING_POLICIES)}")
    return _SCORING_POLICIES[key]()


# ----------------------------------------------------------------------- aggregation policies
class AggregationPolicy:
    """Select which candidate models participate in the cross-silo aggregation."""

    name = "aggregation-policy"

    def select(
        self,
        candidates: Sequence[CandidateModel],
        self_candidate: Optional[CandidateModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> List[CandidateModel]:
        """Return the chosen subset (may include the aggregator's own model)."""
        raise NotImplementedError

    @staticmethod
    def _scored(candidates: Sequence[CandidateModel]) -> List[CandidateModel]:
        return [c for c in candidates if not np.isnan(c.resolved_score)]


class PickAll(AggregationPolicy):
    """Aggregate every available model (the paper's *All* policy)."""

    name = "all"

    def select(self, candidates, self_candidate=None, rng=None):
        chosen = list(candidates)
        if self_candidate is not None:
            chosen.append(self_candidate)
        return chosen


class PickSelf(AggregationPolicy):
    """Do not collaborate: keep only the local model (the paper's *Self* policy)."""

    name = "self"

    def select(self, candidates, self_candidate=None, rng=None):
        return [self_candidate] if self_candidate is not None else []


class RandomK(AggregationPolicy):
    """Randomly sample ``k`` of the available peer models."""

    name = "random_k"

    def __init__(self, k: int = 2):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k

    def select(self, candidates, self_candidate=None, rng=None):
        rng = rng or np.random.default_rng(0)
        pool = list(candidates)
        if len(pool) > self.k:
            picked_idx = rng.choice(len(pool), size=self.k, replace=False)
            pool = [pool[i] for i in sorted(picked_idx)]
        if self_candidate is not None:
            pool.append(self_candidate)
        return pool


class TopK(AggregationPolicy):
    """Keep the ``k`` best models by resolved score (the paper's *Top k*)."""

    name = "top_k"

    def __init__(self, k: int = 2):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k

    def select(self, candidates, self_candidate=None, rng=None):
        scored = sorted(self._scored(candidates), key=lambda c: -c.resolved_score)
        chosen = scored[: self.k]
        if self_candidate is not None:
            chosen = chosen + [self_candidate]
        return chosen


class AboveAverage(AggregationPolicy):
    """Keep models scoring at or above the mean of all resolved scores."""

    name = "above_average"

    def select(self, candidates, self_candidate=None, rng=None):
        scored = self._scored(candidates)
        if not scored:
            return [self_candidate] if self_candidate is not None else []
        threshold = float(np.mean([c.resolved_score for c in scored]))
        chosen = [c for c in scored if c.resolved_score >= threshold]
        if self_candidate is not None:
            chosen.append(self_candidate)
        return chosen


class AboveMedian(AggregationPolicy):
    """Keep models scoring at or above the median of all resolved scores."""

    name = "above_median"

    def select(self, candidates, self_candidate=None, rng=None):
        scored = self._scored(candidates)
        if not scored:
            return [self_candidate] if self_candidate is not None else []
        threshold = float(np.median([c.resolved_score for c in scored]))
        chosen = [c for c in scored if c.resolved_score >= threshold]
        if self_candidate is not None:
            chosen.append(self_candidate)
        return chosen


class AboveSelf(AggregationPolicy):
    """Keep models that score at least as well as the aggregator's own model."""

    name = "above_self"

    def select(self, candidates, self_candidate=None, rng=None):
        scored = self._scored(candidates)
        if self_candidate is None or np.isnan(self_candidate.resolved_score):
            chosen = scored
        else:
            chosen = [c for c in scored if c.resolved_score >= self_candidate.resolved_score]
        if self_candidate is not None:
            chosen.append(self_candidate)
        return chosen


_AGGREGATION_POLICIES = {
    "all": PickAll,
    "self": PickSelf,
    "random_k": RandomK,
    "top_k": TopK,
    "above_average": AboveAverage,
    "above_median": AboveMedian,
    "above_self": AboveSelf,
}


def build_aggregation_policy(name: str, k: int = 2) -> AggregationPolicy:
    """Construct an aggregation policy by name.

    ``k`` is forwarded to the policies that take it (*Random k*, *Top k*); it
    is ignored otherwise, which keeps experiment configuration uniform.
    """
    key = name.lower()
    if key not in _AGGREGATION_POLICIES:
        raise ValueError(
            f"unknown aggregation policy '{name}'; available: {sorted(_AGGREGATION_POLICIES)}"
        )
    policy_cls = _AGGREGATION_POLICIES[key]
    if key in ("random_k", "top_k"):
        return policy_cls(k=k)
    return policy_cls()


def available_aggregation_policies() -> List[str]:
    """Names accepted by :func:`build_aggregation_policy`."""
    return sorted(_AGGREGATION_POLICIES)


def available_scoring_policies() -> List[str]:
    """Names accepted by :func:`build_scoring_policy`."""
    return sorted(_SCORING_POLICIES)
