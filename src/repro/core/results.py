"""Result records and table formatting for UnifyFL experiments.

The benchmark harness prints tables in the same shape as the paper's
Tables 1, 5, 6 and 7: one row per aggregator with the time, policy, and the
global/local accuracy and loss, plus resource-overhead rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.aggregator import AggregatorRoundRecord
from repro.simnet.resources import ResourceReport


@dataclass
class AggregatorResult:
    """Final metrics of one aggregator in a UnifyFL run (a Table 5/6 row)."""

    name: str
    policy: str
    strategy: str
    total_time: float
    global_accuracy: float
    global_loss: float
    local_accuracy: float
    local_loss: float
    idle_time: float = 0.0
    straggler_count: int = 0
    history: List[AggregatorRoundRecord] = field(default_factory=list)

    def accuracy_series(self) -> List[float]:
        """Global accuracy over rounds (for Figure-7-style time series)."""
        return [r.global_accuracy for r in self.history]

    def time_series(self) -> List[float]:
        """Simulated completion time of each round."""
        return [r.sim_time for r in self.history]


@dataclass
class ExperimentResult:
    """Everything measured in one UnifyFL experiment."""

    name: str
    mode: str
    scoring_algorithm: str
    partitioning: str
    rounds: int
    aggregators: List[AggregatorResult]
    chain_metrics: Dict[str, float] = field(default_factory=dict)
    storage_metrics: Dict[str, float] = field(default_factory=dict)
    resource_reports: Dict[str, ResourceReport] = field(default_factory=dict)
    #: mode-specific annotations from the round policy (e.g. semi-sync
    #: quorum/staleness closure statistics).
    orchestration_extras: Dict[str, object] = field(default_factory=dict)
    #: per-phase communication/chain accounting from the event-stream fabric
    #: (empty unless the experiment ran with ``event_streams=True``).
    comm_metrics: Dict[str, float] = field(default_factory=dict)
    #: sampled-federation metadata — population size, per-round cohort size,
    #: sampling seed and how many virtual clusters actually materialised.
    #: Empty for the classic fully-materialised cross-silo shape.
    sampling: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_global_accuracy(self) -> float:
        """Average final global accuracy across aggregators."""
        return sum(a.global_accuracy for a in self.aggregators) / len(self.aggregators)

    @property
    def mean_total_time(self) -> float:
        """Average total simulated time across aggregators."""
        return sum(a.total_time for a in self.aggregators) / len(self.aggregators)

    @property
    def max_total_time(self) -> float:
        """Slowest aggregator's total simulated time (the federation makespan)."""
        return max(a.total_time for a in self.aggregators)

    def aggregator(self, name: str) -> AggregatorResult:
        """Look up one aggregator's result by cluster name."""
        for result in self.aggregators:
            if result.name == name:
                return result
        raise KeyError(f"no aggregator named '{name}' in experiment '{self.name}'")


def format_run_table(result: ExperimentResult, percent: bool = True) -> str:
    """Render an experiment in the layout of the paper's Tables 5/6."""
    scale = 100.0 if percent else 1.0
    header = (
        f"{'Aggregator':<12}{'Time':>8}  {'Policy':<16}"
        f"{'Glob Acc':>9}{'Loc Acc':>9}{'Glob Loss':>10}{'Loc Loss':>10}"
    )
    lines = [f"Run: {result.name}  (mode={result.mode}, scoring={result.scoring_algorithm}, "
             f"partition={result.partitioning}, rounds={result.rounds})", header, "-" * len(header)]
    for agg in result.aggregators:
        lines.append(
            f"{agg.name:<12}{agg.total_time:>8.0f}  {agg.policy:<16}"
            f"{agg.global_accuracy * scale:>9.2f}{agg.local_accuracy * scale:>9.2f}"
            f"{agg.global_loss:>10.2f}{agg.local_loss:>10.2f}"
        )
    return "\n".join(lines)


def format_resource_table(reports: Dict[str, ResourceReport]) -> str:
    """Render the Table 7 system-overhead layout."""
    header = f"{'Process':<12}{'Type':<12}{'Mean':>12}{'Std/Dev':>12}"
    lines = ["System metrics (Table 7 layout)", header, "-" * len(header)]
    for process_type in sorted(reports):
        report = reports[process_type]
        lines.append(f"{process_type:<12}{'cpu %':<12}{report.cpu_mean:>12.3f}{report.cpu_std:>12.3f}")
        lines.append(f"{'':<12}{'mem (MB)':<12}{report.mem_mean_mb:>12.3f}{report.mem_std_mb:>12.3f}")
    return "\n".join(lines)


def format_comm_table(result: ExperimentResult) -> str:
    """Render the event-stream per-phase communication / chain report.

    Shows wire vs queued seconds for uploads and downloads, the finality wait
    of each chain-interaction kind, and the block span — the observable cost
    of modelling the middle tier as event streams rather than constants.
    """
    metrics = result.comm_metrics
    if not metrics:
        return "Communication report: run with event_streams=True to collect per-phase I/O."
    header = f"{'Stream':<28}{'Time (s)':>12}{'Queued (s)':>12}{'Events':>10}"
    lines = [f"Communication / chain event streams ({result.name})", header, "-" * len(header)]
    for phase in ("upload", "download", "replication", "exchange"):
        if f"{phase}_time" in metrics:
            lines.append(
                f"{'network ' + phase:<28}{metrics[f'{phase}_time']:>12.2f}"
                f"{metrics[f'{phase}_queued']:>12.2f}{metrics[f'{phase}_count']:>10.0f}"
            )
    replicas = sorted(
        key[len("replica_"):-len("_time")]
        for key in metrics
        if key.startswith("replica_")
        and key.endswith("_time")
        and not key.endswith("_replication_time")
    )
    for replica in replicas:
        lines.append(
            f"{'replica ' + replica:<28}{metrics[f'replica_{replica}_time']:>12.2f}"
            f"{metrics[f'replica_{replica}_queued']:>12.2f}"
            f"{metrics[f'replica_{replica}_count']:>10.0f}"
        )
    for replica in replicas:
        # Propagation traffic *into* each site (eager pushes + lazy fetches);
        # only shown when any replication actually flowed.
        count = metrics.get(f"replica_{replica}_replication_count", 0.0)
        if count:
            lines.append(
                f"{'replicate -> ' + replica:<28}"
                f"{metrics[f'replica_{replica}_replication_time']:>12.2f}"
                f"{metrics[f'replica_{replica}_replication_queued']:>12.2f}"
                f"{count:>10.0f}"
            )
    kinds = sorted(
        key[len("chain_wait_"):] for key in metrics if key.startswith("chain_wait_")
    )
    for kind in kinds:
        lines.append(
            f"{'chain ' + kind:<28}{metrics[f'chain_wait_{kind}']:>12.2f}"
            f"{'—':>12}{metrics[f'chain_ops_{kind}']:>10.0f}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'total network':<28}{metrics.get('network_time', 0.0):>12.2f}"
        f"{metrics.get('network_queued', 0.0):>12.2f}"
        f"{metrics.get('upload_count', 0.0) + metrics.get('download_count', 0.0):>10.0f}"
    )
    lines.append(
        f"{'total chain wait':<28}{metrics.get('chain_wait', 0.0):>12.2f}"
        f"{'—':>12}{metrics.get('chain_ops', 0.0):>10.0f}"
    )
    lines.append(f"blocks spanned: {metrics.get('chain_blocks_spanned', 0.0):.0f}")
    if metrics.get("wan_bytes"):
        lines.append(f"WAN bytes moved: {metrics['wan_bytes']:.0f}")
    fault_keys = (
        "dropped_clients",
        "retries",
        "failovers",
        "breaker_trips",
        "fault_outage_s",
        "fault_partition_s",
    )
    if any(metrics.get(key) for key in fault_keys):
        lines.append(
            f"faults: {metrics.get('dropped_clients', 0.0):.0f} dropped client-rounds, "
            f"{metrics.get('retries', 0.0):.0f} retries "
            f"({metrics.get('backoff_wait_s', 0.0):.1f}s backoff), "
            f"{metrics.get('failovers', 0.0):.0f} failovers, "
            f"{metrics.get('breaker_trips', 0.0):.0f} breaker trips "
            f"({metrics.get('breaker_open_s', 0.0):.0f}s open)"
        )
    return "\n".join(lines)


def format_policy_table(result: ExperimentResult) -> str:
    """Render the mode-specific orchestration breakdown, if the mode has one.

    Hierarchical runs report the per-tier split (cheap local-site work vs
    the global WAN/chain coordination tier) plus the leadership rotation;
    gossip runs report the per-exchange totals and the per-cluster
    convergence.  Modes without such extras get an empty string, so callers
    can print unconditionally.
    """
    extras = result.orchestration_extras
    lines: List[str] = []
    if "tier_totals" in extras:
        tiers = extras["tier_totals"]
        header = f"{'Tier / activity':<32}{'Time (s)':>12}"
        lines = [f"Hierarchical tier breakdown ({result.name})", header, "-" * len(header)]
        for key in sorted(tiers):
            tier, _, activity = key.partition("_")
            lines.append(f"{tier + ' ' + activity.replace('_', ' '):<32}{tiers[key]:>12.2f}")
        local = sum(v for k, v in sorted(tiers.items()) if k.startswith("local_"))
        global_ = sum(v for k, v in sorted(tiers.items()) if k.startswith("global_"))
        lines.append("-" * len(header))
        lines.append(f"{'total local tier':<32}{local:>12.2f}")
        lines.append(f"{'total global tier':<32}{global_:>12.2f}")
        leaders = extras.get("leaders", [])
        if leaders:
            rotation = ", ".join(f"r{r}:{name}" for r, _, name in leaders[:8])
            suffix = ", ..." if len(leaders) > 8 else ""
            lines.append(f"leaders: {rotation}{suffix}")
        exhausted = extras.get("budget_exhausted", {})
        if exhausted:
            spent = ", ".join(f"{name}@{at}" for name, at in sorted(exhausted.items()))
            lines.append(f"round budget exhausted: {spent}")
    elif "exchange_count" in extras:
        header = f"{'Cluster':<16}{'Exchanges':>10}{'Final acc %':>12}"
        lines = [f"Gossip exchange breakdown ({result.name})", header, "-" * len(header)]
        per_cluster = extras.get("per_cluster_exchanges", {})
        accuracy = extras.get("per_cluster_final_accuracy", {})
        for name in sorted(per_cluster):
            lines.append(
                f"{name:<16}{per_cluster[name]:>10}{accuracy.get(name, float('nan')) * 100:>12.2f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"fanout {extras.get('gossip_fanout', 0)}: "
            f"{extras['exchange_count']} exchanges, "
            f"{extras.get('exchange_time', 0.0):.2f}s moving models, "
            f"{extras.get('missed_exchanges', 0)} missed"
        )
    return "\n".join(lines)


def format_comparison(
    results: Sequence[ExperimentResult], labels: Optional[Sequence[str]] = None
) -> str:
    """Summarise several experiments side by side (accuracy and makespan)."""
    labels = list(labels) if labels is not None else [r.name for r in results]
    header = f"{'Run':<34}{'Mean Glob Acc %':>16}{'Makespan (s)':>14}"
    lines = [header, "-" * len(header)]
    for label, result in zip(labels, results):
        lines.append(
            f"{label:<34}{result.mean_global_accuracy * 100:>16.2f}{result.max_total_time:>14.0f}"
        )
    return "\n".join(lines)
