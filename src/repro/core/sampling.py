"""Per-round client sampling for cross-device-scale federations.

The cross-silo shape materialises every cluster of ``ExperimentConfig`` up
front, so memory is O(population) and a realistic cross-device federation
(10⁵–10⁶ clients, of which a few hundred participate per round) is
unreachable.  Sampled mode splits the two concerns:

* :class:`ClientSampler` (this module) decides *who* participates in each
  round — a seeded draw without replacement, keyed on ``[seed, round]`` in
  the same style as the fault plan's churn stream, so the cohort of round
  ``r`` is a pure function of ``(seed, r)`` and therefore independent of
  the order in which round policies ask for it;
* the lazy cluster factory in :mod:`repro.core.runner` decides *what* gets
  built — only sampled virtual clusters materialise actors, models and
  datasets, so peak memory is O(active cohort).

The sampler draws from its own stream tag with its own seed knob
(``sampling_seed``), deliberately disjoint from the fault plan's streams:
layering cohort sampling onto a churn-injecting run must not shift the
churn Bernoulli draws by a single variate.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

#: stream tag folded into the sampler's RNG key, so cohort draws can never
#: collide with another subsystem keying on the same ``(seed, round)`` pair.
_COHORT_STREAM = 0x5A


class ClientSampler:
    """Seeded per-round cohort draw over a virtual population.

    Cohorts are drawn without replacement, returned as sorted virtual
    indices, and memoised per round: asking for round 3 before round 1
    yields exactly the same cohorts as the natural order.
    """

    def __init__(self, population: int, cohort_size: int, seed: int):
        if population < 1:
            raise ValueError("population must be at least 1")
        if not 1 <= cohort_size <= population:
            raise ValueError("cohort_size must be in [1, population]")
        self.population = population
        self.cohort_size = cohort_size
        self.seed = seed
        self._memo: Dict[int, Tuple[int, ...]] = {}

    def cohort(self, round_number: int) -> Tuple[int, ...]:
        """Sorted virtual-cluster indices participating in ``round_number``."""
        if round_number < 1:
            raise ValueError("round_number must be at least 1")
        cached = self._memo.get(round_number)
        if cached is not None:
            return cached
        rng = np.random.default_rng([self.seed, _COHORT_STREAM, round_number])
        drawn = rng.choice(self.population, size=self.cohort_size, replace=False)
        indices = tuple(int(i) for i in np.sort(drawn))
        self._memo[round_number] = indices
        return indices
