"""The UnifyFL cluster aggregator.

Each participating organisation runs one :class:`UnifyFLAggregator`.  It plays
both roles described in Section 3.1 of the paper:

* **Trainer / aggregator** — pulls the other silos' models and scores from the
  smart contract, applies its own scoring + aggregation policies to build a
  new global model, runs one round of local FL with its clients, aggregates
  their updates into a local model, stores that model on IPFS and submits the
  CID to the contract.
* **Scorer** — when the contract assigns it models to score, it pulls the
  weights from IPFS, evaluates them with its scoring algorithm, and submits
  the scores.

All durations are tracked on the aggregator's simulated clock through the
:class:`~repro.core.timing.ClusterTimingModel`, and resource usage samples are
pushed to the shared :class:`~repro.simnet.resources.ResourceMonitor`.

When the experiment enables event streams, the aggregator charges its
pull/store/chain costs through the shared
:class:`~repro.sched.actors.CommFabric` instead of the constant-cost timing
model: uploads and downloads queue on contended links, and contract calls
wait for the next sealed block.  With no fabric attached (the default) the
constant-cost arithmetic is byte-for-byte the same as before.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.chain.account import Account
from repro.chain.blockchain import Blockchain
from repro.core.attacks import ModelPoisoningAttack
from repro.core.config import ClusterConfig, WorkloadConfig
from repro.core.policies import (
    AggregationPolicy,
    CandidateModel,
    ScoringPolicy,
    build_aggregation_policy,
    build_scoring_policy,
)
from repro.core.scorer import MultiKRUMScorer, Scorer
from repro.core.timing import ClusterTimingModel, RoundTiming
from repro.datasets.synthetic import Dataset
from repro.fl.client import Client
from repro.fl.strategy import Strategy, build_strategy
from repro.ipfs.node import IPFSNode
from repro.ml.models import Model
from repro.ml.serialization import weights_from_bytes, weights_to_bytes
from repro.sched.actors import CommFabric
from repro.simnet.clock import SimClock
from repro.simnet.faults import FaultPlan
from repro.simnet.resources import ResourceMonitor

Weights = List[np.ndarray]

#: deserialized models kept per aggregator; long gossip runs touch hundreds
#: of CIDs, so the cache is an LRU bounded to the working set of a few rounds
#: rather than the whole run's history.
WEIGHTS_CACHE_CAPACITY = 32


@dataclass
class AggregatorRoundRecord:
    """Per-round metrics for one aggregator (one row-slice of Tables 5/6)."""

    round_number: int
    global_accuracy: float
    global_loss: float
    local_accuracy: float
    local_loss: float
    models_pulled: int
    models_scored: int
    timing: RoundTiming
    sim_time: float
    straggled: bool = False
    #: True when the organisation was down for this round (fault injection).
    offline: bool = False


class UnifyFLAggregator:
    """One organisation's aggregator participating in UnifyFL."""

    def __init__(
        self,
        config: ClusterConfig,
        workload: WorkloadConfig,
        account: Account,
        chain: Blockchain,
        ipfs_node: IPFSNode,
        model_template: Model,
        clients: Sequence[Client],
        scorer: Scorer,
        eval_data: Dataset,
        timing_model: Optional[ClusterTimingModel] = None,
        strategy: Optional[Strategy] = None,
        aggregation_policy: Optional[AggregationPolicy] = None,
        scoring_policy: Optional[ScoringPolicy] = None,
        attack: Optional[ModelPoisoningAttack] = None,
        resource_monitor: Optional[ResourceMonitor] = None,
        comm: Optional["CommFabric"] = None,
        seed: int = 0,
        faults: Optional["FaultPlan"] = None,
        streaming_aggregation: bool = False,
    ):
        if not clients:
            raise ValueError("an aggregator needs at least one client")
        if config.malicious and attack is None:
            raise ValueError("a malicious cluster requires an attack instance")
        self.config = config
        self.workload = workload
        self.account = account
        self.chain = chain
        self.ipfs = ipfs_node
        self.model = model_template.clone()
        self.eval_model = model_template.clone()
        self.clients = list(clients)
        self.scorer = scorer
        self.eval_data = eval_data
        self.timing = timing_model or ClusterTimingModel(workload)
        self.strategy = strategy or build_strategy(
            config.strategy, streaming=streaming_aggregation
        )
        self.aggregation_policy = aggregation_policy or build_aggregation_policy(
            config.aggregation_policy, k=config.policy_k
        )
        self.scoring_policy = scoring_policy or build_scoring_policy(config.scoring_policy)
        self.attack = attack
        self.monitor = resource_monitor
        #: the shared event-stream communication fabric, or ``None`` for the
        #: constant-cost timing path (the default).
        self.comm = comm
        #: the run's fault plan; churn draws come from it (``None`` when the
        #: experiment injects no faults).
        self.faults = faults
        self.clock = SimClock()
        self._rng = np.random.default_rng(seed)

        self.global_weights: Weights = self.model.get_weights()
        self.local_weights: Weights = self.model.get_weights()
        self.history: List[AggregatorRoundRecord] = []
        self.own_cids: List[str] = []
        self._last_self_score: float = float("nan")
        self._weights_cache: "OrderedDict[str, Weights]" = OrderedDict()
        self.weights_cache_hits = 0
        self.weights_cache_evictions = 0

    # ------------------------------------------------------------------ identity
    @property
    def name(self) -> str:
        return self.config.name

    @property
    def address(self) -> str:
        return self.account.address

    # ------------------------------------------------------------------ setup
    def register(self, mine: bool = True) -> None:
        """Register this aggregator with the orchestrator contract."""
        self.chain.send(self.account, "unifyfl", "registerAggregator")
        if mine:
            self.chain.mine_until_empty()

    def is_available(self, round_number: Optional[int] = None) -> bool:
        """Draw whether the organisation is up for the coming round.

        Used by the orchestrators for fault injection: with
        ``config.availability < 1`` the organisation occasionally sits a whole
        round out (no training, no submission, no scoring).  When the run
        carries a :class:`~repro.simnet.faults.FaultPlan`, its seeded churn
        draw for ``(cluster, round_number)`` is consulted first — a churned
        round is offline regardless of the availability draw, and the drop
        is accounted in the plan.  The legacy availability stream is only
        advanced when it exists (``availability < 1``), so enabling churn
        does not perturb availability-driven runs and vice versa.
        """
        available = True
        if self.config.availability < 1.0:
            available = bool(self._rng.random() < self.config.availability)
        if (
            self.faults is not None
            and round_number is not None
            and self.faults.cluster_offline(self.name, round_number)
        ):
            return False
        return available

    # ------------------------------------------------------------- global model
    def pull_candidates(
        self,
        before_time: Optional[float] = None,
        max_rounds: int = 2,
        prefer_scored: bool = False,
    ) -> List[CandidateModel]:
        """Query the contract for available peer models and their score lists.

        Aggregators collaborate on "the latest set of models" (Algorithm 1's
        ``getLatestModelsWithScores``), so only the most recent submission of
        each peer is kept.  When ``prefer_scored`` is true — used by the
        performance-based policies — the most recent *scored* submission of a
        peer is preferred over a newer, not-yet-scored one, so a model that was
        submitted moments ago does not shadow the peer's evaluated model.
        """
        records = self.chain.call(
            "unifyfl",
            "getLatestModelsWithScores",
            {
                "max_rounds": max_rounds,
                "before_time": before_time,
                "exclude_submitter": self.address,
            },
            sender=self.address,
        )
        latest: Dict[str, Dict] = {}
        for record in records:
            existing = latest.get(record["submitter"])
            if existing is None:
                latest[record["submitter"]] = record
                continue
            if prefer_scored and bool(record["scores"]) != bool(existing["scores"]):
                # One of the two has scores and the other does not: keep the scored one.
                if record["scores"]:
                    latest[record["submitter"]] = record
                continue
            if (record["round"], record["timestamp"]) > (existing["round"], existing["timestamp"]):
                latest[record["submitter"]] = record
        # Candidates are kept CID-sorted incrementally — each one drops into
        # its slot via a bisect on the parallel key list — instead of a full
        # re-sort of the list on every merge call.  Equal CIDs stay in
        # insertion order, matching what a stable sort produced.
        candidates: List[CandidateModel] = []
        cids: List[str] = []
        for record in latest.values():
            candidate = CandidateModel(
                cid=record["cid"],
                submitter=record["submitter"],
                round_number=record["round"],
                scores=dict(record["scores"]),
            )
            index = bisect.bisect_right(cids, candidate.cid)
            cids.insert(index, candidate.cid)
            candidates.insert(index, candidate)
        return candidates

    def fetch_weights(self, cid: str) -> Weights:
        """Retrieve and deserialize a model from the storage swarm.

        Deserialized models sit in a CID-keyed LRU bounded to
        ``WEIGHTS_CACHE_CAPACITY`` entries; hit and eviction counts surface
        in the orchestration result's extras.
        """
        cached = self._weights_cache.get(cid)
        if cached is not None:
            self._weights_cache.move_to_end(cid)
            self.weights_cache_hits += 1
            return cached
        from repro.ipfs.cid import parse_cid

        payload = self.ipfs.get(parse_cid(cid))
        weights = weights_from_bytes(payload)
        self._cache_weights(cid, weights)
        return weights

    def _cache_weights(self, cid: str, weights: Weights) -> None:
        self._weights_cache[cid] = weights
        self._weights_cache.move_to_end(cid)
        while len(self._weights_cache) > WEIGHTS_CACHE_CAPACITY:
            self._weights_cache.popitem(last=False)
            self.weights_cache_evictions += 1

    def build_global_model(self, before_time: Optional[float] = None) -> RoundTiming:
        """Pull peer models, apply the policies, and merge into the global model.

        Returns the timing contribution of the pull + aggregate step and
        advances the aggregator's clock by it.
        """
        timing = RoundTiming()
        needs_scores = self.aggregation_policy.name not in ("all", "random_k", "self")
        candidates = self.pull_candidates(before_time=before_time, prefer_scored=needs_scores)
        scored = self.scoring_policy.apply(candidates)
        # Filter: only models that received at least one score are considered,
        # except under the trivially-sampling policies which ignore scores.
        usable = [c for c in scored if c.scores or self.aggregation_policy.name in ("all", "random_k", "self")]
        self_candidate = CandidateModel(
            cid="self",
            submitter=self.address,
            round_number=self.chain.call("unifyfl", "getCurrentRound"),
            scores={},
            resolved_score=self._last_self_score,
            is_self=True,
        )
        selected = self.aggregation_policy.select(usable, self_candidate=self_candidate, rng=self._rng)

        peer_candidates = [c for c in selected if not c.is_self]
        pulled_cids = [c.cid for c in peer_candidates]

        num_pulled = len(peer_candidates)
        if peer_candidates:
            # Stream the pulled models into the strategy one at a time: a
            # streaming-capable strategy folds each contributor in place, so
            # peak memory stays O(1) models instead of O(round).  The paper's
            # step (5) still applies — the local model always participates,
            # appended after the peers exactly as the stacked path did.
            def _contributions():
                for candidate in peer_candidates:
                    yield self.fetch_weights(candidate.cid), 1.0
                yield self.local_weights, 1.0

            self.global_weights = self.strategy.aggregate_stream(
                self.local_weights, _contributions()
            )
        else:
            self.global_weights = [np.array(w, copy=True) for w in self.local_weights]

        if self.comm is not None:
            # CIDs identify the artifacts so the fabric can gate each fetch
            # on the object's availability at the serving replica.
            timing.pull_time = self.comm.download(
                self.name, num_pulled, at=self.clock.now(), object_ids=pulled_cids
            )
        else:
            timing.pull_time = self.timing.transfer_time(self.config.aggregator_profile, num_pulled)
        timing.aggregation_time = self.timing.aggregation_time(self.config, num_pulled + 1)
        self.clock.advance(timing.pull_time + timing.aggregation_time)
        self._record_resources("agg", cpu=self.config.aggregator_profile.train_cpu_percent * 0.12)
        self._pulled_this_round = num_pulled
        return timing

    # ------------------------------------------------------------- local training
    def local_training_round(self) -> RoundTiming:
        """Run one round of FL with this cluster's clients on the global model."""
        timing = RoundTiming()
        results = [client.fit(self.global_weights) for client in self.clients]
        self.local_weights = self.strategy.aggregate(self.global_weights, results)
        timing.client_training_time = self.timing.client_training_time(self.config)
        timing.aggregation_time = self.timing.aggregation_time(self.config, len(results))
        self.clock.advance(timing.client_training_time + timing.aggregation_time)
        for _ in results:
            self._record_resources("client", cpu=self.config.client_profile.train_cpu_percent)
        self._record_resources("agg", cpu=self.config.aggregator_profile.train_cpu_percent * 0.1)
        return timing

    # --------------------------------------------------------------- submission
    def submit_local_model(self, mine: bool = True) -> tuple[str, RoundTiming]:
        """Serialize the local model, add it to IPFS, and register the CID."""
        timing = RoundTiming()
        weights = self.local_weights
        if self.config.malicious and self.attack is not None:
            weights = self.attack.poison(weights, rng=self._rng)
        payload = weights_to_bytes(weights)
        cid = self.ipfs.add(payload)
        if self.comm is not None:
            now = self.clock.now()
            timing.store_time = self.comm.upload(
                self.name, 1, at=now, object_ids=[str(cid)]
            )
            timing.chain_time = self.comm.chain_op(
                "submitModel", self.name, at=now + timing.store_time
            )
        else:
            timing.store_time = self.timing.transfer_time(self.config.aggregator_profile, 1)
            timing.chain_time = self.timing.chain_interaction_time(1)
        self.clock.advance(timing.store_time + timing.chain_time)
        self.chain.send(
            self.account,
            "unifyfl",
            "submitModel",
            {"cid": str(cid), "timestamp": self.clock.now()},
        )
        if mine:
            self.chain.mine_until_empty()
        self.own_cids.append(str(cid))
        self._cache_weights(str(cid), [np.array(w, copy=True) for w in weights])
        self._record_resources("agg", cpu=self.config.aggregator_profile.train_cpu_percent * 0.05)
        return str(cid), timing

    # ------------------------------------------------------------------ scoring
    def score_assigned(self, before_time: Optional[float] = None, mine: bool = True) -> RoundTiming:
        """Score every model the contract has assigned to this aggregator."""
        timing = RoundTiming()
        assigned: List[str] = self.chain.call(
            "unifyfl",
            "getAssignedModels",
            {"scorer": self.address, "before_time": before_time},
            sender=self.address,
        )
        if not assigned:
            return timing
        round_context: Optional[Dict[str, Weights]] = None
        if isinstance(self.scorer, MultiKRUMScorer) or self.scorer.requires_full_round:
            round_context = self._collect_round_weights()
        scored = 0
        scored_cids: List[str] = []
        for cid in assigned:
            try:
                weights = self.fetch_weights(cid)
            except Exception:
                continue
            scored_cids.append(cid)
            if round_context is not None:
                score = self.scorer.score(weights, context={"round_weights": round_context, "cid": cid})
            else:
                score = self.scorer.score(weights)
            self.chain.send(
                self.account,
                "unifyfl",
                "submitScore",
                {"cid": cid, "score": float(score), "timestamp": self.clock.now()},
            )
            scored += 1
        if mine and scored:
            self.chain.mine_until_empty()
        timing.scoring_time = self.timing.scoring_time(self.config, scored, algorithm=self.scorer.name)
        if self.comm is not None:
            now = self.clock.now()
            timing.pull_time = self.comm.download(
                self.name, scored, at=now, object_ids=scored_cids
            )
            timing.chain_time = self.comm.chain_op(
                "submitScore", self.name, at=now + timing.pull_time + timing.scoring_time,
                num_transactions=scored,
            )
        else:
            timing.pull_time = self.timing.transfer_time(self.config.aggregator_profile, scored)
            timing.chain_time = self.timing.chain_interaction_time(scored) if scored else 0.0
        self.clock.advance(timing.total_time)
        self._record_resources("scorer", cpu=self.config.aggregator_profile.train_cpu_percent * 0.3)
        self._scored_this_round = scored
        return timing

    def _collect_round_weights(self) -> Dict[str, Weights]:
        """All models of the current round, needed by round-wise scorers (MultiKRUM)."""
        current_round = self.chain.call("unifyfl", "getCurrentRound")
        records = self.chain.call(
            "unifyfl",
            "getLatestModelsWithScores",
            {"max_rounds": 1},
            sender=self.address,
        )
        round_weights: Dict[str, Weights] = {}
        for record in records:
            if record["round"] != current_round:
                continue
            try:
                round_weights[record["cid"]] = self.fetch_weights(record["cid"])
            except Exception:
                continue
        return round_weights

    # --------------------------------------------------------------- evaluation
    def evaluate_weights(self, weights: Weights) -> Dict[str, float]:
        """Loss and accuracy of a weight set on the shared evaluation dataset."""
        self.eval_model.set_weights(weights)
        loss, accuracy = self.eval_model.evaluate(self.eval_data.x, self.eval_data.y)
        return {"loss": loss, "accuracy": accuracy}

    def record_round(
        self,
        round_number: int,
        timing: RoundTiming,
        straggled: bool = False,
        offline: bool = False,
    ) -> AggregatorRoundRecord:
        """Evaluate both models and append a round record to the history."""
        global_metrics = self.evaluate_weights(self.global_weights)
        local_metrics = self.evaluate_weights(self.local_weights)
        self._last_self_score = local_metrics["accuracy"]
        record = AggregatorRoundRecord(
            round_number=round_number,
            global_accuracy=global_metrics["accuracy"],
            global_loss=global_metrics["loss"],
            local_accuracy=local_metrics["accuracy"],
            local_loss=local_metrics["loss"],
            models_pulled=getattr(self, "_pulled_this_round", 0) if not offline else 0,
            models_scored=getattr(self, "_scored_this_round", 0) if not offline else 0,
            timing=timing,
            sim_time=self.clock.now(),
            straggled=straggled,
            offline=offline,
        )
        self.history.append(record)
        self._scored_this_round = 0
        return record

    # ------------------------------------------------------------------ summary
    @property
    def final_record(self) -> Optional[AggregatorRoundRecord]:
        """The last recorded round, if any."""
        return self.history[-1] if self.history else None

    def total_time(self) -> float:
        """Total simulated time this aggregator has spent."""
        return self.clock.now()

    def _record_resources(self, process_type: str, cpu: float) -> None:
        if self.monitor is None:
            return
        if process_type == "client":
            memory = 0.20 * self.config.client_profile.memory_mb + self._rng.normal(0, 20)
        elif process_type == "scorer":
            memory = 900 + self._rng.normal(0, 60)
        else:
            memory = min(0.75 * self.config.aggregator_profile.memory_mb, 9000 + self._rng.normal(0, 2500))
        cpu_noisy = max(0.0, cpu + self._rng.normal(0, cpu * 0.35 + 1.0))
        self.monitor.record(process_type, cpu_noisy, max(10.0, memory), sim_time=self.clock.now())
