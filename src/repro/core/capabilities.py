"""Framework capability matrix (Table 2 of the paper).

Table 2 compares BCFL, HBFL, ChainFL and UnifyFL along four axes: whether the
framework is single-level or hierarchical, cross-device or cross-silo, which
orchestration modes it supports, and whether aggregators are free to pick
their own scoring / aggregation behaviour.  The UnifyFL row is *derived from
this codebase* (by introspecting the implemented orchestrators and policies)
so the benchmark that regenerates Table 2 cannot silently drift from the
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class FrameworkCapabilities:
    """One row of Table 2."""

    name: str
    fl_structure: str  # "single-level" or "hierarchical"
    fl_type: str  # "cross-device" or "cross-silo"
    orchestration: List[str]  # supported orchestration modes
    flexible_policies: bool


def unifyfl_capabilities() -> FrameworkCapabilities:
    """UnifyFL's row, derived from the implemented components."""
    from repro.core.orchestrator import AsyncOrchestrator, SyncOrchestrator
    from repro.core.policies import available_aggregation_policies, available_scoring_policies

    modes = sorted({SyncOrchestrator.mode, AsyncOrchestrator.mode})
    flexible = len(available_aggregation_policies()) > 1 and len(available_scoring_policies()) > 1
    return FrameworkCapabilities(
        name="UnifyFL",
        fl_structure="hierarchical",
        fl_type="cross-silo",
        orchestration=modes,
        flexible_policies=flexible,
    )


def related_work_capabilities() -> List[FrameworkCapabilities]:
    """The comparison rows for BCFL, HBFL and ChainFL as reported by the paper."""
    return [
        FrameworkCapabilities("BCFL", "single-level", "cross-device", ["sync"], False),
        FrameworkCapabilities("HBFL", "hierarchical", "cross-silo", ["sync"], False),
        FrameworkCapabilities("ChainFL", "hierarchical", "cross-device", ["sync"], False),
    ]


def capability_table() -> List[FrameworkCapabilities]:
    """All rows of Table 2 (related work plus UnifyFL)."""
    return related_work_capabilities() + [unifyfl_capabilities()]


def format_capability_table() -> str:
    """Render Table 2 as text."""
    rows = capability_table()
    header = f"{'Framework':<10}{'FL':<14}{'Type':<14}{'Orchestration':<16}{'Flexibility':<12}"
    lines = [header, "-" * len(header)]
    for row in rows:
        orchestration = " and ".join(m.capitalize() for m in sorted(row.orchestration))
        lines.append(
            f"{row.name:<10}{row.fl_structure:<14}{row.fl_type:<14}"
            f"{orchestration:<16}{'Flexible' if row.flexible_policies else 'None':<12}"
        )
    return "\n".join(lines)


def sync_async_comparison() -> Dict[str, Dict[str, str]]:
    """The qualitative orchestration-mode comparison of Table 3.

    The paper compares Sync and Async; the ``semi`` column extends the table
    with the bounded-staleness mode added by this reproduction (rounds close
    on a submission quorum or a staleness bound).
    """
    return {
        "training_phase_start": {"sync": "together", "async": "independent", "semi": "independent"},
        "scoring_phase_start": {"sync": "together", "async": "independent", "semi": "independent"},
        "awaits_all_weights": {"sync": "yes", "async": "no", "semi": "quorum only"},
        "straggler_impact": {"sync": "high", "async": "low", "semi": "bounded"},
        "access_to_all_weights": {"sync": "necessarily", "async": "not necessarily", "semi": "not necessarily"},
        "idle_time": {"sync": "high", "async": "low", "semi": "bounded"},
        "weight_similarity_scoring": {"sync": "supported", "async": "not supported", "semi": "not supported"},
    }
