"""Experiment configuration dataclasses.

These mirror the configuration dimensions of the paper's evaluation:
workload (Table 4), data partitioning (IID / Dirichlet NIID with α),
orchestration mode (Sync / Async), per-aggregator aggregation strategy
(FedAvg / FedYogi), per-aggregator aggregation policy, scoring algorithm
(accuracy / MultiKRUM) and the testbed (GPU cluster / edge cluster).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sched.actors import REPLICA_SELECTIONS
from repro.sched.registry import validate_mode_config
from repro.simnet.replication import REPLICATION_MODES
from repro.simnet.hardware import (
    DOCKER_CONTAINER,
    EDGE_CPU_NODE,
    GPU_NODE,
    JETSON_NANO,
    RASPBERRY_PI_400,
    HardwareProfile,
)


@dataclass
class WorkloadConfig:
    """One row of the paper's Table 4 (scaled to the simulation substrate)."""

    name: str
    model: str
    dataset: str
    num_classes: int
    image_size: int = 16
    learning_rate: float = 0.01
    rounds: int = 100
    local_epochs: int = 2
    batch_size: int = 5
    samples_per_class: int = 100
    test_samples_per_class: int = 20
    #: reference parameter count used for timing (the paper's model size).
    reference_parameters: int = 62_000
    #: nominal number of training samples each client of the *paper's* testbed
    #: holds; drives the timing model, not the actual (scaled) training data.
    nominal_samples_per_client: int = 2_000
    #: nominal number of evaluation samples a scorer runs per candidate model.
    nominal_test_samples: int = 1_000

    def __post_init__(self) -> None:
        if self.rounds <= 0 or self.local_epochs <= 0 or self.batch_size <= 0:
            raise ValueError("rounds, local_epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.nominal_samples_per_client <= 0 or self.nominal_test_samples <= 0:
            raise ValueError("nominal sample counts must be positive")


def cifar10_workload(
    rounds: int = 20,
    samples_per_class: int = 60,
    image_size: int = 16,
    learning_rate: float = 0.01,
) -> WorkloadConfig:
    """The CIFAR-10 / CNN edge workload of Table 4 (scaled).

    ``learning_rate`` defaults to the paper's 0.01; the scaled-down synthetic
    substrate converges in far fewer rounds with 0.05, which the benchmarks use
    to reproduce the paper's accuracy *shape* within their round budget.
    """
    return WorkloadConfig(
        name="cifar10-cnn",
        model="simple_cnn",
        dataset="cifar10",
        num_classes=10,
        image_size=image_size,
        learning_rate=learning_rate,
        rounds=rounds,
        local_epochs=2,
        batch_size=5,
        samples_per_class=samples_per_class,
        test_samples_per_class=max(10, samples_per_class // 4),
        reference_parameters=62_000,
        nominal_samples_per_client=2_000,
        nominal_test_samples=1_000,
    )


def tiny_imagenet_workload(
    rounds: int = 10,
    samples_per_class: int = 30,
    num_classes: int = 20,
    image_size: int = 16,
    learning_rate: float = 0.01,
) -> WorkloadConfig:
    """The Tiny-ImageNet / VGG16 GPU workload of Table 4 (scaled).

    ``learning_rate`` defaults to the paper's 0.01; benchmarks may raise it so
    the scaled substrate converges within a small round budget.
    """
    return WorkloadConfig(
        name="tiny-imagenet-vgg",
        model="mini_vgg",
        dataset="tiny_imagenet",
        num_classes=num_classes,
        image_size=image_size,
        learning_rate=learning_rate,
        rounds=rounds,
        local_epochs=2,
        batch_size=8,
        samples_per_class=samples_per_class,
        test_samples_per_class=max(5, samples_per_class // 4),
        reference_parameters=138_000_000,
        nominal_samples_per_client=8_000,
        nominal_test_samples=2_000,
    )


def majority_quorum(num_clusters: int) -> int:
    """The default semi-sync quorum: a strict majority of the clusters."""
    return num_clusters // 2 + 1


def validate_semi_params(
    quorum_k: Optional[int], max_staleness: Optional[float], num_clusters: int
) -> None:
    """Shared bounds check for the semi-sync knobs (single source of truth).

    ``None`` values are skipped — config-level validation passes through
    unresolved optionals, while the orchestrator validates resolved values.
    """
    if quorum_k is not None and not 1 <= quorum_k <= num_clusters:
        raise ValueError("quorum_k must be between 1 and the number of clusters")
    if max_staleness is not None and max_staleness <= 0:
        raise ValueError("max_staleness must be positive")


@dataclass
class ClusterConfig:
    """Configuration of one participating FL cluster (aggregator + its clients)."""

    name: str
    num_clients: int = 3
    strategy: str = "fedavg"
    aggregation_policy: str = "all"
    policy_k: int = 2
    scoring_policy: str = "mean"
    aggregator_profile: HardwareProfile = EDGE_CPU_NODE
    client_profile: HardwareProfile = DOCKER_CONTAINER
    malicious: bool = False
    attack: str = "sign_flip"
    #: when set, this organisation's clients privatise their updates with the
    #: Gaussian DP mechanism (clip to this L2 norm, add calibrated noise).
    dp_clip_norm: Optional[float] = None
    dp_noise_multiplier: float = 0.0
    #: probability that the organisation is up for a given round (fault
    #: injection); 1.0 means it never drops out.
    availability: float = 1.0

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if self.policy_k <= 0:
            raise ValueError("policy_k must be positive")
        if self.dp_clip_norm is not None and self.dp_clip_norm <= 0:
            raise ValueError("dp_clip_norm must be positive when set")
        if self.dp_noise_multiplier < 0:
            raise ValueError("dp_noise_multiplier must be non-negative")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")


@dataclass
class ExperimentConfig:
    """Everything needed to run one UnifyFL experiment end to end."""

    name: str
    workload: WorkloadConfig
    clusters: List[ClusterConfig]
    #: orchestration mode, validated against the round-policy registry
    #: (:func:`repro.sched.registry.registered_modes`) — "sync", "async",
    #: "semi", "hierarchical" and "gossip" are built in.
    mode: str = "sync"
    partitioning: str = "dirichlet"  # "iid", "dirichlet" or "shard"
    dirichlet_alpha: float = 0.5
    #: "accuracy" / "loss" work in every mode; "multikrum" / "cosine" are
    #: similarity-based and therefore Sync-only (they need the whole round).
    scoring_algorithm: str = "accuracy"
    rounds: int = 10
    seed: int = 0
    #: fixed per-phase duration in simulated seconds for Sync mode; ``None``
    #: means the orchestrator waits for the slowest aggregator (adaptive barrier).
    phase_duration: Optional[float] = None
    #: semi mode: how many clusters must submit before the round closes;
    #: ``None`` means a majority (N // 2 + 1).
    semi_quorum_k: Optional[int] = None
    #: semi mode: simulated seconds after which an open round closes even
    #: without a quorum; ``None`` provisions one expected sync training window.
    max_staleness: Optional[float] = None
    #: hierarchical mode: cheap LAN-priced local aggregation rounds each
    #: site group runs per global round.
    local_rounds_per_global: int = 2
    #: hierarchical mode: cap on the total local training rounds each
    #: cluster contributes across the run (``None`` = unbounded).  An
    #: exhausted cluster keeps receiving group models but trains no further.
    round_budget: Optional[int] = None
    #: gossip mode: peers each cluster exchanges models with per round
    #: (0 = fully isolated training).
    gossip_fanout: int = 2
    block_period: float = 2.0
    #: sample resource usage for the Table 7 overhead report.
    monitor_resources: bool = True
    #: attach the simulation sanitizer (:mod:`repro.analysis.sanitizer`):
    #: read-only invariant checks on the kernel, the link scheduler and the
    #: communication fabric.  Never perturbs the timeline — a sanitized run
    #: is bit-identical to an unsanitized one (CLI ``--sanitize``).
    sanitize: bool = False
    #: model network transfers and contract calls as first-class event streams
    #: (link contention + block-interval/consensus chain delays) instead of
    #: per-interaction constants.  On by default since the hot-path
    #: acceleration pass; set ``False`` (CLI ``--no-event-streams``) for the
    #: constant-cost arithmetic of the earliest releases, which stays
    #: bit-identical for a fixed seed.
    event_streams: bool = True
    #: event streams only: bandwidth cap of each cluster↔storage link, in
    #: mega**bytes** per simulated second (1 MB = 1e6 bytes); ``None`` uses
    #: the cluster's hardware profile bandwidth unchanged.
    link_bandwidth_mbytes_per_s: Optional[float] = None
    #: deprecated alias of ``link_bandwidth_mbytes_per_s`` (the unit was
    #: always megabytes/s despite the Mbps-looking name).
    link_bandwidth_mbps: Optional[float] = None
    #: event streams only: one-way latency override of every cluster↔storage
    #: link, in simulated seconds; ``None`` uses the profile latency.
    link_latency_s: Optional[float] = None
    #: event streams only: seconds between block boundaries on the chain
    #: actor's grid; ``None`` uses ``block_period``.
    block_interval: Optional[float] = None
    #: event streams only: number of storage replicas models are distributed
    #: to.  1 keeps the single shared endpoint; with more, clusters are
    #: assigned to replica sites round-robin and reach remote sites over WAN
    #: links.
    storage_replicas: int = 1
    #: event streams only: parallel transfers each storage replica can serve
    #: at once (the LinkScheduler endpoint capacity).
    replica_capacity: int = 1
    #: event streams only: how the network actor picks a replica per
    #: transfer — "affinity" (the cluster's own site) or "least-loaded"
    #: (deterministic smallest estimated completion time: backlog per
    #: capacity slot plus path wire time).
    replica_selection: str = "affinity"
    #: event streams only: how uploaded artifacts reach the other storage
    #: replicas — "eager" (origin pushes to every peer right after the
    #: upload commits), "lazy" (a download miss triggers an on-demand
    #: origin→replica fetch the downloader waits behind) or "none"
    #: (downloads are pinned to the origin replica).  Irrelevant with a
    #: single replica.
    replication_mode: str = "eager"
    #: event streams only: one-way latency of the WAN link between two
    #: replica sites, in simulated seconds.
    wan_latency_s: float = 0.05
    #: event streams only: bandwidth of the WAN link between two replica
    #: sites, in megabytes per simulated second.
    wan_bandwidth_mbytes_per_s: float = 50.0
    #: fault injection: probability that a given cluster drops out of a
    #: given round entirely (seeded, deterministic per ``(cluster, round)``;
    #: on top of any per-cluster ``availability`` draw).  0 disables churn.
    churn_rate: float = 0.0
    #: fault injection, event streams only: number of storage-replica outage
    #: episodes (dealt round-robin over the replicas, each starting at a
    #: seeded point in the run and recovering after ``outage_duration_s``).
    replica_outages: int = 0
    #: simulated seconds one replica outage lasts before scheduled recovery.
    outage_duration_s: float = 60.0
    #: fault injection, event streams only: number of pairwise WAN partition
    #: episodes between replica sites (needs ``storage_replicas >= 2``).
    wan_partitions: int = 0
    #: simulated seconds one WAN partition lasts before healing.
    partition_duration_s: float = 60.0
    #: seed of the fault plan's random streams (churn draws, outage and
    #: partition start times); ``None`` reuses the experiment ``seed``.
    fault_seed: Optional[int] = None
    #: resilience: failed transfer attempts retried (with exponential
    #: backoff) before failing over to another replica.  0 switches the
    #: resilience layer off entirely — transfers wait out faults on the
    #: link schedule instead of retrying or failing over.
    retry_max: int = 3
    #: resilience: first backoff wait in simulated seconds (attempt *n*
    #: waits ``backoff_base_s * 2**n``, plus jitter).
    backoff_base_s: float = 0.5
    #: resilience: uniform jitter fraction applied to each backoff wait
    #: (deterministic, seeded).
    backoff_jitter: float = 0.1
    #: resilience: consecutive failures that trip a replica's circuit
    #: breaker from closed to open.
    breaker_threshold: int = 3
    #: resilience: simulated seconds an open breaker fails fast before
    #: admitting one half-open trial.
    breaker_cooldown_s: float = 60.0
    #: cross-device scale: total number of *virtual* clusters in the
    #: federation.  ``None`` (the default) runs the classic cross-silo shape
    #: where every entry of ``clusters`` materialises up front.  When set,
    #: ``clusters`` become round-robin templates for the virtual population
    #: and only the per-round sampled cohort materialises actors, models and
    #: datasets — peak memory is O(cohort), not O(population).
    population: Optional[int] = None
    #: sampled mode: absolute cohort size drawn each round.  Exactly one of
    #: ``clients_per_round`` / ``sample_fraction`` must be set with
    #: ``population``.
    clients_per_round: Optional[int] = None
    #: sampled mode: cohort size as a fraction of the population in (0, 1].
    sample_fraction: Optional[float] = None
    #: seed of the per-round cohort draw (keyed ``[seed, round]`` so draws
    #: are independent of policy call order); ``None`` reuses the experiment
    #: ``seed``.  Kept separate from ``fault_seed`` so sampling never shifts
    #: the churn Bernoulli stream.
    sampling_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.partitioning not in ("iid", "dirichlet", "shard"):
            raise ValueError("partitioning must be 'iid', 'dirichlet' or 'shard'")
        if self.scoring_algorithm not in ("accuracy", "loss", "multikrum", "cosine"):
            raise ValueError(
                "scoring_algorithm must be 'accuracy', 'loss', 'multikrum' or 'cosine'"
            )
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if not self.clusters:
            raise ValueError("at least one cluster is required")
        if len({c.name for c in self.clusters}) != len(self.clusters):
            raise ValueError("cluster names must be unique")
        if self.population is None:
            if self.clients_per_round is not None or self.sample_fraction is not None:
                raise ValueError(
                    "clients_per_round / sample_fraction need population to be set"
                )
            if self.sampling_seed is not None:
                raise ValueError("sampling_seed needs population to be set")
        else:
            if self.population < 1:
                raise ValueError("population must be at least 1")
            if (self.clients_per_round is None) == (self.sample_fraction is None):
                raise ValueError(
                    "sampled mode needs exactly one of clients_per_round or sample_fraction"
                )
            if self.clients_per_round is not None and not (
                1 <= self.clients_per_round <= self.population
            ):
                raise ValueError("clients_per_round must be in [1, population]")
            if self.sample_fraction is not None and not 0.0 < self.sample_fraction <= 1.0:
                raise ValueError("sample_fraction must be in (0, 1]")
        # Semi-sync quorum bounds check against the per-round federation size:
        # the cohort in sampled mode, the static cluster list otherwise.
        validate_semi_params(
            self.semi_quorum_k, self.max_staleness, self.cohort_size or len(self.clusters)
        )
        if self.local_rounds_per_global < 1:
            raise ValueError("local_rounds_per_global must be at least 1")
        if self.round_budget is not None and self.round_budget < 1:
            raise ValueError("round_budget must be at least 1 when set")
        if self.gossip_fanout < 0:
            raise ValueError("gossip_fanout must be non-negative")
        if self.link_bandwidth_mbps is not None:  # detlint: ignore[UNIT003] (alias shim)
            warnings.warn(
                "link_bandwidth_mbps is deprecated (the unit is megabytes/s); "
                "use link_bandwidth_mbytes_per_s",
                DeprecationWarning,
                stacklevel=2,
            )
            if self.link_bandwidth_mbytes_per_s is None:
                self.link_bandwidth_mbytes_per_s = self.link_bandwidth_mbps  # detlint: ignore[UNIT003]
        if self.link_bandwidth_mbytes_per_s is not None and self.link_bandwidth_mbytes_per_s <= 0:
            raise ValueError("link_bandwidth_mbytes_per_s must be positive when set")
        if self.link_latency_s is not None and self.link_latency_s < 0:
            raise ValueError("link_latency_s must be non-negative when set")
        if self.block_interval is not None and self.block_interval <= 0:
            raise ValueError("block_interval must be positive when set")
        if self.storage_replicas < 1:
            raise ValueError("storage_replicas must be at least 1")
        if self.replica_capacity < 1:
            raise ValueError("replica_capacity must be at least 1")
        if self.replica_selection not in REPLICA_SELECTIONS:
            raise ValueError(f"replica_selection must be one of {REPLICA_SELECTIONS}")
        if self.replication_mode not in REPLICATION_MODES:
            raise ValueError(f"replication_mode must be one of {REPLICATION_MODES}")
        if self.wan_latency_s < 0:
            raise ValueError("wan_latency_s must be non-negative")
        if self.wan_bandwidth_mbytes_per_s <= 0:
            raise ValueError("wan_bandwidth_mbytes_per_s must be positive")
        if not 0.0 <= self.churn_rate < 1.0:
            raise ValueError("churn_rate must be in [0, 1)")
        if self.replica_outages < 0:
            raise ValueError("replica_outages must be non-negative")
        if self.outage_duration_s <= 0:
            raise ValueError("outage_duration_s must be positive")
        if self.wan_partitions < 0:
            raise ValueError("wan_partitions must be non-negative")
        if self.partition_duration_s <= 0:
            raise ValueError("partition_duration_s must be positive")
        if self.replica_outages > 0 and not self.event_streams:
            raise ValueError("replica outages need event_streams=True (link-level faults)")
        if self.wan_partitions > 0:
            if not self.event_streams:
                raise ValueError("WAN partitions need event_streams=True (link-level faults)")
            if self.storage_replicas < 2:
                raise ValueError("WAN partitions need at least two storage replicas")
        if self.retry_max < 0:
            raise ValueError("retry_max must be non-negative")
        if self.backoff_base_s <= 0:
            raise ValueError("backoff_base_s must be positive")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be positive")
        # Mode validation is registry-driven: an unknown mode fails here,
        # at construction, with the list of registered names — and each
        # mode's own validate hook rejects configurations it cannot run
        # (e.g. similarity scoring outside sync).
        validate_mode_config(self)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def has_faults(self) -> bool:
        """True when this configuration injects any faults at all."""
        return self.churn_rate > 0 or self.replica_outages > 0 or self.wan_partitions > 0

    @property
    def has_sampling(self) -> bool:
        """True when the run samples a per-round cohort from a virtual population."""
        return self.population is not None

    @property
    def cohort_size(self) -> Optional[int]:
        """Resolved per-round cohort size, or ``None`` in the cross-silo shape."""
        if self.population is None:
            return None
        if self.clients_per_round is not None:
            return self.clients_per_round
        assert self.sample_fraction is not None
        return max(1, min(self.population, int(round(self.sample_fraction * self.population))))


def gpu_cluster_configs(
    num_clusters: int = 4,
    num_clients: int = 3,
    strategies: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[Tuple[str, int]]] = None,
    scoring_policies: Optional[Sequence[str]] = None,
) -> List[ClusterConfig]:
    """Cluster configs matching the paper's homogeneous 4-node GPU testbed."""
    clusters: List[ClusterConfig] = []
    for i in range(num_clusters):
        strategy = strategies[i] if strategies else "fedavg"
        policy, k = policies[i] if policies else ("all", 2)
        scoring_policy = scoring_policies[i] if scoring_policies else "mean"
        clusters.append(
            ClusterConfig(
                name=f"agg{i + 1}",
                num_clients=num_clients,
                strategy=strategy,
                aggregation_policy=policy,
                policy_k=k,
                scoring_policy=scoring_policy,
                aggregator_profile=GPU_NODE,
                client_profile=GPU_NODE,
            )
        )
    return clusters


def edge_cluster_configs(num_clients: int = 3, policy: str = "top_k", policy_k: int = 2) -> List[ClusterConfig]:
    """Cluster configs matching the paper's heterogeneous 3-node edge testbed.

    Each aggregator runs on a CPU node; its clients are homogeneous within a
    cluster but differ across clusters (Raspberry Pi 400, Jetson Nano, Docker),
    as described in Section 4.1.
    """
    client_profiles = [RASPBERRY_PI_400, JETSON_NANO, DOCKER_CONTAINER]
    clusters: List[ClusterConfig] = []
    for i, profile in enumerate(client_profiles):
        clusters.append(
            ClusterConfig(
                name=f"agg{i + 1}",
                num_clients=num_clients,
                strategy="fedavg",
                aggregation_policy=policy,
                policy_k=policy_k,
                scoring_policy="mean",
                aggregator_profile=EDGE_CPU_NODE,
                client_profile=profile,
            )
        )
    return clusters
