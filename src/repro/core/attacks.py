"""Byzantine / model-poisoning attacks (Section 5 Q2 and Figure 7).

A malicious aggregator participates in the protocol normally but submits
poisoned model weights.  The attacks implemented here are the standard ones
studied in the Byzantine-FL literature and sufficient to reproduce the
naive-versus-smart-policy comparison of Figure 7:

* ``sign_flip`` — submit the negated weights (gradient-ascent style attack).
* ``gaussian_noise`` — replace weights with large random noise.
* ``scaling`` — scale the weights by a large factor, dominating naive averages.
* ``zero`` — submit all-zero weights (a lazy free-rider).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

Weights = List[np.ndarray]


class ModelPoisoningAttack:
    """Base class: transform honest weights into a poisoned submission."""

    name = "attack"

    def poison(self, weights: Weights, rng: Optional[np.random.Generator] = None) -> Weights:
        raise NotImplementedError


class SignFlipAttack(ModelPoisoningAttack):
    """Negate every parameter, pushing the global model away from convergence."""

    name = "sign_flip"

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def poison(self, weights: Weights, rng: Optional[np.random.Generator] = None) -> Weights:
        return [-self.scale * w for w in weights]


class GaussianNoiseAttack(ModelPoisoningAttack):
    """Replace the model with Gaussian noise of a chosen magnitude."""

    name = "gaussian_noise"

    def __init__(self, noise_scale: float = 1.0):
        if noise_scale <= 0:
            raise ValueError("noise_scale must be positive")
        self.noise_scale = noise_scale

    def poison(self, weights: Weights, rng: Optional[np.random.Generator] = None) -> Weights:
        rng = rng or np.random.default_rng(0)
        return [rng.normal(scale=self.noise_scale, size=w.shape) for w in weights]


class ScalingAttack(ModelPoisoningAttack):
    """Scale the model by a large factor so it dominates unweighted averages."""

    name = "scaling"

    def __init__(self, factor: float = 10.0):
        if factor == 0:
            raise ValueError("factor must be non-zero")
        self.factor = factor

    def poison(self, weights: Weights, rng: Optional[np.random.Generator] = None) -> Weights:
        return [self.factor * w for w in weights]


class ZeroAttack(ModelPoisoningAttack):
    """Submit all-zero weights (free-riding / nullifying contribution)."""

    name = "zero"

    def poison(self, weights: Weights, rng: Optional[np.random.Generator] = None) -> Weights:
        return [np.zeros_like(w) for w in weights]


_ATTACKS: Dict[str, Callable[..., ModelPoisoningAttack]] = {
    "sign_flip": SignFlipAttack,
    "gaussian_noise": GaussianNoiseAttack,
    "scaling": ScalingAttack,
    "zero": ZeroAttack,
}


def build_attack(name: str, **kwargs) -> ModelPoisoningAttack:
    """Construct an attack by name."""
    key = name.lower()
    if key not in _ATTACKS:
        raise ValueError(f"unknown attack '{name}'; available: {sorted(_ATTACKS)}")
    return _ATTACKS[key](**kwargs)


def available_attacks() -> List[str]:
    """Names accepted by :func:`build_attack`."""
    return sorted(_ATTACKS)
