"""Model scoring algorithms (Section 2.6 of the paper).

Two scorers are implemented, matching the paper's implementation:

* :class:`AccuracyScorer` — evaluate the candidate model on the scorer's own
  held-out test set; the score is the accuracy.  Works in both Sync and Async
  modes (and is the paper's default for exactly that reason) but is the more
  computationally expensive option.
* :class:`MultiKRUMScorer` — similarity-based scoring following Multi-KRUM
  (Blanchard et al.): a model's score is derived from the sum of squared
  distances to its closest neighbours among all models submitted in the same
  round.  Cheap to compute, but requires every model of the round at once,
  so it is only available in Sync mode.

Scores are normalised so that *higher is better* for both algorithms, which
lets the performance-based aggregation policies treat them uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.ml.models import Model
from repro.ml.tensor_utils import flatten_weights

Weights = List[np.ndarray]


class Scorer:
    """Base class for scoring algorithms."""

    name = "scorer"

    #: whether the algorithm needs every model of the round simultaneously.
    requires_full_round = False

    def score(self, weights: Weights, context: Optional[Dict] = None) -> float:
        """Score a single model (higher is better)."""
        raise NotImplementedError

    def score_round(self, round_weights: Dict[str, Weights]) -> Dict[str, float]:
        """Score every model submitted in a round (cid -> score)."""
        return {cid: self.score(w) for cid, w in round_weights.items()}


class AccuracyScorer(Scorer):
    """Score a model by its accuracy on the scorer's local test dataset."""

    name = "accuracy"
    requires_full_round = False

    def __init__(self, model_template: Model, test_data: Dataset):
        if len(test_data) == 0:
            raise ValueError("AccuracyScorer needs a non-empty test dataset")
        self._model = model_template.clone()
        self._test_data = test_data

    def score(self, weights: Weights, context: Optional[Dict] = None) -> float:
        self._model.set_weights(weights)
        _, accuracy = self._model.evaluate(self._test_data.x, self._test_data.y)
        return float(accuracy)

    @property
    def test_set_size(self) -> int:
        """Number of evaluation samples the scorer owns (drives scoring cost)."""
        return len(self._test_data)


class MultiKRUMScorer(Scorer):
    """Multi-KRUM similarity scoring over the models of one round.

    For each candidate model, compute the squared L2 distances to every other
    model of the round, sum the smallest ``n - f - 2`` of them (``f`` is the
    assumed number of Byzantine participants), and convert the sum to a
    score where smaller distance sums (models closer to the majority) rank
    higher.  Scores are mapped into (0, 1] so they are comparable with
    accuracy-based scores for the aggregation policies.
    """

    name = "multikrum"
    requires_full_round = True

    def __init__(self, byzantine_tolerance: int = 0):
        if byzantine_tolerance < 0:
            raise ValueError("byzantine_tolerance must be non-negative")
        self.byzantine_tolerance = byzantine_tolerance

    def score(self, weights: Weights, context: Optional[Dict] = None) -> float:
        if not context or "round_weights" not in context:
            raise ValueError(
                "MultiKRUM requires the full set of round models via context['round_weights']"
            )
        round_weights: Dict[str, Weights] = context["round_weights"]
        target_cid: Optional[str] = context.get("cid")
        scores = self.score_round(round_weights)
        if target_cid is not None and target_cid in scores:
            return scores[target_cid]
        # Fall back to matching by value when the CID was not supplied.
        flat_target = flatten_weights(weights)
        for cid, candidate in round_weights.items():
            if np.allclose(flatten_weights(candidate), flat_target):
                return scores[cid]
        raise ValueError("the model being scored is not part of the provided round")

    def score_round(self, round_weights: Dict[str, Weights]) -> Dict[str, float]:
        if not round_weights:
            return {}
        cids = sorted(round_weights)
        vectors = np.stack([flatten_weights(round_weights[c]) for c in cids])
        n = len(cids)
        if n == 1:
            return {cids[0]: 1.0}
        # Pairwise squared distances.
        diffs = vectors[:, None, :] - vectors[None, :, :]
        sq_dists = (diffs**2).sum(axis=2)
        closest = max(1, n - self.byzantine_tolerance - 2)
        krum_sums = np.empty(n)
        for i in range(n):
            others = np.delete(sq_dists[i], i)
            others.sort()
            krum_sums[i] = others[: min(closest, len(others))].sum()
        # Smaller distance sum -> higher score, mapped into (0, 1].
        scale = krum_sums.max()
        if scale <= 0:
            return {cid: 1.0 for cid in cids}
        scores = 1.0 - (krum_sums / (scale * (1.0 + 1e-9)))
        # Keep strictly positive so "above zero" style policies behave sensibly.
        scores = 0.01 + 0.99 * scores
        return {cid: float(s) for cid, s in zip(cids, scores)}


class LossScorer(Scorer):
    """Score a model by the inverse of its loss on the scorer's test dataset.

    Like accuracy-based scoring, this works in both Sync and Async modes and
    needs a local evaluation set; unlike accuracy it stays informative when
    accuracy saturates (early rounds near the random-guess floor, or late
    rounds near the ceiling).  The loss is mapped to ``1 / (1 + loss)`` so
    higher is better and the range is (0, 1], comparable with the other
    scorers.
    """

    name = "loss"
    requires_full_round = False

    def __init__(self, model_template: Model, test_data: Dataset):
        if len(test_data) == 0:
            raise ValueError("LossScorer needs a non-empty test dataset")
        self._model = model_template.clone()
        self._test_data = test_data

    def score(self, weights: Weights, context: Optional[Dict] = None) -> float:
        self._model.set_weights(weights)
        loss, _ = self._model.evaluate(self._test_data.x, self._test_data.y)
        return float(1.0 / (1.0 + max(loss, 0.0)))


class CosineSimilarityScorer(Scorer):
    """Score a model by its mean cosine similarity to the other round models.

    A cheap similarity-based alternative to MultiKRUM: an honest model points
    in roughly the same direction as the honest majority, while a poisoned
    (sign-flipped, scaled or random) model does not.  Like MultiKRUM it needs
    every model of the round at once and is therefore Sync-only.  Scores are
    mapped from [-1, 1] into [0, 1].
    """

    name = "cosine"
    requires_full_round = True

    def score(self, weights: Weights, context: Optional[Dict] = None) -> float:
        if not context or "round_weights" not in context:
            raise ValueError(
                "cosine scoring requires the full set of round models via context['round_weights']"
            )
        round_weights: Dict[str, Weights] = context["round_weights"]
        target_cid: Optional[str] = context.get("cid")
        scores = self.score_round(round_weights)
        if target_cid is not None and target_cid in scores:
            return scores[target_cid]
        flat_target = flatten_weights(weights)
        for cid, candidate in round_weights.items():
            if np.allclose(flatten_weights(candidate), flat_target):
                return scores[cid]
        raise ValueError("the model being scored is not part of the provided round")

    def score_round(self, round_weights: Dict[str, Weights]) -> Dict[str, float]:
        if not round_weights:
            return {}
        cids = sorted(round_weights)
        vectors = np.stack([flatten_weights(round_weights[c]) for c in cids])
        norms = np.linalg.norm(vectors, axis=1)
        norms[norms == 0] = 1.0
        unit = vectors / norms[:, None]
        similarity = unit @ unit.T
        n = len(cids)
        if n == 1:
            return {cids[0]: 1.0}
        scores = {}
        for i, cid in enumerate(cids):
            others = np.delete(similarity[i], i)
            scores[cid] = float((others.mean() + 1.0) / 2.0)
        return scores


def build_scorer(
    name: str,
    model_template: Optional[Model] = None,
    test_data: Optional[Dataset] = None,
    byzantine_tolerance: int = 0,
) -> Scorer:
    """Construct a scorer by name (``accuracy``, ``loss``, ``multikrum`` or ``cosine``)."""
    key = name.lower()
    if key == "accuracy":
        if model_template is None or test_data is None:
            raise ValueError("accuracy scoring requires a model template and a test dataset")
        return AccuracyScorer(model_template, test_data)
    if key == "loss":
        if model_template is None or test_data is None:
            raise ValueError("loss scoring requires a model template and a test dataset")
        return LossScorer(model_template, test_data)
    if key == "multikrum":
        return MultiKRUMScorer(byzantine_tolerance=byzantine_tolerance)
    if key == "cosine":
        return CosineSimilarityScorer()
    raise ValueError(f"unknown scoring algorithm '{name}'")
