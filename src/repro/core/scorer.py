"""Model scoring algorithms (Section 2.6 of the paper).

Two scorers are implemented, matching the paper's implementation:

* :class:`AccuracyScorer` — evaluate the candidate model on the scorer's own
  held-out test set; the score is the accuracy.  Works in both Sync and Async
  modes (and is the paper's default for exactly that reason) but is the more
  computationally expensive option.
* :class:`MultiKRUMScorer` — similarity-based scoring following Multi-KRUM
  (Blanchard et al.): a model's score is derived from the sum of squared
  distances to its closest neighbours among all models submitted in the same
  round.  Cheap to compute, but requires every model of the round at once,
  so it is only available in Sync mode.

Scores are normalised so that *higher is better* for both algorithms, which
lets the performance-based aggregation policies treat them uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.ml.models import Model
from repro.ml.tensor_utils import flatten_weights

Weights = List[np.ndarray]


class Scorer:
    """Base class for scoring algorithms."""

    name = "scorer"

    #: whether the algorithm needs every model of the round simultaneously.
    requires_full_round = False

    def score(self, weights: Weights, context: Optional[Dict] = None) -> float:
        """Score a single model (higher is better)."""
        raise NotImplementedError

    def score_round(self, round_weights: Dict[str, Weights]) -> Dict[str, float]:
        """Score every model submitted in a round (cid -> score)."""
        return {cid: self.score(w) for cid, w in round_weights.items()}


class AccuracyScorer(Scorer):
    """Score a model by its accuracy on the scorer's local test dataset."""

    name = "accuracy"
    requires_full_round = False

    def __init__(self, model_template: Model, test_data: Dataset):
        if len(test_data) == 0:
            raise ValueError("AccuracyScorer needs a non-empty test dataset")
        self._model = model_template.clone()
        self._test_data = test_data

    def score(self, weights: Weights, context: Optional[Dict] = None) -> float:
        self._model.set_weights(weights)
        _, accuracy = self._model.evaluate(self._test_data.x, self._test_data.y)
        return float(accuracy)

    @property
    def test_set_size(self) -> int:
        """Number of evaluation samples the scorer owns (drives scoring cost)."""
        return len(self._test_data)


class _FullRoundScorer(Scorer):
    """Shared plumbing for similarity scorers that need the whole round.

    ``score`` used to call ``score_round`` once *per model*, so scoring a
    full round of ``n`` models recomputed the whole pairwise round analysis ``n``
    times — O(n²) flattenings and O(n³) distance work.  The fix is a
    round-keyed memo: the sorted tuple of round CIDs fingerprints the round
    (CIDs are content hashes, so identical CID sets mean identical weights),
    and a repeated ``score`` call against the same round reuses the cached
    per-CID scores instead of re-running ``score_round``.
    """

    requires_full_round = True

    #: per-class error message kept for backwards-compatible diagnostics.
    _context_error = "scoring requires the full set of round models via context['round_weights']"

    def __init__(self) -> None:
        self._round_memo: Optional[Tuple[Tuple[str, ...], Dict[str, float]]] = None

    def _round_scores(self, round_weights: Dict[str, Weights]) -> Dict[str, float]:
        fingerprint = tuple(sorted(round_weights))
        if self._round_memo is not None and self._round_memo[0] == fingerprint:
            return self._round_memo[1]
        scores = self.score_round(round_weights)
        self._round_memo = (fingerprint, scores)
        return scores

    def score(self, weights: Weights, context: Optional[Dict] = None) -> float:
        if not context or "round_weights" not in context:
            raise ValueError(self._context_error)
        round_weights: Dict[str, Weights] = context["round_weights"]
        target_cid: Optional[str] = context.get("cid")
        scores = self._round_scores(round_weights)
        if target_cid is not None and target_cid in scores:
            return scores[target_cid]
        # Fall back to matching by value when the CID was not supplied.
        flat_target = flatten_weights(weights)
        for cid, candidate in round_weights.items():
            if np.allclose(flatten_weights(candidate), flat_target):
                return scores[cid]
        raise ValueError("the model being scored is not part of the provided round")


class MultiKRUMScorer(_FullRoundScorer):
    """Multi-KRUM similarity scoring over the models of one round.

    For each candidate model, compute the squared L2 distances to every other
    model of the round, sum the smallest ``n - f - 2`` of them (``f`` is the
    assumed number of Byzantine participants), and convert the sum to a
    score where smaller distance sums (models closer to the majority) rank
    higher.  Scores are mapped into (0, 1] so they are comparable with
    accuracy-based scores for the aggregation policies.

    The per-row selection is vectorised: the diagonal of the pairwise
    distance matrix is masked with ``inf`` on a copy (self-distance is zero
    and would otherwise always win), ``np.partition`` pulls each row's ``m``
    nearest neighbours without a full sort, and a final ascending sort of
    just those ``m`` columns reproduces the reference loop's summation order
    so the result is bit-identical to :meth:`score_round_reference`.
    """

    name = "multikrum"

    _context_error = (
        "MultiKRUM requires the full set of round models via context['round_weights']"
    )

    def __init__(self, byzantine_tolerance: int = 0):
        super().__init__()
        if byzantine_tolerance < 0:
            raise ValueError("byzantine_tolerance must be non-negative")
        self.byzantine_tolerance = byzantine_tolerance

    def score_round(self, round_weights: Dict[str, Weights]) -> Dict[str, float]:
        if not round_weights:
            return {}
        cids = sorted(round_weights)
        vectors = np.stack([flatten_weights(round_weights[c]) for c in cids])
        n = len(cids)
        if n == 1:
            return {cids[0]: 1.0}
        # Pairwise squared distances.
        diffs = vectors[:, None, :] - vectors[None, :, :]
        sq_dists = (diffs**2).sum(axis=2)
        closest = max(1, n - self.byzantine_tolerance - 2)
        m = min(closest, n - 1)
        # Mask self-distances (diagonal zeros) so partition only sees peers.
        masked = sq_dists.copy()
        np.fill_diagonal(masked, np.inf)
        nearest = np.partition(masked, m - 1, axis=1)[:, :m]
        # Ascending sort of the m selected columns matches the reference
        # loop's `others.sort()` summation order, keeping sums bit-identical.
        krum_sums = np.sort(nearest, axis=1).sum(axis=1)
        return self._normalise(cids, krum_sums)

    def score_round_reference(self, round_weights: Dict[str, Weights]) -> Dict[str, float]:
        """The original per-row loop, retained as the equivalence oracle."""
        if not round_weights:
            return {}
        cids = sorted(round_weights)
        vectors = np.stack([flatten_weights(round_weights[c]) for c in cids])
        n = len(cids)
        if n == 1:
            return {cids[0]: 1.0}
        diffs = vectors[:, None, :] - vectors[None, :, :]
        sq_dists = (diffs**2).sum(axis=2)
        closest = max(1, n - self.byzantine_tolerance - 2)
        krum_sums = np.empty(n)
        for i in range(n):
            others = np.delete(sq_dists[i], i)
            others.sort()
            krum_sums[i] = others[: min(closest, len(others))].sum()
        return self._normalise(cids, krum_sums)

    @staticmethod
    def _normalise(cids: List[str], krum_sums: np.ndarray) -> Dict[str, float]:
        # Smaller distance sum -> higher score, mapped into (0, 1].
        scale = krum_sums.max()
        if scale <= 0:
            return {cid: 1.0 for cid in cids}
        scores = 1.0 - (krum_sums / (scale * (1.0 + 1e-9)))
        # Keep strictly positive so "above zero" style policies behave sensibly.
        scores = 0.01 + 0.99 * scores
        return {cid: float(s) for cid, s in zip(cids, scores)}


class LossScorer(Scorer):
    """Score a model by the inverse of its loss on the scorer's test dataset.

    Like accuracy-based scoring, this works in both Sync and Async modes and
    needs a local evaluation set; unlike accuracy it stays informative when
    accuracy saturates (early rounds near the random-guess floor, or late
    rounds near the ceiling).  The loss is mapped to ``1 / (1 + loss)`` so
    higher is better and the range is (0, 1], comparable with the other
    scorers.
    """

    name = "loss"
    requires_full_round = False

    def __init__(self, model_template: Model, test_data: Dataset):
        if len(test_data) == 0:
            raise ValueError("LossScorer needs a non-empty test dataset")
        self._model = model_template.clone()
        self._test_data = test_data

    def score(self, weights: Weights, context: Optional[Dict] = None) -> float:
        self._model.set_weights(weights)
        loss, _ = self._model.evaluate(self._test_data.x, self._test_data.y)
        return float(1.0 / (1.0 + max(loss, 0.0)))


class CosineSimilarityScorer(_FullRoundScorer):
    """Score a model by its mean cosine similarity to the other round models.

    A cheap similarity-based alternative to MultiKRUM: an honest model points
    in roughly the same direction as the honest majority, while a poisoned
    (sign-flipped, scaled or random) model does not.  Like MultiKRUM it needs
    every model of the round at once and is therefore Sync-only.  Scores are
    mapped from [-1, 1] into [0, 1].

    The mean-of-others loop is vectorised by masking the diagonal of the
    similarity matrix and reshaping to ``(n, n - 1)`` before a row-wise
    mean.  Note this deliberately does NOT use the row-sum identity
    ``(row_sum - 1) / (n - 1)``: subtracting the self-similarity from an
    accumulated row sum changes the floating-point summation order and is
    not bit-identical to the reference ``np.delete(...).mean()`` loop,
    whereas the masked reshape preserves the exact operand order.
    """

    name = "cosine"

    _context_error = (
        "cosine scoring requires the full set of round models via context['round_weights']"
    )

    def score_round(self, round_weights: Dict[str, Weights]) -> Dict[str, float]:
        if not round_weights:
            return {}
        cids = sorted(round_weights)
        similarity = self._similarity_matrix(round_weights, cids)
        n = len(cids)
        if n == 1:
            return {cids[0]: 1.0}
        mask = ~np.eye(n, dtype=bool)
        means = similarity[mask].reshape(n, n - 1).mean(axis=1)
        return {cid: float((mean + 1.0) / 2.0) for cid, mean in zip(cids, means)}

    def score_round_reference(self, round_weights: Dict[str, Weights]) -> Dict[str, float]:
        """The original per-row loop, retained as the equivalence oracle."""
        if not round_weights:
            return {}
        cids = sorted(round_weights)
        similarity = self._similarity_matrix(round_weights, cids)
        n = len(cids)
        if n == 1:
            return {cids[0]: 1.0}
        scores = {}
        for i, cid in enumerate(cids):
            others = np.delete(similarity[i], i)
            scores[cid] = float((others.mean() + 1.0) / 2.0)
        return scores

    @staticmethod
    def _similarity_matrix(round_weights: Dict[str, Weights], cids: List[str]) -> np.ndarray:
        vectors = np.stack([flatten_weights(round_weights[c]) for c in cids])
        norms = np.linalg.norm(vectors, axis=1)
        norms[norms == 0] = 1.0
        unit = vectors / norms[:, None]
        return unit @ unit.T


def build_scorer(
    name: str,
    model_template: Optional[Model] = None,
    test_data: Optional[Dataset] = None,
    byzantine_tolerance: int = 0,
) -> Scorer:
    """Construct a scorer by name (``accuracy``, ``loss``, ``multikrum`` or ``cosine``)."""
    key = name.lower()
    if key == "accuracy":
        if model_template is None or test_data is None:
            raise ValueError("accuracy scoring requires a model template and a test dataset")
        return AccuracyScorer(model_template, test_data)
    if key == "loss":
        if model_template is None or test_data is None:
            raise ValueError("loss scoring requires a model template and a test dataset")
        return LossScorer(model_template, test_data)
    if key == "multikrum":
        return MultiKRUMScorer(byzantine_tolerance=byzantine_tolerance)
    if key == "cosine":
        return CosineSimilarityScorer()
    raise ValueError(f"unknown scoring algorithm '{name}'")
