"""End-to-end experiment runner.

:class:`ExperimentRunner` wires every substrate together from an
:class:`~repro.core.config.ExperimentConfig`:

1. generate the workload's synthetic dataset and partition it — first across
   clusters (IID or Dirichlet non-IID), then across each cluster's clients;
2. stand up the private chain (one validator account per organisation), deploy
   the UnifyFL contract, and start one IPFS node per organisation joined into
   a swarm;
3. build the clusters: clients, scorer, strategy, policies, optional attack;
4. drive the federation with the orchestrator the round-policy registry
   builds for the configured mode (sync / async / semi / hierarchical /
   gossip, plus anything registered downstream); and
5. collect an :class:`~repro.core.results.ExperimentResult` with per-aggregator
   metrics, chain/storage overhead counters and the resource report.

The same runner also exposes the paper's baselines over identical data so
benchmark comparisons are apples to apples.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.sanitizer import SimulationSanitizer
from repro.chain.account import Account
from repro.chain.blockchain import Blockchain
from repro.core.aggregator import UnifyFLAggregator
from repro.core.attacks import build_attack
from repro.core.baselines import (
    BaselineResult,
    CentralizedMultilevelBaseline,
    NoCollabBaseline,
    SingleLevelFL,
)
from repro.core.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.core.contract import UnifyFLContract
from repro.core.orchestrator import OrchestrationResult
from repro.core.results import AggregatorResult, ExperimentResult
from repro.core.sampling import ClientSampler
from repro.core.scorer import build_scorer
from repro.core.timing import ClusterTimingModel
from repro.datasets.partition import DirichletPartitioner, IIDPartitioner, ShardPartitioner
from repro.datasets.synthetic import Dataset, SyntheticCIFAR10, SyntheticTinyImageNet
from repro.chain.clique import consensus_delay
from repro.fl.client import Client, ClientConfig
from repro.ipfs.swarm import IPFSSwarm
from repro.ml.models import Model, build_model
from repro.sched.actors import STORAGE_ENDPOINT, ChainActor, CommFabric, NetworkActor
from repro.sched.registry import PolicyBuildContext, get_policy
from repro.simnet.faults import FaultPlan, ResiliencePolicy
from repro.simnet.network import NetworkLink, Topology
from repro.simnet.resources import ResourceMonitor

#: constant daemon footprints reported in Section 4.2.7.
GETH_CPU_PERCENT = 0.2
GETH_MEMORY_MB = 6.0
IPFS_CPU_PERCENT = 3.5
IPFS_MEMORY_MB = 19.0


class ClientPopulation:
    """Lazy virtual-cluster factory over a sampled federation's population.

    The population itself is only a number (``config.population``); what
    exists in memory is the set of virtual clusters some round's cohort has
    actually drawn.  ``round_aggregators`` materialises a round's cohort on
    first request (clients, models, IPFS node, contract registration) and
    memoises both the cohort and every member, so a cluster re-sampled in a
    later round is reused with its clock and history intact.  Peak memory is
    therefore O(distinct sampled clusters), not O(population).

    Cohorts come from :class:`~repro.core.sampling.ClientSampler`, so *who*
    participates in round ``r`` is a pure function of ``(sampling_seed, r)``
    — independent of materialisation order and of any other RNG stream.
    """

    def __init__(self, runner: "ExperimentRunner"):
        config = runner.config
        assert config.population is not None and config.cohort_size is not None
        self.runner = runner
        self.population_size = config.population
        self.cohort_size = config.cohort_size
        seed = config.sampling_seed if config.sampling_seed is not None else config.seed
        self.sampler = ClientSampler(config.population, self.cohort_size, seed)
        self._by_index: Dict[int, UnifyFLAggregator] = {}
        self._rounds: Dict[int, List[UnifyFLAggregator]] = {}

    @property
    def materialized_count(self) -> int:
        """Number of distinct virtual clusters built so far."""
        return len(self._by_index)

    def cohort_indices(self, round_number: int) -> Tuple[int, ...]:
        """The virtual-cluster indices drawn for a round (no materialisation)."""
        return self.sampler.cohort(round_number)

    def round_aggregators(self, round_number: int) -> List[UnifyFLAggregator]:
        """The round's cohort as live aggregators, materialising on demand."""
        cached = self._rounds.get(round_number)
        if cached is not None:
            return cached
        members = [self._materialise(i) for i in self.sampler.cohort(round_number)]
        self._rounds[round_number] = members
        return members

    def addresses(self, round_number: int) -> List[str]:
        """The chain addresses of a round's cohort."""
        return [a.address for a in self.round_aggregators(round_number)]

    def _materialise(self, index: int) -> UnifyFLAggregator:
        existing = self._by_index.get(index)
        if existing is not None:
            return existing
        aggregator = self.runner._materialise_virtual_cluster(index)
        self._by_index[index] = aggregator
        return aggregator


class ExperimentRunner:
    """Builds and runs one UnifyFL experiment from its configuration."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.monitor = ResourceMonitor() if config.monitor_resources else None

        self.train_data, self.test_data = self._build_dataset(config.workload, config.seed)
        self.model_template = self._build_model(config.workload, config.seed)
        self.timing_model = ClusterTimingModel(
            config.workload, block_period=config.block_period, seed=config.seed
        )

        (
            self.cluster_train_data,
            self.cluster_client_data,
            self.cluster_score_data,
        ) = self._partition_data()

        self.accounts: Dict[str, Account] = {}
        self.chain: Optional[Blockchain] = None
        self.swarm: Optional[IPFSSwarm] = None
        self.aggregators: List[UnifyFLAggregator] = []
        self._driver_account: Optional[Account] = None
        #: shared network/chain event-stream fabric (``event_streams=True`` only).
        self.comm: Optional[CommFabric] = None
        #: the run's deterministic fault schedule (``None`` unless the
        #: configuration injects churn, outages or partitions).
        self.fault_plan: Optional[FaultPlan] = None
        #: read-only invariant checker (``config.sanitize=True`` only),
        #: created in :meth:`build` and hooked into the kernel, the link
        #: scheduler and the fabric.
        self.sanitizer: Optional[SimulationSanitizer] = None
        #: sampled federations only: the lazy virtual-cluster factory
        #: (created in :meth:`build` when ``config.population`` is set).
        self.population: Optional[ClientPopulation] = None

    # ------------------------------------------------------------------- data
    @staticmethod
    def _build_dataset(workload: WorkloadConfig, seed: int) -> Tuple[Dataset, Dataset]:
        if workload.dataset == "cifar10":
            factory = SyntheticCIFAR10(
                image_size=workload.image_size,
                samples_per_class=workload.samples_per_class,
                test_samples_per_class=workload.test_samples_per_class,
                seed=seed,
            )
        elif workload.dataset == "tiny_imagenet":
            factory = SyntheticTinyImageNet(
                num_classes=workload.num_classes,
                image_size=workload.image_size,
                samples_per_class=workload.samples_per_class,
                test_samples_per_class=workload.test_samples_per_class,
                seed=seed,
            )
        else:
            raise ValueError(f"unknown dataset '{workload.dataset}'")
        return factory.splits()

    @staticmethod
    def _build_model(workload: WorkloadConfig, seed: int) -> Model:
        kwargs = {
            "image_size": workload.image_size,
            "num_classes": workload.num_classes,
            "seed": seed,
        }
        return build_model(workload.model, **kwargs)

    def _cluster_partitioner(self, num_partitions: int):
        if self.config.partitioning == "iid":
            return IIDPartitioner(num_partitions, seed=self.config.seed)
        if self.config.partitioning == "dirichlet":
            return DirichletPartitioner(
                num_partitions,
                alpha=self.config.dirichlet_alpha,
                min_samples=max(4, self.config.workload.batch_size),
                seed=self.config.seed,
            )
        return ShardPartitioner(num_partitions, seed=self.config.seed)

    def _partition_data(self):
        """Split the training data across clusters, clients and scorer test sets."""
        clusters = self.config.clusters
        cluster_partitioner = self._cluster_partitioner(len(clusters))
        cluster_train = cluster_partitioner.partition(self.train_data)

        cluster_train_data: Dict[str, Dataset] = {}
        cluster_client_data: Dict[str, List[Dataset]] = {}
        cluster_score_data: Dict[str, Dataset] = {}

        # Scorer test sets: an IID slice of the held-out test data per cluster,
        # modelling each organisation's private evaluation set.
        score_partitioner = IIDPartitioner(len(clusters), seed=self.config.seed + 17)
        score_parts = score_partitioner.partition(self.test_data)

        for i, cluster in enumerate(clusters):
            data = cluster_train[i]
            cluster_train_data[cluster.name] = data
            client_partitioner = IIDPartitioner(cluster.num_clients, seed=self.config.seed + 100 + i)
            cluster_client_data[cluster.name] = client_partitioner.partition(data)
            cluster_score_data[cluster.name] = score_parts[i]
        return cluster_train_data, cluster_client_data, cluster_score_data

    # ------------------------------------------------------------------ setup
    def _build_clients(
        self,
        cluster: ClusterConfig,
        index: int,
        partitions: Optional[List[Dataset]] = None,
    ) -> List[Client]:
        workload = self.config.workload
        client_config = ClientConfig(
            local_epochs=workload.local_epochs,
            batch_size=workload.batch_size,
            learning_rate=workload.learning_rate,
            optimizer="sgd",
            seed=self.config.seed + index,
            dp_clip_norm=cluster.dp_clip_norm,
            dp_noise_multiplier=cluster.dp_noise_multiplier,
        )
        if partitions is None:
            partitions = self.cluster_client_data[cluster.name]
        clients = []
        for j, partition in enumerate(partitions):
            clients.append(
                Client(
                    client_id=f"{cluster.name}-client{j}",
                    model=self.model_template.clone(),
                    train_data=partition,
                    config=client_config,
                )
            )
        return clients

    def _replica_names(self) -> List[str]:
        """The storage replica endpoint names the event-stream layout declares."""
        if self.config.storage_replicas == 1:
            return [STORAGE_ENDPOINT]
        return [f"{STORAGE_ENDPOINT}-{i}" for i in range(self.config.storage_replicas)]

    def _build_fault_plan(self) -> Optional[FaultPlan]:
        """Generate the run's fault schedule, or ``None`` with faults disabled.

        A disabled configuration (the default) builds no plan at all, so the
        fault branches in scheduler/actor/aggregator never execute — the
        strongest possible bit-identity guarantee.  Outage and partition
        start times are drawn within an a-priori makespan estimate (rounds ×
        expected training + scoring windows) so they land while traffic is
        actually flowing.
        """
        config = self.config
        if not config.has_faults:
            return None
        horizon = config.rounds * (
            self.timing_model.expected_training_window(config.clusters)
            + self.timing_model.expected_scoring_window(
                config.clusters, config.scoring_algorithm
            )
        )
        return FaultPlan.from_config(config, self._replica_names(), horizon)

    def _cluster_link(self, cluster: ClusterConfig) -> NetworkLink:
        """The LAN link a cluster's aggregator profile implies (config-capped)."""
        profile = cluster.aggregator_profile
        bandwidth_mbytes_per_s = profile.bandwidth_mbytes_per_s
        if self.config.link_bandwidth_mbytes_per_s is not None:
            bandwidth_mbytes_per_s = min(
                bandwidth_mbytes_per_s, self.config.link_bandwidth_mbytes_per_s
            )
        latency_s = profile.latency_s
        if self.config.link_latency_s is not None:
            latency_s = self.config.link_latency_s
        return NetworkLink.from_mbytes_per_s(
            latency_s=latency_s,
            bandwidth_mbytes_per_s=bandwidth_mbytes_per_s,
        )

    def _build_comm_fabric(self) -> Optional[CommFabric]:
        """Stand up the event-stream fabric when the experiment asks for one.

        The storage layout is a :class:`~repro.simnet.network.Topology`:
        ``storage_replicas`` replica sites (each serving ``replica_capacity``
        parallel transfers), clusters assigned to sites round-robin over a LAN
        link with their aggregator profile's latency/bandwidth (optionally
        capped by ``link_bandwidth_mbytes_per_s`` / overridden by
        ``link_latency_s``), and WAN links between sites
        (``wan_latency_s`` / ``wan_bandwidth_mbytes_per_s``).  With one
        replica of capacity 1 this degenerates to the single serial
        :data:`~repro.sched.actors.STORAGE_ENDPOINT` of earlier releases,
        bit-identically: an *uncontended* transfer costs exactly what the
        constant model charged — only queueing and chain quantisation add
        time on top.

        With several replicas, replication is on the books: an upload lands
        on one site only and ``replication_mode`` (eager / lazy / none)
        governs how — and whether — the artifact reaches the others, as real
        WAN transfers downloads are availability-gated on (the aggregators
        thread IPFS CIDs through the fabric for this).
        """
        config = self.config
        if not config.event_streams:
            return None
        topology = Topology(
            default_wan_link=NetworkLink.from_mbytes_per_s(
                latency_s=config.wan_latency_s,
                bandwidth_mbytes_per_s=config.wan_bandwidth_mbytes_per_s,
            )
        )
        num_replicas = config.storage_replicas
        replica_names = self._replica_names()
        for name in replica_names:
            topology.add_replica(name, capacity=config.replica_capacity)
        if not config.has_sampling:
            # Sampled federations attach cluster endpoints lazily as their
            # virtual clusters materialise (NetworkActor.attach_cluster).
            for i, cluster in enumerate(config.clusters):
                topology.add_cluster(
                    cluster.name,
                    replica_names[i % num_replicas],
                    self._cluster_link(cluster),
                )
        network_actor = NetworkActor(
            topology=topology,
            model_bytes=self.timing_model.nominal_model_bytes,
            selection=config.replica_selection,
            replication_mode=config.replication_mode,
            faults=self.fault_plan,
            resilience=ResiliencePolicy(
                retry_max=config.retry_max,
                backoff_base_s=config.backoff_base_s,
                backoff_jitter=config.backoff_jitter,
                breaker_threshold=config.breaker_threshold,
                breaker_cooldown_s=config.breaker_cooldown_s,
            ),
            resilience_seed=config.seed,
        )
        # ``is not None`` rather than truthiness: an explicit block_interval of
        # 0 is rejected by config validation, but the same falsy-zero trap bit
        # the sync windows once already — don't leave it armed here.
        if config.block_interval is not None:
            block_interval = config.block_interval
        else:
            block_interval = config.block_period
        # Consensus scales with the organisations active at once: the static
        # cluster count, or — sampled — the per-round cohort size.
        organisations = config.cohort_size if config.has_sampling else len(config.clusters)
        chain_actor = ChainActor(
            block_interval=block_interval,
            consensus_delay=consensus_delay(organisations, block_interval),
        )
        return CommFabric(network_actor, chain_actor)

    def build(self) -> None:
        """Instantiate the chain, storage swarm and every aggregator.

        Sampled federations (``config.population`` set) build the shared
        substrates but materialise no clusters up front: a
        :class:`ClientPopulation` creates each round's cohort lazily, so
        peak memory is O(active cohort) instead of O(population).
        """
        clusters = self.config.clusters
        if self.config.has_sampling:
            self._driver_account = Account.create(
                label="driver", seed=self.config.seed * 1000 + 999
            )
            self.accounts = {}
            # The driver seals blocks alone: virtual clusters come and go
            # per round, so none of them can be a standing validator.
            self.chain = Blockchain([self._driver_account], block_period=self.config.block_period)
        else:
            self.accounts = {
                cluster.name: Account.create(label=cluster.name, seed=self.config.seed * 1000 + i)
                for i, cluster in enumerate(clusters)
            }
            self._driver_account = Account.create(label="driver", seed=self.config.seed * 1000 + 999)
            validators = list(self.accounts.values())
            self.chain = Blockchain(validators, block_period=self.config.block_period)
            self.chain.register_account(self._driver_account)
        self.chain.deploy_contract(
            UnifyFLContract(mode=self.config.mode, scorer_seed=self.config.seed)
        )
        self.swarm = IPFSSwarm()
        self.fault_plan = self._build_fault_plan()
        self.comm = self._build_comm_fabric()
        if self.config.sanitize:
            self.sanitizer = SimulationSanitizer()
            if self.comm is not None:
                self.comm.sanitizer = self.sanitizer
                self.comm.network.scheduler.sanitizer = self.sanitizer
        if self.comm is not None:
            # Chain-side emission hook: every sealed block feeds the chain
            # actor's observed-block counters for the comm report.
            self.chain.add_block_listener(self.comm.chain.observe_block)

        self.aggregators = []
        if self.config.has_sampling:
            self.population = ClientPopulation(self)
            # Materialise round 1's cohort eagerly so the orchestrator's
            # constructor sees a non-empty aggregator list; later rounds
            # materialise on demand from the round policies.
            self.population.round_aggregators(1)
            return
        for i, cluster in enumerate(clusters):
            self.aggregators.append(
                self._materialise_cluster(
                    cluster,
                    account=self.accounts[cluster.name],
                    score_data=self.cluster_score_data[cluster.name],
                    seed=self.config.seed + i,
                    client_index=i,
                )
            )

    def _materialise_cluster(
        self,
        cluster: ClusterConfig,
        account: Account,
        score_data: Dataset,
        seed: int,
        client_index: int,
        client_partitions: Optional[List[Dataset]] = None,
        streaming_aggregation: bool = False,
    ) -> UnifyFLAggregator:
        """Stand up one cluster: IPFS node, clients, scorer, aggregator."""
        assert self.chain is not None and self.swarm is not None
        node = self.swarm.create_node(f"{cluster.name}-ipfs")
        clients = self._build_clients(cluster, client_index, partitions=client_partitions)
        scorer = build_scorer(
            self.config.scoring_algorithm,
            model_template=self.model_template,
            test_data=score_data,
        )
        attack = build_attack(cluster.attack) if cluster.malicious else None
        return UnifyFLAggregator(
            config=cluster,
            workload=self.config.workload,
            account=account,
            chain=self.chain,
            ipfs_node=node,
            model_template=self.model_template,
            clients=clients,
            scorer=scorer,
            eval_data=self.test_data,
            timing_model=self.timing_model,
            attack=attack,
            resource_monitor=self.monitor,
            comm=self.comm,
            seed=seed,
            faults=self.fault_plan,
            streaming_aggregation=streaming_aggregation,
        )

    def _materialise_virtual_cluster(self, index: int) -> UnifyFLAggregator:
        """Create virtual cluster ``index`` of a sampled population.

        The virtual cluster clones the template at ``index % len(clusters)``
        (round-robin over the configured cluster shapes), draws its own
        account/aggregator/client seeds from ranges disjoint from the eager
        path's, re-partitions the template's data shard for its clients, and
        registers itself on the contract and — when event streams are on —
        the communication fabric.  Streaming aggregation is enabled so a
        large cohort aggregates in O(1) model-sized buffers.
        """
        assert self.chain is not None
        config = self.config
        templates = config.clusters
        template = templates[index % len(templates)]
        cluster = dataclasses.replace(template, name=f"{template.name}-p{index}")
        account = Account.create(
            label=cluster.name, seed=config.seed * 1000 + 1000 + index
        )
        self.accounts[cluster.name] = account
        self.chain.register_account(account)
        client_partitioner = IIDPartitioner(
            cluster.num_clients, seed=config.seed + 100 + index
        )
        partitions = client_partitioner.partition(self.cluster_train_data[template.name])
        aggregator = self._materialise_cluster(
            cluster,
            account=account,
            score_data=self.cluster_score_data[template.name],
            seed=config.seed + 1000 + index,
            client_index=1000 + index,
            client_partitions=partitions,
            streaming_aggregation=True,
        )
        if self.comm is not None:
            replica_names = self._replica_names()
            self.comm.network.attach_cluster(
                cluster.name,
                replica_names[index % config.storage_replicas],
                self._cluster_link(cluster),
            )
        aggregator.register(mine=True)
        self.aggregators.append(aggregator)
        return aggregator

    # --------------------------------------------------------------------- run
    def run(self, rounds: Optional[int] = None) -> ExperimentResult:
        """Execute the experiment and return its result."""
        if self.chain is None or not self.aggregators:
            self.build()
        assert self.chain is not None and self._driver_account is not None
        rounds = rounds or self.config.rounds

        orchestrator = self._build_orchestrator()
        orchestrator.sanitizer = self.sanitizer
        orchestration = orchestrator.run(rounds)
        self._record_daemon_overhead(rounds)
        return self._collect_result(orchestration, rounds)

    def run_profiled(
        self, rounds: Optional[int] = None, top: int = 25, sort: str = "cumulative"
    ) -> Tuple[ExperimentResult, str]:
        """Execute the experiment under ``cProfile``.

        Returns the result plus the profiler's top-``top`` functions by
        ``sort`` order (default cumulative time) as printable text — the
        profiling workflow behind ``repro run --profile`` and documented in
        ``docs/performance.md``.
        """
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = self.run(rounds=rounds)
        finally:
            profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.strip_dirs().sort_stats(sort).print_stats(top)
        return result, buffer.getvalue()

    def _build_orchestrator(self):
        """Dispatch the configured mode through the round-policy registry.

        No hard-coded mode ladder: the registered spec's factory receives
        one :class:`~repro.sched.registry.PolicyBuildContext` and builds the
        orchestrator itself, so new modes plug in without runner edits.
        """
        assert self.chain is not None and self._driver_account is not None
        build = PolicyBuildContext(
            chain=self.chain,
            driver=self._driver_account,
            aggregators=self.aggregators,
            timing=self.timing_model,
            comm=self.comm,
            config=self.config,
            population=self.population,
        )
        return get_policy(self.config.mode).factory(build)

    def _record_daemon_overhead(self, rounds: int) -> None:
        if self.monitor is None:
            return
        for _ in range(max(1, rounds)):
            for _ in self.aggregators:
                self.monitor.record("geth", GETH_CPU_PERCENT + self._rng.normal(0, 0.03), GETH_MEMORY_MB + self._rng.normal(0, 0.4))
                self.monitor.record("ipfs", IPFS_CPU_PERCENT + self._rng.normal(0, 0.3), IPFS_MEMORY_MB + self._rng.normal(0, 1.2))

    def _collect_result(self, orchestration: OrchestrationResult, rounds: int) -> ExperimentResult:
        assert self.chain is not None and self.swarm is not None
        aggregator_results = []
        for aggregator in self.aggregators:
            record = aggregator.final_record
            aggregator_results.append(
                AggregatorResult(
                    name=aggregator.name,
                    policy=self._policy_label(aggregator.config),
                    strategy=aggregator.config.strategy,
                    total_time=aggregator.total_time(),
                    global_accuracy=record.global_accuracy if record else float("nan"),
                    global_loss=record.global_loss if record else float("nan"),
                    local_accuracy=record.local_accuracy if record else float("nan"),
                    local_loss=record.local_loss if record else float("nan"),
                    idle_time=orchestration.idle_times.get(aggregator.name, 0.0),
                    straggler_count=orchestration.straggler_counts.get(aggregator.name, 0),
                    history=list(aggregator.history),
                )
            )
        storage_metrics = {
            "stored_bytes": float(self.swarm.total_stored_bytes()),
            "transferred_bytes": float(self.swarm.total_transferred_bytes()),
            "transfer_count": float(len(self.swarm.transfers)),
        }
        resource_reports = self.monitor.full_report() if self.monitor and len(self.monitor) else {}
        comm_metrics = self.comm.summary() if self.comm is not None else {}
        if self.fault_plan is not None and self.comm is None:
            # Constant-cost path with churn enabled: no fabric exists, but the
            # drop accounting still belongs in the exported metrics.
            comm_metrics["dropped_clients"] = float(self.fault_plan.dropped_clients)
        sampling: Dict[str, float] = {}
        if self.population is not None:
            sampling = {
                "population": float(self.population.population_size),
                "clients_per_round": float(self.population.cohort_size),
                "sampling_seed": float(self.population.sampler.seed),
                "materialized_clusters": float(self.population.materialized_count),
            }
        return ExperimentResult(
            name=self.config.name,
            mode=self.config.mode,
            scoring_algorithm=self.config.scoring_algorithm,
            partitioning=self._partition_label(),
            rounds=rounds,
            aggregators=aggregator_results,
            chain_metrics=self.chain.metrics.as_dict(),
            storage_metrics=storage_metrics,
            resource_reports=resource_reports,
            orchestration_extras=dict(orchestration.extras),
            comm_metrics=comm_metrics,
            sampling=sampling,
        )

    def _policy_label(self, cluster: ClusterConfig) -> str:
        label = cluster.aggregation_policy
        if label in ("top_k", "random_k"):
            label = f"{label}({cluster.policy_k})"
        return f"{label}/{cluster.scoring_policy}"

    def _partition_label(self) -> str:
        if self.config.partitioning == "dirichlet":
            return f"niid(alpha={self.config.dirichlet_alpha})"
        return self.config.partitioning

    # --------------------------------------------------------------- baselines
    def _baseline_clients(self) -> Dict[str, List[Client]]:
        return {
            cluster.name: self._build_clients(cluster, i)
            for i, cluster in enumerate(self.config.clusters)
        }

    def run_no_collab_baseline(self, rounds: Optional[int] = None) -> BaselineResult:
        """Run the non-collaborative baseline over the same partitions."""
        baseline = NoCollabBaseline(
            self.config.workload,
            self.config.clusters,
            self._baseline_clients(),
            self.model_template,
            self.test_data,
            timing_model=self.timing_model,
        )
        return baseline.run(rounds or self.config.rounds, seed=self.config.seed)

    def run_centralized_baseline(self, rounds: Optional[int] = None) -> BaselineResult:
        """Run the HBFL-style centralized multilevel baseline."""
        baseline = CentralizedMultilevelBaseline(
            self.config.workload,
            self.config.clusters,
            self._baseline_clients(),
            self.model_template,
            self.test_data,
            timing_model=self.timing_model,
        )
        return baseline.run(rounds or self.config.rounds, seed=self.config.seed)

    def run_single_level_baseline(self, rounds: Optional[int] = None) -> BaselineResult:
        """Run flat single-level FL over all clients of all clusters."""
        all_clients: List[Client] = []
        for i, cluster in enumerate(self.config.clusters):
            all_clients.extend(self._build_clients(cluster, i))
        baseline = SingleLevelFL(
            self.config.workload, all_clients, self.model_template, self.test_data
        )
        return baseline.run(rounds or self.config.rounds, seed=self.config.seed)


def run_experiment(config: ExperimentConfig, rounds: Optional[int] = None) -> ExperimentResult:
    """One-call convenience wrapper: build and run an experiment."""
    runner = ExperimentRunner(config)
    return runner.run(rounds=rounds)
