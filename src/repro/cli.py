"""Command-line interface for running UnifyFL experiments.

A downstream user can reproduce an experiment or explore configurations
without writing Python::

    python -m repro.cli run --workload cifar10 --mode async --rounds 6 \
        --clusters 3 --clients 3 --partitioning dirichlet --alpha 0.5 \
        --policy top_k --policy-k 2 --json-out result.json

    python -m repro.cli run --mode semi --semi-quorum-k 2 --max-staleness 60 \
        --workload cifar10 --rounds 6                            # semi-sync (quorum/staleness)

    python -m repro.cli run --mode async --event-streams \
        --link-bandwidth 10 --block-interval 2                   # contended I/O + chain delays

    python -m repro.cli run --mode hierarchical --event-streams \
        --storage-replicas 2 --local-rounds-per-global 2         # per-site local rounds + leaders

    python -m repro.cli run --mode gossip --gossip-fanout 2      # barrier-free peer exchanges

    python -m repro.cli run --population 100000 --clients-per-round 128 \
        --mode sync --rounds 5                                   # sampled cross-device cohorts

    python -m repro.cli compare --workload cifar10 --rounds 6   # sync vs async vs semi vs baselines
    python -m repro.cli policies                                 # list available policies and modes

The ``--mode`` choices come straight from the round-policy registry
(:mod:`repro.sched.registry`): registering a new policy makes it runnable
from here with no CLI changes.

The same entry point is installed as the ``repro`` console script
(``pip install -e .`` then ``repro run --mode semi ...``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.config import (
    ClusterConfig,
    ExperimentConfig,
    cifar10_workload,
    edge_cluster_configs,
    gpu_cluster_configs,
    tiny_imagenet_workload,
)
from repro.analysis.cli import add_lint_parser, command_lint
from repro.core.policies import available_aggregation_policies, available_scoring_policies
from repro.core.reporting import save_result_json, save_results_csv
from repro.core.results import (
    format_comm_table,
    format_comparison,
    format_policy_table,
    format_resource_table,
    format_run_table,
)
from repro.core.runner import ExperimentRunner
from repro.sched.actors import REPLICA_SELECTIONS
from repro.sched.registry import get_policy, registered_modes
from repro.simnet.replication import REPLICATION_MODES


def _build_workload(args: argparse.Namespace):
    if args.workload == "cifar10":
        return cifar10_workload(
            rounds=args.rounds,
            samples_per_class=args.samples_per_class,
            image_size=args.image_size,
            learning_rate=args.learning_rate,
        )
    return tiny_imagenet_workload(
        rounds=args.rounds,
        samples_per_class=args.samples_per_class,
        num_classes=args.num_classes,
        image_size=args.image_size,
        learning_rate=args.learning_rate,
    )


def _build_clusters(args: argparse.Namespace) -> List[ClusterConfig]:
    if args.testbed == "edge":
        clusters = edge_cluster_configs(num_clients=args.clients, policy=args.policy, policy_k=args.policy_k)
        return clusters[: args.clusters] if args.clusters <= len(clusters) else clusters
    return gpu_cluster_configs(
        num_clusters=args.clusters,
        num_clients=args.clients,
        policies=[(args.policy, args.policy_k)] * args.clusters,
        scoring_policies=[args.scoring_policy] * args.clusters,
    )


def _build_config(args: argparse.Namespace, name: str, mode: Optional[str] = None) -> ExperimentConfig:
    return ExperimentConfig(
        name=name,
        workload=_build_workload(args),
        clusters=_build_clusters(args),
        mode=mode or args.mode,
        partitioning=args.partitioning,
        dirichlet_alpha=args.alpha,
        scoring_algorithm=args.scoring,
        rounds=args.rounds,
        seed=args.seed,
        phase_duration=args.phase_duration,
        semi_quorum_k=args.semi_quorum_k,
        max_staleness=args.max_staleness,
        local_rounds_per_global=args.local_rounds_per_global,
        round_budget=args.round_budget,
        gossip_fanout=args.gossip_fanout,
        block_period=args.block_period,
        monitor_resources=args.monitor_resources,
        event_streams=args.event_streams,
        link_bandwidth_mbytes_per_s=args.link_bandwidth_mbytes_per_s,
        link_latency_s=args.link_latency_s,
        block_interval=args.block_interval,
        storage_replicas=args.storage_replicas,
        replica_capacity=args.replica_capacity,
        replica_selection=args.replica_selection,
        replication_mode=args.replication_mode,
        wan_latency_s=args.wan_latency_s,
        wan_bandwidth_mbytes_per_s=args.wan_bandwidth_mbytes_per_s,
        churn_rate=args.churn_rate,
        replica_outages=args.replica_outages,
        outage_duration_s=args.outage_duration_s,
        wan_partitions=args.wan_partitions,
        partition_duration_s=args.partition_duration_s,
        fault_seed=args.fault_seed,
        retry_max=args.retry_max,
        backoff_base_s=args.backoff_base_s,
        backoff_jitter=args.backoff_jitter,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        sanitize=args.sanitize,
        population=args.population,
        clients_per_round=args.clients_per_round,
        sample_fraction=args.sample_fraction,
        sampling_seed=args.sampling_seed,
    )


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=["cifar10", "tiny_imagenet"], default="cifar10")
    parser.add_argument("--testbed", choices=["edge", "gpu"], default="edge")
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--clusters", type=int, default=3, help="number of organisations")
    parser.add_argument("--clients", type=int, default=3, help="clients per organisation")
    parser.add_argument("--partitioning", choices=["iid", "dirichlet", "shard"], default="dirichlet")
    parser.add_argument("--alpha", type=float, default=0.5, help="Dirichlet concentration for NIID splits")
    parser.add_argument("--policy", default="top_k", help="aggregation policy for every organisation")
    parser.add_argument("--policy-k", type=int, default=2, dest="policy_k")
    parser.add_argument("--scoring-policy", default="mean", dest="scoring_policy")
    parser.add_argument("--scoring", choices=["accuracy", "loss", "multikrum", "cosine"], default="accuracy")
    parser.add_argument("--samples-per-class", type=int, default=24, dest="samples_per_class")
    parser.add_argument("--image-size", type=int, default=8, dest="image_size")
    parser.add_argument("--num-classes", type=int, default=10, dest="num_classes")
    parser.add_argument("--learning-rate", type=float, default=0.05, dest="learning_rate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--phase-duration", type=float, default=None, dest="phase_duration",
        help="sync mode: fixed per-phase duration in simulated seconds "
        "(default: adaptive — the orchestrator waits for the slowest aggregator)",
    )
    parser.add_argument(
        "--block-period", type=float, default=2.0, dest="block_period",
        help="simulated seconds between chain blocks in the constant-cost "
        "timing model (event streams use --block-interval)",
    )
    parser.add_argument(
        "--monitor-resources", action=argparse.BooleanOptionalAction,
        dest="monitor_resources", default=True,
        help="sample resource usage for the Table-7-style overhead report "
        "(disable with --no-monitor-resources)",
    )
    parser.add_argument(
        "--semi-quorum-k", type=int, default=None, dest="semi_quorum_k",
        help="semi mode: clusters that must submit before a round closes (default: majority)",
    )
    parser.add_argument(
        "--max-staleness", type=float, default=None, dest="max_staleness",
        help="semi mode: simulated seconds before an open round closes without quorum",
    )
    parser.add_argument(
        "--local-rounds-per-global", type=int, default=2, dest="local_rounds_per_global",
        help="hierarchical mode: cheap LAN-priced local aggregation rounds each site "
        "group runs per global round",
    )
    parser.add_argument(
        "--round-budget", type=int, default=None, dest="round_budget",
        help="hierarchical mode: cap on the total local training rounds each cluster "
        "contributes across the run (default: unbounded)",
    )
    parser.add_argument(
        "--gossip-fanout", type=int, default=2, dest="gossip_fanout",
        help="gossip mode: peers each cluster exchanges models with per round "
        "(0 = fully isolated training)",
    )
    parser.add_argument(
        "--event-streams", action=argparse.BooleanOptionalAction, dest="event_streams",
        default=True,
        help="model network transfers and contract calls as contended event streams "
        "(link queueing + block-interval/consensus chain delays); on by default, "
        "disable with --no-event-streams for the constant-cost timing model",
    )
    parser.add_argument(
        "--link-bandwidth", type=float, default=None, dest="link_bandwidth_mbytes_per_s",
        help="event streams: cap each cluster's storage link at this many megabytes "
        "(not megabits) per simulated second (default: the hardware profile's bandwidth)",
    )
    parser.add_argument(
        "--link-latency", type=float, default=None, dest="link_latency_s",
        help="event streams: override the one-way storage-link latency in seconds",
    )
    parser.add_argument(
        "--block-interval", type=float, default=None, dest="block_interval",
        help="event streams: seconds between chain block boundaries (default: the "
        "experiment's block period)",
    )
    parser.add_argument(
        "--storage-replicas", type=int, default=1, dest="storage_replicas",
        help="event streams: number of storage replica sites (default 1: the single "
        "shared endpoint); clusters are assigned to sites round-robin",
    )
    parser.add_argument(
        "--replica-capacity", type=int, default=1, dest="replica_capacity",
        help="event streams: parallel transfers each storage replica serves at once",
    )
    parser.add_argument(
        "--replica-selection", choices=list(REPLICA_SELECTIONS), default="affinity",
        dest="replica_selection",
        help="event streams: replica picked per transfer — the cluster's own site "
        "(affinity) or the deterministically least-loaded one",
    )
    parser.add_argument(
        "--replication-mode", choices=list(REPLICATION_MODES), default="eager",
        dest="replication_mode",
        help="event streams: how uploads reach the other storage replicas — pushed "
        "to every peer right after the upload (eager), fetched on demand when a "
        "download misses (lazy), or never (none: downloads are pinned to the "
        "origin replica)",
    )
    parser.add_argument(
        "--wan-latency", type=float, default=0.05, dest="wan_latency_s",
        help="event streams: one-way latency of the WAN link between replica sites, "
        "in seconds",
    )
    parser.add_argument(
        "--wan-bandwidth", type=float, default=50.0, dest="wan_bandwidth_mbytes_per_s",
        help="event streams: bandwidth of the WAN link between replica sites, in "
        "megabytes (not megabits) per simulated second",
    )
    parser.add_argument(
        "--churn-rate", type=float, default=0.0, dest="churn_rate",
        help="fault injection: probability a given cluster drops out of a given "
        "round (seeded, deterministic; default 0 = no churn)",
    )
    parser.add_argument(
        "--replica-outages", type=int, default=0, dest="replica_outages",
        help="fault injection (event streams): storage-replica outage episodes, "
        "dealt round-robin over the replicas at seeded start times",
    )
    parser.add_argument(
        "--outage-duration", type=float, default=60.0, dest="outage_duration_s",
        help="fault injection: simulated seconds one replica outage lasts before "
        "its scheduled recovery",
    )
    parser.add_argument(
        "--wan-partitions", type=int, default=0, dest="wan_partitions",
        help="fault injection (event streams): pairwise WAN partition episodes "
        "between replica sites (needs --storage-replicas >= 2)",
    )
    parser.add_argument(
        "--partition-duration", type=float, default=60.0, dest="partition_duration_s",
        help="fault injection: simulated seconds one WAN partition lasts before healing",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None, dest="fault_seed",
        help="seed of the fault plan's random streams (default: the experiment seed)",
    )
    parser.add_argument(
        "--retry-max", type=int, default=3, dest="retry_max",
        help="resilience: failed transfer attempts retried with backoff before "
        "failing over to another replica (0 disables retries AND failover — "
        "transfers wait out faults on the link schedule)",
    )
    parser.add_argument(
        "--backoff-base", type=float, default=0.5, dest="backoff_base_s",
        help="resilience: first backoff wait in simulated seconds (attempt n "
        "waits backoff-base * 2**n, plus jitter)",
    )
    parser.add_argument(
        "--backoff-jitter", type=float, default=0.1, dest="backoff_jitter",
        help="resilience: uniform jitter fraction applied to each backoff wait "
        "(deterministic, seeded)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=3, dest="breaker_threshold",
        help="resilience: consecutive failures that trip a replica's circuit "
        "breaker open",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=60.0, dest="breaker_cooldown_s",
        help="resilience: simulated seconds an open breaker fails fast before "
        "admitting one half-open trial",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="attach the simulation sanitizer: read-only invariant checks on "
        "the kernel, link scheduler and fabric (a sanitized run stays "
        "bit-identical; violations abort with a SanitizerViolation)",
    )
    parser.add_argument(
        "--population", type=int, default=None,
        help="cross-device scale: total virtual clusters in the federation; "
        "--clusters become round-robin templates and only each round's "
        "sampled cohort materialises (peak memory is O(cohort))",
    )
    parser.add_argument(
        "--clients-per-round", type=int, default=None, dest="clients_per_round",
        help="sampled mode: absolute cohort size drawn each round (exactly "
        "one of --clients-per-round / --sample-fraction with --population)",
    )
    parser.add_argument(
        "--sample-fraction", type=float, default=None, dest="sample_fraction",
        help="sampled mode: cohort size as a fraction of the population in (0, 1]",
    )
    parser.add_argument(
        "--sampling-seed", type=int, default=None, dest="sampling_seed",
        help="seed of the per-round cohort draw (default: the experiment "
        "seed; kept separate from --fault-seed so sampling never shifts the "
        "churn stream)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description="UnifyFL reproduction command-line interface")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one UnifyFL experiment")
    _add_common_arguments(run_parser)
    # The mode choices are derived from the round-policy registry, so a
    # newly registered policy shows up here without CLI edits.
    run_parser.add_argument("--mode", choices=registered_modes(), default="async")
    run_parser.add_argument("--json-out", default=None, help="write the full result document to this JSON file")
    run_parser.add_argument("--csv-out", default=None, help="append per-aggregator rows to this CSV file")
    run_parser.add_argument("--show-resources", action="store_true", help="print the Table-7-style resource report")
    run_parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top functions by cumulative time",
    )
    run_parser.add_argument(
        "--profile-top", type=int, default=25, dest="profile_top",
        help="number of functions the --profile report shows (default 25)",
    )

    compare_parser = subparsers.add_parser(
        "compare", help="run Sync, Async, Semi-sync and the baselines on the same data and compare"
    )
    _add_common_arguments(compare_parser)

    subparsers.add_parser("policies", help="list the available aggregation and scoring policies")

    bench_parser = subparsers.add_parser(
        "bench", help="run the perf-trajectory benchmark grid and write BENCH_sched.json"
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke grid: same benchmarks and schema, smaller sizes",
    )
    bench_parser.add_argument(
        "--profile", action="store_true",
        help="print cProfile top cumulative functions for each experiment benchmark",
    )
    bench_parser.add_argument(
        "--out", default="BENCH_sched.json",
        help="output path for the BENCH document (default: BENCH_sched.json)",
    )

    add_lint_parser(subparsers)
    return parser


def _command_run(args: argparse.Namespace) -> int:
    config = _build_config(args, name=f"cli-{args.workload}-{args.mode}")
    runner = ExperimentRunner(config)
    if args.profile:
        result, report = runner.run_profiled(top=args.profile_top)
        print(report)
    else:
        result = runner.run()
    if runner.sanitizer is not None:
        checks = runner.sanitizer.report()
        detail = ", ".join(f"{name}={checks[name]}" for name in sorted(checks))
        print(f"Sanitizer: {runner.sanitizer.total_checks} checks passed ({detail})")
        print()
    print(format_run_table(result))
    print()
    print(f"Mean global accuracy : {result.mean_global_accuracy * 100:.2f} %")
    print(f"Federation makespan  : {result.max_total_time:.0f} simulated seconds")
    if result.comm_metrics:
        print()
        print(format_comm_table(result))
    policy_table = format_policy_table(result)
    if policy_table:
        print()
        print(policy_table)
    if args.show_resources and result.resource_reports:
        print()
        print(format_resource_table(result.resource_reports))
    if args.json_out:
        path = save_result_json(result, args.json_out)
        print(f"Result written to {path}")
    if args.csv_out:
        path = save_results_csv([result], args.csv_out)
        print(f"CSV written to {path}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    sync_result = ExperimentRunner(_build_config(args, "cli-sync", mode="sync")).run()
    async_result = ExperimentRunner(_build_config(args, "cli-async", mode="async")).run()
    semi_result = ExperimentRunner(_build_config(args, "cli-semi", mode="semi")).run()
    baseline_runner = ExperimentRunner(_build_config(args, "cli-baseline", mode="sync"))
    centralized = baseline_runner.run_centralized_baseline(rounds=args.rounds)
    no_collab = baseline_runner.run_no_collab_baseline(rounds=args.rounds)

    print(
        format_comparison(
            [sync_result, async_result, semi_result],
            labels=["Sync UnifyFL", "Async UnifyFL", "Semi-sync UnifyFL"],
        )
    )
    print()
    print(f"{'Centralized multilevel (oracle)':<34}{centralized.global_accuracy * 100:>16.2f}{centralized.total_time:>14.0f}")
    isolated = max(c.accuracy for c in no_collab.clusters)
    print(f"{'Best isolated cluster (no collab)':<34}{isolated * 100:>16.2f}{no_collab.total_time:>14.0f}")
    return 0


def _command_policies(_: argparse.Namespace) -> int:
    print("Aggregation policies:", ", ".join(available_aggregation_policies()))
    print("Scoring policies    :", ", ".join(available_scoring_policies()))
    print("Orchestration modes :")
    for mode in registered_modes():
        print(f"  {mode:<14}{get_policy(mode).description}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.perf import main as bench_main

    argv: List[str] = ["--out", args.out]
    if args.quick:
        argv.append("--quick")
    if args.profile:
        argv.append("--profile")
    return bench_main(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "policies":
        return _command_policies(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "lint":
        return command_lint(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
