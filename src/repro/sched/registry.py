"""The round-policy registry: orchestration modes as pluggable plugins.

Before this module existed, adding an orchestration mode meant editing four
parallel hard-coded lists: the ``if mode == ...`` ladder in
``ExperimentRunner._build_orchestrator``, the closed mode tuple in
``ExperimentConfig`` validation, the ``--mode`` choices of the CLI and the
``MODES`` tuple of the smart contract.  The registry collapses all four into
one source of truth: a policy *registers itself* with a name, an optional
config-validation hook, a factory, and the contract-behaviour profile its
mode needs — and every consumer derives its view from the registration:

* :class:`~repro.core.runner.ExperimentRunner` dispatches through
  :func:`get_policy` and calls the spec's ``factory`` with a single
  :class:`PolicyBuildContext` (replacing the old positional ``common``
  tuple);
* :class:`~repro.core.config.ExperimentConfig` validates ``mode`` against
  :func:`registered_modes` at construction time and runs the spec's
  ``validate`` hook, so an unknown mode fails fast with the list of
  registered names instead of deep inside orchestration;
* the CLI builds its ``--mode`` choices from :func:`registered_modes`;
* :class:`~repro.core.contract.UnifyFLContract` reads the spec's
  :class:`ContractProfile` to decide whether submissions are phase-gated,
  whether scorers are assigned at submission time, and whether the semi-sync
  buffer machinery is live.

The registry itself is domain-agnostic and imports nothing from
``repro.core`` at module level (the core package imports *us*); the built-in
policies register themselves when :mod:`repro.core.orchestrator` is
imported, which :func:`_load_builtins` triggers lazily on first lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.chain.account import Account
    from repro.chain.blockchain import Blockchain
    from repro.core.aggregator import UnifyFLAggregator
    from repro.core.config import ExperimentConfig
    from repro.core.runner import ClientPopulation
    from repro.core.timing import ClusterTimingModel
    from repro.sched.actors import CommFabric


@dataclass(frozen=True)
class ContractProfile:
    """How the orchestrator contract behaves under one mode.

    The contract used to switch on hard-coded mode names; these three flags
    are the actual behavioural axes those names selected:

    Attributes:
        phase_gated: submissions/scores are only accepted inside the matching
            sync phase window, and the ``startScoring``/``endRound`` phase
            control flow is live (the sync mode).
        assigns_scorers_on_submit: scorers are sampled the moment a model CID
            lands, instead of in batch at ``startScoring`` (async, semi and
            hierarchical).  Gossip turns this off: exchanges are scored by
            nobody — each cluster judges what it merges.
        buffered: the semi-sync round buffer is live — submissions accumulate
            until ``closeSemiRound`` advances the round counter, and
            ``getSemiRoundStatus``/``configureSemiRound`` are callable.
    """

    phase_gated: bool = False
    assigns_scorers_on_submit: bool = False
    buffered: bool = False


@dataclass
class PolicyBuildContext:
    """Everything a registered policy factory gets to build its orchestrator.

    One dataclass instead of the old positional ``(chain, driver,
    aggregators, timing)`` tuple, so factories pick what they need by name
    and new fields never ripple through every call site.
    """

    chain: "Blockchain"
    driver: "Account"
    aggregators: Sequence["UnifyFLAggregator"]
    timing: "ClusterTimingModel"
    #: the event-stream communication fabric, or ``None`` for constant costs.
    comm: Optional["CommFabric"] = None
    #: the full experiment configuration; ``None`` when an orchestrator is
    #: built programmatically outside an :class:`ExperimentRunner`.
    config: Optional["ExperimentConfig"] = None
    #: the lazy virtual-cluster population of a sampled federation, or
    #: ``None`` for the classic fully-materialised cross-silo shape.  When
    #: set, ``aggregators`` is the *live* list the population appends to and
    #: holds only the clusters materialised so far (round 1's cohort at
    #: build time).
    population: Optional["ClientPopulation"] = None


@dataclass(frozen=True)
class PolicySpec:
    """One registered orchestration mode.

    Attributes:
        name: the mode string (``ExperimentConfig.mode`` / CLI ``--mode``).
        factory: builds the mode's orchestrator from a
            :class:`PolicyBuildContext`.
        description: one-line summary surfaced by CLI help and docs.
        validate: optional hook run at ``ExperimentConfig`` construction;
            raises ``ValueError`` on a configuration the mode cannot run.
        contract: the contract behaviour this mode needs.
    """

    name: str
    factory: Callable[[PolicyBuildContext], Any]
    description: str = ""
    validate: Optional[Callable[["ExperimentConfig"], None]] = None
    contract: ContractProfile = field(default_factory=ContractProfile)


#: the registry proper, in registration order (which fixes CLI choice order).
_REGISTRY: Dict[str, PolicySpec] = {}
_builtins_loaded = False


def register_policy(spec: PolicySpec) -> PolicySpec:
    """Register one round policy; duplicate names are a hard error."""
    if spec.name in _REGISTRY:
        raise ValueError(f"round policy '{spec.name}' is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_policy(name: str) -> None:
    """Remove a registration (test plumbing; built-ins should stay put)."""
    _REGISTRY.pop(name, None)


def _load_builtins() -> None:
    """Import the module that registers the built-in modes, once.

    ``repro.core.orchestrator`` registers sync/async/semi/hierarchical/gossip
    at import time; importing it lazily (function-level) keeps this module
    free of ``repro.core`` imports and therefore cycle-free.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import repro.core.orchestrator  # noqa: F401  (registers the built-ins)


def registered_modes() -> List[str]:
    """Names of every registered mode, in registration order."""
    _load_builtins()
    return list(_REGISTRY)


def get_policy(name: str) -> PolicySpec:
    """Look up one mode's spec; unknown names list what *is* registered."""
    _load_builtins()
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(f"'{mode}'" for mode in _REGISTRY)
        raise ValueError(f"unknown orchestration mode '{name}'; registered modes: {known}")
    return spec


def validate_mode_config(config: "ExperimentConfig") -> None:
    """Fail fast on an unknown mode or a config the mode cannot run."""
    spec = get_policy(config.mode)
    if spec.validate is not None:
        spec.validate(config)


def build_orchestrator(build: PolicyBuildContext) -> Any:
    """Dispatch a build context to its mode's registered factory."""
    if build.config is None:
        raise ValueError("build_orchestrator needs a PolicyBuildContext with a config")
    return get_policy(build.config.mode).factory(build)
