"""Discrete-event scheduling engine for federation orchestration.

This package turns the orchestration layer into a classic discrete-event
simulation: a :class:`~repro.sched.kernel.SimulationKernel` owns a global
simulated clock and a heap-backed event queue
(:class:`~repro.simnet.events.EventQueue`), and *round policies* decide what
happens when — lock-step phases (sync), free-running clusters (async), or
quorum/staleness-bounded rounds (semi-sync).

* :mod:`repro.sched.kernel` — the engine: event scheduling, deterministic
  ordering, O(log n) dispatch.
* :mod:`repro.sched.policies` — the five built-in round policies (sync,
  async, semi-sync, hierarchical, gossip) plus the
  :class:`~repro.sched.policies.RoundPolicy` base class for writing new ones.
* :mod:`repro.sched.registry` — the pluggable round-policy registry:
  policies register a name, a config-validation hook and a factory over one
  :class:`~repro.sched.registry.PolicyBuildContext`; runner dispatch, config
  validation, CLI mode choices and the contract's behaviour profile all
  derive from the registrations.
* :mod:`repro.sched.actors` — network and chain actors that promote model
  transfers and contract calls to first-class event streams (link contention
  over a replicated storage topology with on-the-books replication traffic —
  eager pushes, lazy fetches, availability-gated downloads — block-interval
  quantisation, Clique consensus delay), enabled per experiment with
  ``event_streams=True``.

See ``docs/scheduling.md`` and ``docs/architecture.md`` for the design and a
guide to custom policies.
"""

from repro.sched.actors import ChainActor, ChainOp, CommFabric, NetworkActor
from repro.sched.kernel import SimulationKernel
from repro.sched.policies import (
    AsyncRoundPolicy,
    GossipRoundPolicy,
    HierarchicalRoundPolicy,
    OrchestrationContext,
    RoundPolicy,
    SemiSyncRoundPolicy,
    SyncRoundPolicy,
)
from repro.sched.registry import (
    ContractProfile,
    PolicyBuildContext,
    PolicySpec,
    build_orchestrator,
    get_policy,
    register_policy,
    registered_modes,
    validate_mode_config,
)

__all__ = [
    "SimulationKernel",
    "AsyncRoundPolicy",
    "ChainActor",
    "ChainOp",
    "CommFabric",
    "ContractProfile",
    "GossipRoundPolicy",
    "HierarchicalRoundPolicy",
    "NetworkActor",
    "OrchestrationContext",
    "PolicyBuildContext",
    "PolicySpec",
    "RoundPolicy",
    "SemiSyncRoundPolicy",
    "SyncRoundPolicy",
    "build_orchestrator",
    "get_policy",
    "register_policy",
    "registered_modes",
    "validate_mode_config",
]
