"""Discrete-event scheduling engine for federation orchestration.

This package turns the orchestration layer into a classic discrete-event
simulation: a :class:`~repro.sched.kernel.SimulationKernel` owns a global
simulated clock and a heap-backed event queue
(:class:`~repro.simnet.events.EventQueue`), and *round policies* decide what
happens when — lock-step phases (sync), free-running clusters (async), or
quorum/staleness-bounded rounds (semi-sync).

* :mod:`repro.sched.kernel` — the engine: event scheduling, deterministic
  ordering, O(log n) dispatch.
* :mod:`repro.sched.policies` — the three built-in round policies plus the
  :class:`~repro.sched.policies.RoundPolicy` base class for writing new ones.

See ``docs/scheduling.md`` for the design and a guide to custom policies.
"""

from repro.sched.kernel import SimulationKernel
from repro.sched.policies import (
    AsyncRoundPolicy,
    OrchestrationContext,
    RoundPolicy,
    SemiSyncRoundPolicy,
    SyncRoundPolicy,
)

__all__ = [
    "SimulationKernel",
    "AsyncRoundPolicy",
    "OrchestrationContext",
    "RoundPolicy",
    "SemiSyncRoundPolicy",
    "SyncRoundPolicy",
]
