"""Network and chain actors: middle-tier I/O as first-class event streams.

Before this module existed, every model transfer and every contract call was
a *constant* added to an aggregator's clock (``ClusterTimingModel``'s
``transfer_time`` / ``chain_interaction_time``).  That hides two effects the
middleware literature insists the middle tier must expose:

* **Link contention** — several clusters pushing or pulling model weights
  through the shared storage fabric queue behind each other.  The
  :class:`NetworkActor` schedules each upload/download on a
  :class:`~repro.simnet.network.LinkScheduler`, so a transfer's cost depends
  on what else is in flight, not only on its size.  With a
  :class:`~repro.simnet.network.Topology` the fabric is a set of storage
  *replicas* with parallel capacity and WAN links between sites, and the
  actor picks a replica per transfer (cluster affinity or deterministic
  least-loaded).
* **Replication is not free** — an upload lands on exactly one replica;
  every other site only holds the artifact once a real origin→replica WAN
  transfer has delivered it.  The actor keeps a
  :class:`~repro.simnet.replication.ReplicaDirectory` (when each object
  arrives where) and schedules the propagation itself, under one of three
  policies (``replication_mode``): **eager** pushes to every peer right
  after the upload commits, **lazy** fetches on demand when a download
  misses (the downloader waits behind the fetch), and **none** pins every
  download to the object's origin replica.  Downloads are read-your-writes
  gated: a download from replica *r* starts no earlier than the object's
  arrival at *r*.
* **Consensus latency** — a transaction is not final when it is sent; it is
  final when the next Clique block seals it.  The :class:`ChainActor`
  quantises every contract interaction to the block-interval grid and adds
  the consensus delay of :func:`repro.chain.clique.consensus_delay`.

Both actors keep an append-only event log, so a run can report *per-phase*
communication and chain time (see ``CommFabric.summary``) instead of folding
everything into one opaque number.  The round policies and the aggregator
consume these streams when an experiment runs with ``event_streams=True``
(the default); with the flag off the constant-cost path is untouched and
runs stay bit-identical to previous releases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chain.clique import TX_VALIDATION_COST_S as TX_COST_S
from repro.simnet.faults import CircuitBreaker, FaultPlan, ResiliencePolicy
from repro.simnet.network import LinkScheduler, NetworkModel, ScheduledTransfer, Topology
from repro.simnet.replication import REPLICATION_MODES, ReplicaDirectory

#: endpoint name of the storage swarm in the single-replica (default) layout.
STORAGE_ENDPOINT = "storage"

#: replica-selection policies understood by :class:`NetworkActor`.
REPLICA_SELECTIONS = ("affinity", "least-loaded")

#: transfer phases the network actor labels its events with.  "exchange" is
#: peer-level model traffic (hierarchical intra-group shuttles, gossip pulls)
#: as opposed to the cluster<->storage phases.
TRANSFER_PHASES = ("upload", "download", "replication", "exchange")


@dataclass(frozen=True)
class ChainOp:
    """One contract interaction placed on the chain's block timeline.

    Attributes:
        kind: what the interaction was (``"submitModel"``, ``"submitScore"``,
            ``"closeSemiRound"``, ...), used for per-phase reporting.
        endpoint: name of the actor that issued the transactions.
        num_transactions: how many transactions the interaction bundles.
        submitted_at: simulated time the transactions entered the pool.
        sealed_at: simulated time the block carrying them became final
            (block-interval boundary plus consensus delay).
        block_index: index of the sealing block on the interval grid; two
            interactions with the same index share a block.
    """

    kind: str
    endpoint: str
    num_transactions: int
    submitted_at: float
    sealed_at: float
    block_index: int

    @property
    def delay(self) -> float:
        """Seconds the caller waited from submission to finality."""
        return self.sealed_at - self.submitted_at


class NetworkActor:
    """Schedules model-weight transfers as contended link events.

    The actor owns a :class:`~repro.simnet.network.LinkScheduler` and the
    notion of *where models live*.  In the default layout clusters upload to
    and download from the single shared :data:`STORAGE_ENDPOINT`; with a
    :class:`~repro.simnet.network.Topology` the actor instead picks one of
    several storage **replicas** per transfer — each with its own parallel
    capacity — so the structural bottleneck of one serial backbone
    disappears.  Either way, transfers that saturate an endpoint contend —
    exactly the queueing the constant-cost model could not express.

    Args:
        network: link model for the single-endpoint layout (per-pair
            latency/bandwidth with a default).  Mutually exclusive with
            ``topology``.
        model_bytes: serialized size of one full-scale model; every transfer
            moves a whole number of models.
        topology: multi-replica storage layout; supplies the links, the
            replica capacities and each cluster's home replica.
        selection: replica-selection policy — ``"affinity"`` always uses a
            cluster's home replica, ``"least-loaded"`` deterministically
            picks the replica with the smallest *estimated completion time*
            (outstanding backlog per capacity slot plus the composed path
            wire time, so an empty-but-remote replica never beats a home
            replica that is strictly faster end to end; declaration order
            breaks ties).
        replication_mode: how uploaded artifacts reach the other replicas —
            ``"eager"`` (origin pushes to every peer right after the upload
            commits), ``"lazy"`` (a download miss triggers an on-demand
            origin→replica fetch the downloader waits behind) or ``"none"``
            (downloads are pinned to the origin replica).  Irrelevant with a
            single replica, where all three modes are bit-identical.
        faults: a :class:`~repro.simnet.faults.FaultPlan` whose replica
            outage and WAN partition windows are injected into the link
            scheduler at construction; at request time the actor additionally
            fails fast on faulted paths and applies the resilience layer.
            ``None`` (or a zero plan) leaves every code path bit-identical
            to the fault-free actor.
        resilience: retry/backoff + circuit-breaker knobs
            (:class:`~repro.simnet.faults.ResiliencePolicy`); only consulted
            when a live fault plan is present.  ``retry_max = 0`` disables
            the layer even under faults — transfers then wait out outages on
            the link schedule (the degraded baseline).
        resilience_seed: seeds the deterministic backoff-jitter stream.
    """

    def __init__(
        self,
        network: Optional[NetworkModel] = None,
        model_bytes: int = 1,
        topology: Optional[Topology] = None,
        selection: str = "affinity",
        replication_mode: str = "eager",
        faults: Optional[FaultPlan] = None,
        resilience: Optional[ResiliencePolicy] = None,
        resilience_seed: int = 0,
    ):
        if model_bytes <= 0:
            raise ValueError("model_bytes must be positive")
        if selection not in REPLICA_SELECTIONS:
            raise ValueError(f"selection must be one of {REPLICA_SELECTIONS}")
        if replication_mode not in REPLICATION_MODES:
            raise ValueError(f"replication_mode must be one of {REPLICATION_MODES}")
        if topology is not None and network is not None:
            raise ValueError("pass either a network or a topology, not both")
        self.topology = topology
        if topology is not None:
            self.scheduler = topology.build_scheduler()
            self.replicas: List[str] = topology.replicas
        else:
            self.scheduler = LinkScheduler(network)
            self.replicas = [STORAGE_ENDPOINT]
        self.selection = selection
        self.replication_mode = replication_mode
        self.model_bytes = int(model_bytes)
        #: per-object availability ledger; only populated in multi-replica
        #: layouts for transfers that carry object ids.
        self.directory = ReplicaDirectory()
        #: bytes this actor moved across a WAN hop (any transfer whose two
        #: endpoints live at different topology sites); 0 without a topology.
        self.wan_bytes = 0
        #: transfers committed *through this actor*, each paired with its
        #: phase label ("upload" / "download" / "replication").  Owned here
        #: rather than zipped against ``scheduler.log`` so direct commits on
        #: the public scheduler cannot shift the labelling.
        self._events: List[Tuple[ScheduledTransfer, str]] = []
        #: live fault plan (``None`` when the plan is zero — one check
        #: guards every fault branch, keeping the happy path untouched).
        self.faults = faults if faults is not None and not faults.is_zero else None
        self.resilience = resilience if resilience is not None else ResiliencePolicy()
        #: resilience accounting, all zero on the happy path.
        self.retries = 0
        self.failovers = 0
        self.fast_fails = 0
        self.backoff_wait_s = 0.0
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._jitter_rng = None
        if self.faults is not None:
            self._jitter_rng = np.random.default_rng([int(resilience_seed), 0xBF])
            self._install_fault_windows()

    def _install_fault_windows(self) -> None:
        """Inject the plan's outage/partition windows into the link scheduler.

        Replica downtime blocks every transfer touching the replica; sites
        are registered so each cluster endpoint resolves to its home replica
        for partition lookups, and each partitioned site pair's windows
        block cross-site placements.  Done once at construction, before any
        traffic is scheduled.
        """
        assert self.faults is not None
        for replica in self.replicas:
            windows = self.faults.replica_windows(replica)
            if windows:
                self.scheduler.set_outages(replica, windows)
        if self.topology is not None:
            for cluster in self.topology.clusters:
                self.scheduler.set_site(cluster, self.topology.home_replica(cluster))
        for i, site_a in enumerate(self.replicas):
            for site_b in self.replicas[i + 1 :]:
                windows = self.faults.partition_windows(site_a, site_b)
                if windows:
                    self.scheduler.set_partition(site_a, site_b, windows)

    def attach_cluster(self, name: str, replica: str, link=None) -> None:
        """Register a cluster endpoint that materialised after construction.

        Sampled federations create virtual clusters lazily, so the fabric
        must accept new endpoints mid-run: the cluster is added to the
        topology, its composed cluster↔replica links are installed on the
        live scheduler's network (the topology's resolver only covers
        schedulers built *after* ``add_cluster``), and — when a fault plan is
        active — its site registered so partition lookups resolve.
        """
        if self.topology is None:
            raise ValueError("attach_cluster needs a multi-replica topology")
        self.topology.add_cluster(name, replica, link=link)
        if self.scheduler.network is not None:
            for peer in self.replicas:
                self.scheduler.network.set_link(
                    name, peer, self.topology.path_link(name, peer)
                )
        if self.faults is not None:
            self.scheduler.set_site(name, replica)

    # ------------------------------------------------------------- resilience
    def _breaker(self, replica: str) -> CircuitBreaker:
        """The lazily-created circuit breaker guarding one replica."""
        breaker = self._breakers.get(replica)
        if breaker is None:
            breaker = CircuitBreaker(
                self.resilience.breaker_threshold, self.resilience.breaker_cooldown_s
            )
            self._breakers[replica] = breaker
        return breaker

    def _path_ok(self, endpoint: str, replica: str, at: float) -> bool:
        """Is ``replica`` reachable from ``endpoint`` at time ``at``?

        False while the replica is inside an outage window or the WAN
        between the endpoint's site and the replica's site is partitioned.
        """
        assert self.faults is not None
        if self.faults.replica_down(replica, at):
            return False
        site = self._endpoint_site(endpoint)
        if site is not None and site != replica and self.faults.partitioned(site, replica, at):
            return False
        return True

    def _failover_replica(
        self,
        endpoint: str,
        at: float,
        object_id: Optional[str],
        phase: str,
        exclude: str,
    ) -> Optional[str]:
        """Next-best reachable replica under the least-loaded completion ranking.

        Candidates must be up, unpartitioned from the caller's site and have
        a breaker willing to admit traffic; among those the deterministic
        least-loaded estimate (backlog per capacity slot + path wire time,
        availability lag for ledger-known downloads, declaration order as
        the tie-break) picks the winner.  ``None`` when no replica
        qualifies — or when the download is pinned to its origin
        (``replication_mode="none"``), where serving a copy that never
        propagated would violate the ledger.
        """
        if len(self.replicas) == 1:
            return None
        downloading = phase == "download" and self.directory.known(object_id)
        if downloading and self.replication_mode == "none":
            return None
        best: Optional[Tuple[float, int]] = None
        chosen: Optional[str] = None
        for index, replica in enumerate(self.replicas):
            if replica == exclude:
                continue
            if not self._path_ok(endpoint, replica, at):
                continue
            if not self._breaker(replica).would_allow(at):
                continue
            backlog = self.scheduler.outstanding_backlog(replica, at)
            wire = self.scheduler.network.transfer_time(endpoint, replica, self.model_bytes)
            cost = backlog / self.scheduler.capacity(replica) + wire
            if downloading:
                cost += self._availability_lag(object_id, replica, at)
            key = (cost, index)
            if best is None or key < best:
                best = key
                chosen = replica
        return chosen

    def _resolve_replica(
        self, endpoint: str, at: float, object_id: Optional[str], phase: str
    ) -> Tuple[str, float]:
        """Pick the replica a transfer will actually use, resiliently.

        Returns ``(replica, earliest_start)``.  Without a live fault plan
        (or with ``retry_max = 0``) this is exactly :meth:`select_replica`
        at ``at`` — bit-identical to the pre-fault actor.  Otherwise the
        primary choice is probed through its circuit breaker: a faulted
        path burns retries with exponential backoff + deterministic jitter
        (each wait surfaces as queued time on the eventual transfer), a
        tripped or already-open breaker fails fast, and exhaustion falls
        over to the next-best reachable replica.  When *no* replica is
        reachable the caller degrades gracefully: the transfer targets the
        primary no earlier than its scheduled recovery.
        """
        replica = self.select_replica(endpoint, at, object_id, phase=phase)
        faults = self.faults
        if faults is None:
            return replica, at
        policy = self.resilience
        if policy.retry_max == 0:
            # Resilience off: the link schedule's outage windows still hold,
            # so the transfer simply waits out the fault where it is.
            return replica, at
        breaker = self._breaker(replica)
        cursor = at
        if breaker.allow(cursor):
            if self._path_ok(endpoint, replica, cursor):
                breaker.record_success(cursor)
                return replica, cursor
            attempt = 0
            while attempt < policy.retry_max:
                breaker.record_failure(cursor)
                if breaker.state == CircuitBreaker.OPEN:
                    self.fast_fails += 1
                    break
                assert self._jitter_rng is not None
                wait = policy.backoff(attempt, float(self._jitter_rng.random()))
                cursor += wait
                self.backoff_wait_s += wait
                self.retries += 1
                attempt += 1
                if self._path_ok(endpoint, replica, cursor):
                    breaker.record_success(cursor)
                    return replica, cursor
        else:
            self.fast_fails += 1
        alternate = self._failover_replica(endpoint, cursor, object_id, phase, exclude=replica)
        if alternate is not None:
            self.failovers += 1
            return alternate, cursor
        return replica, max(cursor, faults.recovery_time(replica, cursor))

    # -------------------------------------------------------- replica selection
    def select_replica(
        self,
        endpoint: str,
        at: float,
        object_id: Optional[str] = None,
        phase: str = "upload",
    ) -> str:
        """The replica a transfer from ``endpoint`` requested ``at`` would use.

        Pure and deterministic: reads only committed reservations and the
        availability ledger, so an estimate and the commit that follows it
        pick the same replica.  Downloads of a ledger-known object respect
        availability: with ``replication_mode="none"`` they are pinned to the
        object's origin, and least-loaded ranking charges each candidate the
        wait until the object's arrival there (plus, in lazy mode, the
        on-demand fetch a miss would cost).
        """
        if len(self.replicas) == 1:
            return self.replicas[0]
        downloading = phase == "download" and self.directory.known(object_id)
        if downloading and self.replication_mode == "none":
            origin = self.directory.origin(object_id)
            assert origin is not None
            return origin
        if self.selection == "affinity":
            assert self.topology is not None
            return self.topology.home_replica(endpoint)
        best: Optional[Tuple[float, int]] = None
        chosen = self.replicas[0]
        for index, replica in enumerate(self.replicas):
            backlog = self.scheduler.outstanding_backlog(replica, at)
            wire = self.scheduler.network.transfer_time(endpoint, replica, self.model_bytes)
            cost = backlog / self.scheduler.capacity(replica) + wire
            if downloading:
                cost += self._availability_lag(object_id, replica, at)
            key = (cost, index)
            if best is None or key < best:
                best = key
                chosen = replica
        return chosen

    def _endpoint_site(self, endpoint: str) -> Optional[str]:
        """The topology site an endpoint lives at (``None`` without a topology)."""
        if self.topology is None:
            return None
        if endpoint in self.topology.replicas:
            return endpoint
        try:
            return self.topology.home_replica(endpoint)
        except KeyError:
            return None

    def _record(self, scheduled: ScheduledTransfer, phase: str) -> None:
        """Log one committed transfer and account its WAN crossing, if any."""
        self._events.append((scheduled, phase))
        source_site = self._endpoint_site(scheduled.source)
        destination_site = self._endpoint_site(scheduled.destination)
        if source_site is not None and destination_site is not None and source_site != destination_site:
            self.wan_bytes += scheduled.num_bytes

    def _availability_lag(self, object_id: str, replica: str, at: float) -> float:
        """Extra seconds before ``object_id`` could leave ``replica`` (closed form).

        Zero once the object has arrived; the wait until its scheduled
        arrival otherwise; and for a replica with no arrival scheduled, the
        wire time of the on-demand origin→replica fetch a lazy miss would
        commit (on top of waiting out the origin's own arrival).
        """
        arrival = self.directory.arrival(object_id, replica)
        if arrival is not None:
            return max(0.0, arrival - at)
        origin = self.directory.origin(object_id)
        assert origin is not None
        origin_arrival = self.directory.arrival(object_id, origin) or 0.0
        fetch = self.scheduler.network.transfer_time(origin, replica, self.model_bytes)
        return max(0.0, origin_arrival - at) + fetch

    # ------------------------------------------------------------------ streams
    def upload(
        self,
        endpoint: str,
        num_models: int,
        at: float,
        object_ids: Optional[Sequence[str]] = None,
    ) -> float:
        """Move ``num_models`` models from ``endpoint`` into storage.

        Models are transferred one after another (each is a separate event on
        the link), so other clusters' transfers can interleave between them.
        When ``object_ids`` names the artifacts (one id per model), each
        upload is recorded in the availability ledger and — in eager mode —
        immediately followed by background origin→peer propagation transfers
        on the shared schedule.  Returns the total elapsed seconds the caller
        experienced (propagation runs off the caller's critical path and is
        *not* included).
        """
        if num_models <= 0:
            return 0.0
        cursor = at
        for object_id in self._object_sequence(object_ids, num_models):
            replica, ready = self._resolve_replica(endpoint, cursor, object_id, phase="upload")
            scheduled = self.scheduler.transfer(
                endpoint, replica, self.model_bytes, cursor, earliest_start=ready
            )
            self._record(scheduled, "upload")
            cursor = scheduled.finished_at
            if object_id is not None and len(self.replicas) > 1:
                self.directory.record_upload(object_id, replica, cursor)
                if self.replication_mode == "eager":
                    self._propagate(object_id, replica, cursor)
        return cursor - at

    def download(
        self,
        endpoint: str,
        num_models: int,
        at: float,
        object_ids: Optional[Sequence[str]] = None,
        phase: str = "download",
    ) -> float:
        """Move ``num_models`` models from storage to ``endpoint``.

        When ``object_ids`` names the artifacts, each download is
        read-your-writes gated: it starts no earlier than the object's
        arrival at the serving replica (the wait is accounted as queued
        time), and in lazy mode a miss first commits the on-demand
        origin→replica fetch the downloader then waits behind.  ``phase``
        relabels the event for reporting — gossip pulls ride the download
        machinery (same replica choice, same availability gate) but are
        accounted as "exchange" traffic.  Returns the total elapsed seconds
        the caller experienced.
        """
        if num_models <= 0:
            return 0.0
        cursor = at
        for object_id in self._object_sequence(object_ids, num_models):
            replica, ready = self._resolve_replica(endpoint, cursor, object_id, phase="download")
            available = self._ensure_available(object_id, replica, cursor, commit=True)
            scheduled = self.scheduler.transfer(
                replica, endpoint, self.model_bytes, cursor, earliest_start=max(ready, available)
            )
            self._record(scheduled, phase)
            cursor = scheduled.finished_at
        return cursor - at

    def exchange(self, source: str, destination: str, num_models: int, at: float) -> float:
        """Move ``num_models`` models directly between two cluster endpoints.

        The peer-to-peer primitive behind the hierarchical policy's
        intra-group shuttles: no storage replica is involved and nothing is
        ledgered — the transfer rides the cluster↔cluster link of the
        topology (same-site pairs compose their LAN hops, cross-site pairs
        additionally cross the WAN) and contends for both endpoints like any
        other traffic.  Returns the elapsed seconds the receiver experienced.
        """
        if num_models <= 0:
            return 0.0
        cursor = at
        for _ in range(num_models):
            scheduled = self.scheduler.transfer(source, destination, self.model_bytes, cursor)
            self._record(scheduled, "exchange")
            cursor = scheduled.finished_at
        return cursor - at

    @staticmethod
    def _object_sequence(
        object_ids: Optional[Sequence[str]], num_models: int
    ) -> List[Optional[str]]:
        """One object id per transferred model (all ``None`` when unnamed)."""
        if object_ids is None:
            return [None] * num_models
        if len(object_ids) != num_models:
            raise ValueError(
                f"object_ids must name every model: got {len(object_ids)} ids "
                f"for {num_models} models"
            )
        return list(object_ids)

    def _propagate(self, object_id: str, origin: str, at: float) -> None:
        """Eagerly push one freshly-uploaded object from its origin to every peer.

        Each push is a real WAN transfer on the shared schedule (it occupies
        a slot on both sites), committed in replica declaration order for
        determinism; the ledger records the object's arrival at each peer.
        """
        for replica in self.replicas:
            if replica == origin:
                continue
            scheduled = self.scheduler.transfer(origin, replica, self.model_bytes, at)
            self._record(scheduled, "replication")
            self.directory.record_arrival(object_id, replica, scheduled.finished_at)

    def _ensure_available(
        self, object_id: Optional[str], replica: str, at: float, commit: bool
    ) -> float:
        """Earliest time ``object_id`` can leave ``replica`` (read-your-writes).

        Unknown objects and single-replica layouts are pre-seeded (``at``
        unchanged — the legacy free-replication semantics).  A ledger miss at
        ``replica`` is resolved by an on-demand origin→replica fetch which is
        committed to the schedule when ``commit`` is true (the lazy path) and
        merely planned otherwise (pure estimates).
        """
        if len(self.replicas) == 1 or not self.directory.known(object_id):
            return at
        assert object_id is not None
        arrival = self.directory.arrival(object_id, replica)
        if arrival is not None:
            return max(at, arrival)
        origin = self.directory.origin(object_id)
        assert origin is not None
        origin_ready = max(at, self.directory.arrival(object_id, origin) or 0.0)
        if commit:
            fetch = self.scheduler.transfer(
                origin, replica, self.model_bytes, at, earliest_start=origin_ready
            )
            self._record(fetch, "replication")
            self.directory.record_arrival(object_id, replica, fetch.finished_at)
            return fetch.finished_at
        return self.scheduler.preview(
            origin, replica, self.model_bytes, at, earliest_start=origin_ready
        ).finished_at

    def estimate_upload(self, endpoint: str, at: float) -> float:
        """Elapsed seconds a one-model upload requested ``at`` would take.

        Pure: nothing is committed to the schedule.  Used by the sync policy's
        straggler decision (can this cluster still make the window?).
        """
        replica = self.select_replica(endpoint, at, phase="upload")
        return self.scheduler.estimate(endpoint, replica, self.model_bytes, at)

    def estimate_download(self, endpoint: str, at: float, object_id: Optional[str] = None) -> float:
        """Elapsed seconds a one-model download requested ``at`` would take.

        Pure, and exact: it mirrors the commit path — same replica choice,
        same availability gate, and in lazy mode the same on-demand fetch the
        download would wait behind (planned, not committed).
        """
        replica = self.select_replica(endpoint, at, object_id, phase="download")
        ready = self._ensure_available(object_id, replica, at, commit=False)
        plan = self.scheduler.preview(
            replica, endpoint, self.model_bytes, at, earliest_start=ready
        )
        return plan.finished_at - at

    def estimate_replication_lag(self, endpoint: str, at: float) -> float:
        """Worst-case extra seconds before a submission at ``at`` is fetchable everywhere.

        In lazy mode with several replicas, a model uploaded now only lives at
        its origin; the first remote consumer pays an on-demand origin→peer
        fetch.  The sync straggler decision charges that possible fetch to the
        submission estimate, so a cluster is not declared window-safe on the
        strength of a submission nobody can read in time.  Eager mode pushes
        in the background and ``none`` never propagates, so both (and any
        single-replica layout) cost nothing here.
        """
        if self.replication_mode != "lazy" or len(self.replicas) == 1:
            return 0.0
        origin = self.select_replica(endpoint, at, phase="upload")
        return max(
            self.scheduler.network.transfer_time(origin, peer, self.model_bytes)
            for peer in self.replicas
            if peer != origin
        )

    # ---------------------------------------------------------------- reporting
    def transfers(self, phase: Optional[str] = None) -> List[ScheduledTransfer]:
        """Transfers committed through this actor, optionally phase-filtered."""
        return [t for t, p in self._events if phase is None or p == phase]

    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{"time": wire seconds, "queued": queued seconds, "count": n}``.

        Every phase (upload / download / replication) is always present
        (zeros when idle) so the exported metrics schema is stable across
        runs.  For downloads, ``queued`` includes availability gating — the
        read-your-writes wait for the object to arrive at the serving
        replica.
        """
        totals: Dict[str, Dict[str, float]] = {
            phase: {"time": 0.0, "queued": 0.0, "count": 0.0}
            for phase in TRANSFER_PHASES
        }
        for transfer, phase in self._events:
            bucket = totals[phase]
            bucket["time"] += transfer.duration
            bucket["queued"] += transfer.queued_time
            bucket["count"] += 1.0
        return totals

    def replica_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-replica ``{"time", "queued", "count"}`` over the caller-facing phases.

        Counts the transfers each replica *served* (uploads into it,
        downloads out of it); inter-replica propagation traffic is reported
        separately by :meth:`replication_totals`.  Every declared replica is
        always present (zeros when idle) so sweeps over replica counts export
        a stable schema.
        """
        totals: Dict[str, Dict[str, float]] = {
            replica: {"time": 0.0, "queued": 0.0, "count": 0.0} for replica in self.replicas
        }
        for transfer, phase in self._events:
            if phase == "replication":
                continue
            replica = transfer.destination if phase == "upload" else transfer.source
            bucket = totals.get(replica)
            if bucket is None:
                continue
            bucket["time"] += transfer.duration
            bucket["queued"] += transfer.queued_time
            bucket["count"] += 1.0
        return totals

    def resilience_totals(self) -> Dict[str, float]:
        """Fault/resilience accounting, always present (zeros on the happy path).

        ``retries`` / ``backoff_wait_s`` count the backoff attempts burned on
        faulted paths, ``failovers`` the transfers re-aimed at an alternate
        replica, ``breaker_trips`` / ``breaker_open_s`` /
        ``breaker_fast_fails`` the circuit-breaker activity (open seconds are
        each trip's guaranteed cooldown window), ``dropped_clients`` the
        distinct ``(cluster, round)`` churn drops the plan injected, and
        ``fault_outage_s`` / ``fault_partition_s`` the injected downtime
        itself.
        """
        return {
            "retries": float(self.retries),
            "backoff_wait_s": self.backoff_wait_s,
            "failovers": float(self.failovers),
            "breaker_trips": float(sum(b.trips for _, b in sorted(self._breakers.items()))),
            "breaker_open_s": float(sum(b.open_seconds for _, b in sorted(self._breakers.items()))),
            "breaker_fast_fails": float(self.fast_fails),
            "dropped_clients": float(self.faults.dropped_clients) if self.faults else 0.0,
            "fault_outage_s": self.faults.outage_seconds if self.faults else 0.0,
            "fault_partition_s": self.faults.partition_seconds if self.faults else 0.0,
        }

    def replication_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-replica propagation ``{"time", "queued", "count"}``, by receiving site.

        Eager pushes and lazy fetches *into* each replica (the WAN traffic
        that actually distributes an artifact).  Every declared replica is
        always present (zeros when idle).
        """
        totals: Dict[str, Dict[str, float]] = {
            replica: {"time": 0.0, "queued": 0.0, "count": 0.0} for replica in self.replicas
        }
        for transfer, phase in self._events:
            if phase != "replication":
                continue
            bucket = totals.get(transfer.destination)
            if bucket is None:
                continue
            bucket["time"] += transfer.duration
            bucket["queued"] += transfer.queued_time
            bucket["count"] += 1.0
        return totals


class ChainActor:
    """Schedules contract interactions on the block-interval grid.

    Blocks seal at multiples of ``block_interval``; a transaction submitted
    at time *t* pays a per-transaction validation cost, rides the next
    boundary after it is ready, and becomes final ``consensus_delay`` seconds
    later (Clique seal verification + amortised out-of-turn wiggle).  Two
    interactions that are ready before the same boundary share a block — the
    chain-time quantisation the constant-cost model flattened into a single
    ``block_period`` constant.

    Args:
        block_interval: seconds between block boundaries (Clique ``period``).
        consensus_delay: extra seconds from boundary to finality; see
            :func:`repro.chain.clique.consensus_delay`.
    """

    def __init__(self, block_interval: float, consensus_delay: float = 0.0):
        if block_interval <= 0:
            raise ValueError("block_interval must be positive")
        if consensus_delay < 0:
            raise ValueError("consensus_delay must be non-negative")
        self.block_interval = float(block_interval)
        self.consensus_delay = float(consensus_delay)
        #: append-only log of every committed interaction.
        self.log: List[ChainOp] = []
        #: blocks observed from the simulated chain via the emission hook
        #: (:meth:`repro.chain.blockchain.Blockchain.add_block_listener`).
        self.blocks_observed = 0
        self.transactions_observed = 0

    # ------------------------------------------------------------------ streams
    def _seal(self, at: float, num_transactions: int) -> tuple[float, int]:
        ready = at + max(0, num_transactions) * TX_COST_S
        # A transaction ready *exactly on* a boundary rides that boundary; only
        # strictly-later readiness waits for the next one.  (The old
        # ``floor + 1`` quantisation pushed the exact-boundary case a full
        # interval into the future.)  The genesis block is off the grid: a
        # transaction ready at exactly t=0 rides block 1, never "block 0"
        # (which would make it final after only the consensus delay, before
        # any block interval has elapsed).
        block_index = max(1, int(math.ceil(ready / self.block_interval)))
        sealed = block_index * self.block_interval + self.consensus_delay
        return sealed, block_index

    def interact(self, kind: str, endpoint: str, at: float, num_transactions: int = 1) -> ChainOp:
        """Commit ``num_transactions`` transactions submitted at time ``at``.

        Returns the :class:`ChainOp` describing when they became final.
        """
        if at < 0:
            raise ValueError("submission time must be non-negative")
        sealed, block_index = self._seal(at, num_transactions)
        op = ChainOp(
            kind=kind,
            endpoint=endpoint,
            num_transactions=num_transactions,
            submitted_at=at,
            sealed_at=sealed,
            block_index=block_index,
        )
        self.log.append(op)
        return op

    def estimate(self, at: float, num_transactions: int = 1) -> float:
        """Finality delay of an interaction submitted ``at``, uncommitted."""
        sealed, _ = self._seal(at, num_transactions)
        return sealed - at

    def observe_block(self, block) -> None:
        """Block-listener callback: count blocks/transactions actually sealed."""
        self.blocks_observed += 1
        self.transactions_observed += len(getattr(block, "transactions", []))

    # ---------------------------------------------------------------- reporting
    def kind_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-kind ``{"wait": finality seconds, "count": n, "transactions": n}``."""
        totals: Dict[str, Dict[str, float]] = {}
        for op in self.log:
            bucket = totals.setdefault(op.kind, {"wait": 0.0, "count": 0.0, "transactions": 0.0})
            bucket["wait"] += op.delay
            bucket["count"] += 1.0
            bucket["transactions"] += float(op.num_transactions)
        return totals

    @property
    def blocks_spanned(self) -> int:
        """Distinct block indices the committed interactions rode."""
        return len({op.block_index for op in self.log})


class CommFabric:
    """The communication fabric: one facade over both event-stream actors.

    An experiment with ``event_streams=True`` owns exactly one fabric; the
    aggregators charge their pull/store/chain costs through it and the round
    policies query it for submission estimates, so every byte moved and every
    transaction sealed shares a single contended timeline.
    """

    def __init__(self, network_actor: NetworkActor, chain_actor: ChainActor):
        self.network = network_actor
        self.chain = chain_actor
        #: optional :class:`~repro.analysis.sanitizer.SimulationSanitizer`;
        #: when set, the fabric's running totals are re-checked for
        #: monotonicity after every operation (read-only).
        self.sanitizer = None

    def _observe(self) -> None:
        if self.sanitizer is not None:
            self.sanitizer.observe_fabric(self)

    # ------------------------------------------------------- aggregator-facing
    def upload(
        self,
        endpoint: str,
        num_models: int,
        at: float,
        object_ids: Optional[Sequence[str]] = None,
    ) -> float:
        """Elapsed seconds to push ``num_models`` models into storage.

        ``object_ids`` (one per model, e.g. the IPFS CIDs) feed the replica
        availability ledger so later downloads can be replication-gated.
        """
        elapsed = self.network.upload(endpoint, num_models, at, object_ids=object_ids)
        self._observe()
        return elapsed

    def download(
        self,
        endpoint: str,
        num_models: int,
        at: float,
        object_ids: Optional[Sequence[str]] = None,
    ) -> float:
        """Elapsed seconds to fetch ``num_models`` models from storage.

        With ``object_ids`` the fetches respect each object's availability:
        read-your-writes gating and, in lazy mode, on-demand fetches.
        """
        elapsed = self.network.download(endpoint, num_models, at, object_ids=object_ids)
        self._observe()
        return elapsed

    def exchange(self, source: str, destination: str, at: float, num_models: int = 1) -> float:
        """Elapsed seconds to shuttle models directly between two clusters.

        The hierarchical policy's intra-group traffic: members push their
        round's model to the site leader and the leader broadcasts the merged
        group model back, all on the cluster↔cluster links of the topology
        (LAN-priced within a site, WAN-crossing otherwise).
        """
        elapsed = self.network.exchange(source, destination, num_models, at)
        self._observe()
        return elapsed

    def gossip_pull(self, endpoint: str, at: float, object_id: str) -> float:
        """Elapsed seconds for one gossip exchange: pull a peer's model by CID.

        Rides the download machinery — same replica selection, same
        read-your-writes availability gate, same lazy on-demand fetch on a
        miss — but is accounted as "exchange" traffic so the per-exchange
        breakdown stays separable from ordinary aggregation pulls.
        """
        elapsed = self.network.download(endpoint, 1, at, object_ids=[object_id], phase="exchange")
        self._observe()
        return elapsed

    def chain_op(self, kind: str, endpoint: str, at: float, num_transactions: int = 1) -> float:
        """Elapsed seconds until ``num_transactions`` submitted ``at`` are final."""
        if num_transactions <= 0:
            return 0.0
        delay = self.chain.interact(kind, endpoint, at, num_transactions).delay
        self._observe()
        return delay

    # ----------------------------------------------------------- policy-facing
    def estimate_submission(self, endpoint: str, at: float) -> float:
        """Predicted cost of a full model submission (upload + finality).

        Pure — used by :class:`~repro.sched.policies.SyncRoundPolicy` to
        decide whether a cluster can still make the training window.  In
        lazy replication mode the estimate also charges the possible
        on-demand origin→peer fetch a remote consumer would wait behind
        (:meth:`NetworkActor.estimate_replication_lag`): a submission only
        its origin site can read in time has not really made the window.
        """
        upload = self.network.estimate_upload(endpoint, at)
        finality = self.chain.estimate(at + upload, 1)
        return upload + finality + self.network.estimate_replication_lag(endpoint, at + upload)

    def estimate_pull(self, endpoint: str, at: float, object_id: Optional[str] = None) -> float:
        """Predicted cost of downloading one model, availability included.

        Pure and exact against the commit path: same replica choice, same
        read-your-writes gate, same (planned) lazy fetch on a miss.
        """
        return self.network.estimate_download(endpoint, at, object_id=object_id)

    # ---------------------------------------------------------------- reporting
    def summary(self) -> Dict[str, float]:
        """Flat per-phase communication/chain accounting for result documents.

        Keys are stable and JSON-friendly: ``upload_time`` / ``upload_queued``
        / ``upload_count`` (ditto ``download_*``, ``replication_*`` for
        inter-replica propagation traffic and ``exchange_*`` for peer-level
        hierarchical/gossip traffic), ``wan_bytes`` for the bytes that
        crossed a WAN hop, ``replica_<name>_time`` /
        ``_queued`` / ``_count`` per storage replica plus
        ``replica_<name>_replication_*`` propagation totals per receiving
        site, ``chain_wait_<kind>`` and ``chain_ops_<kind>`` per interaction
        kind, plus totals.  The fault/resilience keys (``retries``,
        ``backoff_wait_s``, ``failovers``, ``breaker_trips``,
        ``breaker_open_s``, ``breaker_fast_fails``, ``dropped_clients``,
        ``fault_outage_s``, ``fault_partition_s``) are always exported —
        zeros on the happy path — so the schema is stable with and without
        injected faults.
        """
        out: Dict[str, float] = {}
        for phase, bucket in sorted(self.network.phase_totals().items()):
            out[f"{phase}_time"] = bucket["time"]
            out[f"{phase}_queued"] = bucket["queued"]
            out[f"{phase}_count"] = bucket["count"]
        for replica, bucket in sorted(self.network.replica_totals().items()):
            out[f"replica_{replica}_time"] = bucket["time"]
            out[f"replica_{replica}_queued"] = bucket["queued"]
            out[f"replica_{replica}_count"] = bucket["count"]
        for replica, bucket in sorted(self.network.replication_totals().items()):
            out[f"replica_{replica}_replication_time"] = bucket["time"]
            out[f"replica_{replica}_replication_queued"] = bucket["queued"]
            out[f"replica_{replica}_replication_count"] = bucket["count"]
        out["storage_replicas"] = float(len(self.network.replicas))
        out["network_time"] = self.network.scheduler.total_wire_time
        out["network_queued"] = self.network.scheduler.total_queued_time
        out["wan_bytes"] = float(self.network.wan_bytes)
        for kind, bucket in sorted(self.chain.kind_totals().items()):
            out[f"chain_wait_{kind}"] = bucket["wait"]
            out[f"chain_ops_{kind}"] = bucket["count"]
        out["chain_wait"] = sum(op.delay for op in self.chain.log)
        out["chain_ops"] = float(len(self.chain.log))
        out["chain_blocks_spanned"] = float(self.chain.blocks_spanned)
        out["chain_blocks_observed"] = float(self.chain.blocks_observed)
        out["chain_transactions_observed"] = float(self.chain.transactions_observed)
        out.update(self.network.resilience_totals())
        return out
