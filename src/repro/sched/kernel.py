"""The simulation kernel: a global clock driven by a heap of events.

The kernel is deliberately tiny — it knows nothing about federated learning.
It pops events in deterministic ``(time, priority, key, seq)`` order, advances
its :class:`~repro.simnet.clock.SimClock` to each event's timestamp, and runs
the event's action.  Actions may schedule further events (never in the past).
Everything domain-specific lives in the round policies layered on top
(:mod:`repro.sched.policies`).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simnet.clock import SimClock
from repro.simnet.events import Event, EventQueue


class SimulationKernel:
    """Discrete-event engine owning the global simulated clock.

    Per-actor clocks (each aggregator owns a :class:`SimClock`) keep tracking
    local activity exactly as before; the kernel's clock is the *global*
    frontier — the timestamp of the event currently being dispatched.  The two
    views agree because policies only schedule an actor's next event at that
    actor's local time.
    """

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self.queue = EventQueue()
        self.events_processed = 0
        self._stopped = False
        #: optional :class:`~repro.analysis.sanitizer.SimulationSanitizer`;
        #: when set, every popped event is checked against the clock before
        #: the kernel commits to it.
        self.sanitizer = None

    # --------------------------------------------------------------- scheduling
    def now(self) -> float:
        """Current global simulated time."""
        return self.clock.now()

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        key: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute simulated ``time`` (clamped to now)."""
        return self.queue.push(max(time, self.clock.now()), action, priority=priority, key=key)

    def schedule_after(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
        key: str = "",
    ) -> Event:
        """Schedule ``action`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        return self.queue.push(self.clock.now() + delay, action, priority=priority, key=key)

    def stop(self) -> None:
        """Make :meth:`run` return after the current event; pending events stay queued."""
        self._stopped = True

    # ------------------------------------------------------------------ driving
    def step(self) -> bool:
        """Dispatch the single earliest event; return False when none remain."""
        if not self.queue:
            return False
        event = self.queue.pop()
        if self.sanitizer is not None:
            self.sanitizer.check_event(self.clock.now(), event.time)
        self.clock.advance_to(event.time)
        self.events_processed += 1
        event.action()
        return True

    def run(self, until: Optional[float] = None) -> int:
        """Dispatch events until the queue drains (or ``until`` / :meth:`stop`).

        Returns the number of events processed by this call.
        """
        self._stopped = False
        processed = 0
        while not self._stopped:
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            processed += 1
        return processed

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SimulationKernel(t={self.clock.now():.2f}s, "
            f"pending={len(self.queue)}, processed={self.events_processed})"
        )
