"""Round policies: the pluggable "what happens when" of orchestration.

A :class:`RoundPolicy` owns the domain logic of one orchestration mode and
expresses it as events on a :class:`~repro.sched.kernel.SimulationKernel`:

* :class:`SyncRoundPolicy` — lock-step rounds with fixed training/scoring
  windows (the paper's Sync mode, Section 3.2).  Each round is three events:
  round start (barrier + training), training-window close (scoring), and
  scoring-window close (round end + bookkeeping).
* :class:`AsyncRoundPolicy` — every cluster is its own event stream (the
  paper's Async mode, Section 3.3).  The next cluster to act is always the
  earliest event in the heap, replacing the old O(n) scan over all
  aggregators with an O(log n) pop.
* :class:`SemiSyncRoundPolicy` — bounded-staleness buffered-async
  (FedBuff-style): clusters run at their own pace, but a logical round only
  closes once ``quorum_k`` clusters have submitted *or* ``max_staleness``
  simulated seconds have elapsed, and a cluster that already submitted to the
  open round waits for it to close before starting its next one.
* :class:`HierarchicalRoundPolicy` — clusters are grouped by topology site;
  each group runs several cheap LAN-priced local aggregation rounds around a
  rotating site leader, then one leader per group submits over WAN/chain per
  global round (the multi-site middleware shape: local stages composed under
  a thin global coordination tier).  Per-cluster round budgets cap how much
  local training each organisation contributes.
* :class:`GossipRoundPolicy` — no global barrier at all: every round each
  cluster pulls the latest published models of ``gossip_fanout``
  deterministic seeded peers, merges locally, trains, and publishes.
  Convergence is tracked per cluster.

Writing a new mode means subclassing :class:`RoundPolicy`, scheduling initial
events in :meth:`~RoundPolicy.install`, letting handlers schedule their
successors — and registering a :class:`~repro.sched.registry.PolicySpec` so
the runner, config validation, CLI and contract all pick the mode up without
edits.  See ``docs/scheduling.md`` for a walk-through.

When the :class:`OrchestrationContext` carries a
:class:`~repro.sched.actors.CommFabric`, the policies consume the network and
chain *event streams* instead of constant per-interaction costs: phase
transitions wait for their transactions to seal, submission-cost predictions
read the live link schedule (including, under lazy replication, the possible
on-demand fetch a consumer of the submission would wait behind), and the
semi-sync quorum close releases waiters only at transaction finality.
Without a fabric every hook degenerates to a zero-cost no-op, preserving
bit-identical constant-cost runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.sched.kernel import SimulationKernel

# No module-level repro.core imports here: repro.core.__init__ imports the
# orchestrators, which import this module — eager imports in both directions
# would break whichever package is imported first.  Runtime needs are imported
# inside the handful of methods that use them.
if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.chain.account import Account
    from repro.chain.blockchain import Blockchain
    from repro.core.aggregator import UnifyFLAggregator
    from repro.core.runner import ClientPopulation
    from repro.core.timing import ClusterTimingModel, RoundTiming
    from repro.sched.actors import CommFabric


@dataclass
class OrchestrationContext:
    """Everything a round policy needs to drive a federation."""

    chain: "Blockchain"
    driver: "Account"
    aggregators: Sequence["UnifyFLAggregator"]
    timing: "ClusterTimingModel"
    num_rounds: int
    #: shared per-aggregator accumulators, owned by the orchestrator facade.
    idle_totals: Dict[str, float] = field(default_factory=dict)
    straggles: Dict[str, int] = field(default_factory=dict)
    #: the event-stream communication fabric, or ``None`` for constant costs.
    #: When set, policies charge the driver's phase-control transactions
    #: (startTraining / startScoring / endRound / closeSemiRound) as chain
    #: events and predict submission costs from the live link schedule.
    comm: Optional["CommFabric"] = None
    #: the lazy virtual-cluster population of a sampled federation, or
    #: ``None`` for the fully-materialised cross-silo shape.  When set,
    #: ``aggregators`` is the live list of clusters materialised *so far*;
    #: policies must draw each round's participants from the population.
    population: Optional["ClientPopulation"] = None

    def add_idle(self, name: str, waited: float) -> None:
        """Accumulate ``waited`` idle seconds against aggregator ``name``."""
        self.idle_totals[name] = self.idle_totals.get(name, 0.0) + waited


class RoundPolicy:
    """Base class for orchestration modes expressed as kernel event streams."""

    mode = "base"

    def __init__(self, ctx: OrchestrationContext):
        self.ctx = ctx
        self.kernel: Optional[SimulationKernel] = None
        #: sampled federations: highest round whose cohort was published to
        #: the contract (guards setActiveCohort to once per round).
        self._cohort_round_sent = 0
        #: sampled free-running modes run the cohort as *lanes*: lane ``j``
        #: executes global rounds 1..num_rounds, occupied in round ``r`` by
        #: member ``j`` of round ``r``'s cohort.  The lane's timeline is
        #: continuous — a new occupant starts where the previous one left
        #: off — so the federation keeps a constant ``cohort_size`` degree
        #: of parallelism while the participants rotate underneath it.
        self._lane_round: Dict[int, int] = {}
        self._lane_time: Dict[int, float] = {}

    def install(self, kernel: SimulationKernel) -> None:
        """Schedule the policy's initial events on ``kernel``."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Run once after the kernel drains (e.g. leftover-scoring cleanup)."""

    def extras(self) -> Dict[str, object]:
        """Policy-specific result annotations (quorum stats, closures, ...)."""
        return {}

    # ------------------------------------------------------------ shared steps
    def _participants(self, round_number: int) -> Sequence["UnifyFLAggregator"]:
        """The clusters taking part in a round (the cohort when sampled)."""
        if self.ctx.population is None:
            return self.ctx.aggregators
        return self.ctx.population.round_aggregators(round_number)

    def _update_active_cohort(self, round_number: int) -> None:
        """Publish a sampled round's cohort addresses to the contract.

        Scorer assignment is scoped to the declared set, so a cluster that
        was not drawn this round is never drafted as a scorer.  Called at
        every round start but published at most once per round (free-running
        lanes all pass through here); bookkeeping only — no simulated cost
        is charged, the declaration piggybacks on the round's driver
        traffic.  No-op in non-sampled runs.
        """
        if self.ctx.population is None or round_number <= self._cohort_round_sent:
            return
        self._cohort_round_sent = round_number
        addresses = self.ctx.population.addresses(round_number)
        self.ctx.chain.send(
            self.ctx.driver, "unifyfl", "setActiveCohort", {"addresses": addresses}
        )
        self.ctx.chain.mine_until_empty()

    def _lane_occupant(self, lane: int, round_number: int) -> "UnifyFLAggregator":
        """Lane ``lane``'s occupant for a sampled round, aligned to lane time.

        A newly-materialised cluster starts at clock 0 and is advanced to
        the lane's timeline (no idle is booked — it did not exist before); a
        re-sampled cluster may already be past the lane time, in which case
        it simply carries on from its own clock.
        """
        assert self.ctx.population is not None
        aggregator = self.ctx.population.round_aggregators(round_number)[lane]
        aggregator.clock.advance_to(self._lane_time.get(lane, 0.0))
        return aggregator

    def _driver_chain_op(self, kind: str, at: float, num_transactions: int = 1) -> float:
        """Charge one driver (orchestrator) transaction to the chain stream.

        Returns the finality delay in event-stream mode, ``0.0`` in
        constant-cost mode — phase-control transactions were always free
        there, and staying free is what keeps default runs bit-identical.
        """
        if self.ctx.comm is None:
            return 0.0
        return self.ctx.comm.chain_op(kind, "driver", at=at, num_transactions=num_transactions)

    def _submission_cost(self, aggregator: "UnifyFLAggregator") -> float:
        """Predicted cost of submitting one model right now.

        Event-stream mode chains the contended store, the chain finality
        and — under lazy replication — the possible on-demand origin→peer
        fetch a remote consumer would wait behind, so the sync straggler
        decision does not declare a cluster window-safe on the strength of a
        submission no other site could read in time.
        """
        if self.ctx.comm is not None:
            return self.ctx.comm.estimate_submission(aggregator.name, aggregator.clock.now())
        return self.ctx.timing.transfer_time(aggregator.config.aggregator_profile, 1) + \
            self.ctx.timing.chain_interaction_time(1)

    def _free_running_round(self, aggregator: "UnifyFLAggregator", round_number: int) -> bool:
        """One self-paced cluster round (the async/semi work unit).

        Returns True when the cluster actually trained and submitted, False
        when it sat the round out offline (fault injection).
        """
        from repro.core.timing import RoundTiming

        now = aggregator.clock.now()
        if not aggregator.is_available(round_number):
            downtime = self.ctx.timing.client_training_time(aggregator.config, jitter=False)
            aggregator.clock.advance(downtime)
            aggregator.record_round(round_number, RoundTiming(idle_time=downtime), offline=True)
            return False
        # Idle clusters first serve the scoring requests assigned to them.
        score_timing = aggregator.score_assigned(before_time=now)
        pull_timing = aggregator.build_global_model(before_time=aggregator.clock.now())
        train_timing = aggregator.local_training_round()
        _, submit_timing = aggregator.submit_local_model()

        timing = RoundTiming(
            pull_time=pull_timing.pull_time + score_timing.pull_time,
            client_training_time=train_timing.client_training_time,
            aggregation_time=pull_timing.aggregation_time + train_timing.aggregation_time,
            store_time=submit_timing.store_time,
            chain_time=submit_timing.chain_time + score_timing.chain_time,
            scoring_time=score_timing.scoring_time,
        )
        aggregator.record_round(round_number, timing, straggled=False)
        return True

    def _drain_scoring(self) -> None:
        """Score any work still queued so final score lists are complete.

        The drained effort is folded into each aggregator's *last* round
        record, so summing per-round timings equals the cluster's clock —
        previously the drain advanced the clock but left the records short.
        """
        for aggregator in sorted(self.ctx.aggregators, key=lambda a: a.clock.now()):
            drain_timing = aggregator.score_assigned(before_time=aggregator.clock.now())
            if aggregator.history and drain_timing.total_time > 0:
                last = aggregator.history[-1].timing
                last.scoring_time += drain_timing.scoring_time
                last.pull_time += drain_timing.pull_time
                last.chain_time += drain_timing.chain_time


class SyncRoundPolicy(RoundPolicy):
    """Lock-step rounds with fixed phase windows (Section 3.2)."""

    mode = "sync"

    def __init__(
        self,
        ctx: OrchestrationContext,
        training_window: float,
        scoring_window: float,
    ):
        super().__init__(ctx)
        self.training_window = training_window
        self.scoring_window = scoring_window
        #: clusters that missed the submission window and owe a late submission.
        self.pending_late: Dict[str, bool] = {a.name: False for a in ctx.aggregators}
        self._round_timings: Dict[str, "RoundTiming"] = {}
        self._straggled: Dict[str, bool] = {}
        self._offline: Dict[str, bool] = {}
        #: the clusters participating in the round in flight — the full
        #: federation normally, the sampled cohort when a population is set.
        self._active: Sequence["UnifyFLAggregator"] = ctx.aggregators

    def install(self, kernel: SimulationKernel) -> None:
        """Schedule the first round start at the initial barrier time."""
        self.kernel = kernel
        barrier = max(a.clock.now() for a in self._participants(1))
        kernel.schedule_at(barrier, lambda: self._begin_round(1), key="sync-round")

    # ------------------------------------------------------------ phase events
    def _begin_round(self, round_number: int) -> None:
        """Barrier + training phase; schedules the training-window close."""
        from repro.core.timing import RoundTiming

        assert self.kernel is not None
        participants = self._participants(round_number)
        self._active = participants
        self._update_active_cohort(round_number)
        barrier = max(a.clock.now() for a in participants)
        if self.ctx.population is not None:
            # A sampled cohort may consist entirely of clusters whose clocks
            # lag the federation (fresh, or idle since an earlier round);
            # the round still starts no earlier than the previous round end.
            barrier = max(barrier, self.kernel.now())
        self.ctx.chain.send(self.ctx.driver, "unifyfl", "startTraining")
        self.ctx.chain.mine_until_empty()
        # Event streams: training starts when the startTraining transaction is
        # final on-chain, not the instant the driver broadcast it.
        phase_start = barrier + self._driver_chain_op("startTraining", barrier)
        barrier_waits: Dict[str, float] = {}
        for aggregator in participants:
            waited = aggregator.clock.advance_to(phase_start)
            if self.ctx.population is not None and not aggregator.history:
                # A newly-materialised cluster advancing from clock 0 to the
                # current barrier did not wait — it did not exist before.
                waited = 0.0
            self.ctx.add_idle(aggregator.name, waited)
            barrier_waits[aggregator.name] = waited
        self._round_timings = {}
        self._straggled = {}
        self._offline = {}
        for aggregator in participants:
            # The wait for the barrier / startTraining finality belongs to this
            # round's books (zero in constant-cost mode, where clusters are
            # already aligned when a round begins).
            timing = RoundTiming(idle_time=barrier_waits[aggregator.name])
            # Fault injection: an unavailable organisation (availability draw
            # or fault-plan churn) sits the round out.
            if not aggregator.is_available(round_number):
                self._offline[aggregator.name] = True
                self._straggled[aggregator.name] = False
                self._round_timings[aggregator.name] = timing
                continue
            self._offline[aggregator.name] = False
            # A cluster that straggled last round submits its stale model first.
            if self.pending_late.get(aggregator.name, False):
                cid, late_timing = aggregator.submit_local_model()
                timing.store_time += late_timing.store_time
                timing.chain_time += late_timing.chain_time
                self.pending_late[aggregator.name] = False
            pull_timing = aggregator.build_global_model()
            train_timing = aggregator.local_training_round()
            timing.pull_time += pull_timing.pull_time
            timing.aggregation_time += pull_timing.aggregation_time + train_timing.aggregation_time
            timing.client_training_time += train_timing.client_training_time
            elapsed = aggregator.clock.now() - phase_start
            submit_cost = self._submission_cost(aggregator)
            if elapsed + submit_cost <= self.training_window:
                _, submit_timing = aggregator.submit_local_model()
                timing.store_time += submit_timing.store_time
                timing.chain_time += submit_timing.chain_time
                self._straggled[aggregator.name] = False
            else:
                # Missed the submission window: submit next round instead.
                self._straggled[aggregator.name] = True
                self.pending_late[aggregator.name] = True
                self.ctx.straggles[aggregator.name] = (
                    self.ctx.straggles.get(aggregator.name, 0) + 1
                )
            self._round_timings[aggregator.name] = timing

        self.kernel.schedule_at(
            phase_start + self.training_window,
            lambda: self._close_training(round_number),
            key="sync-round",
        )

    def _close_training(self, round_number: int) -> None:
        """Training window elapses: everyone idles to it, scoring begins."""
        assert self.kernel is not None
        window_end = self.kernel.now()
        self.ctx.chain.send(self.ctx.driver, "unifyfl", "startScoring")
        self.ctx.chain.mine_until_empty()
        # Event streams: scoring starts once startScoring is sealed on-chain.
        scoring_start = window_end + self._driver_chain_op("startScoring", window_end)
        for aggregator in self._active:
            waited = aggregator.clock.advance_to(scoring_start)
            self.ctx.add_idle(aggregator.name, waited)
            self._round_timings[aggregator.name].idle_time += waited

        for aggregator in self._active:
            if self._offline.get(aggregator.name, False):
                continue
            score_timing = aggregator.score_assigned()
            timing = self._round_timings[aggregator.name]
            timing.scoring_time += score_timing.scoring_time
            timing.pull_time += score_timing.pull_time
            timing.chain_time += score_timing.chain_time

        self.kernel.schedule_at(
            scoring_start + self.scoring_window,
            lambda: self._close_scoring(round_number),
            key="sync-round",
        )

    def _close_scoring(self, round_number: int) -> None:
        """Scoring window elapses: close the round and start the next one."""
        assert self.kernel is not None
        scoring_end = self.kernel.now()
        self.ctx.chain.send(self.ctx.driver, "unifyfl", "endRound")
        self.ctx.chain.mine_until_empty()
        # Event streams: the round (and its reward bookkeeping) is only over
        # once the endRound transaction is sealed.
        round_end = scoring_end + self._driver_chain_op("endRound", scoring_end)
        for aggregator in self._active:
            waited = aggregator.clock.advance_to(round_end)
            self.ctx.add_idle(aggregator.name, waited)
            self._round_timings[aggregator.name].idle_time += waited

        for aggregator in self._active:
            aggregator.record_round(
                round_number,
                self._round_timings[aggregator.name],
                straggled=self._straggled.get(aggregator.name, False),
                offline=self._offline.get(aggregator.name, False),
            )

        if round_number < self.ctx.num_rounds:
            barrier = max(a.clock.now() for a in self._active)
            self.kernel.schedule_at(
                barrier, lambda: self._begin_round(round_number + 1), key="sync-round"
            )


class AsyncRoundPolicy(RoundPolicy):
    """Free-running clusters; the earliest heap event is always next (3.3)."""

    mode = "async"

    def __init__(self, ctx: OrchestrationContext):
        super().__init__(ctx)
        self.rounds_done: Dict[str, int] = {a.name: 0 for a in ctx.aggregators}

    def install(self, kernel: SimulationKernel) -> None:
        """Arm every cluster's first activation at its own local clock."""
        self.kernel = kernel
        if self.ctx.population is not None:
            # Sampled: one free-running lane per cohort slot; occupants
            # rotate per round as the sampler draws them.
            for lane in range(self.ctx.population.cohort_size):
                self._lane_round[lane] = 0
                kernel.schedule_at(
                    0.0, lambda l=lane: self._activate_lane(l), key=f"lane-{lane}"
                )
            return
        for aggregator in self.ctx.aggregators:
            kernel.schedule_at(
                aggregator.clock.now(),
                lambda a=aggregator: self._activate(a),
                key=aggregator.name,
            )

    def _activate(self, aggregator: "UnifyFLAggregator") -> None:
        assert self.kernel is not None
        round_number = self.rounds_done[aggregator.name] + 1
        self._free_running_round(aggregator, round_number)
        self.rounds_done[aggregator.name] = round_number
        if round_number < self.ctx.num_rounds:
            # Re-arm this cluster at its new local time: an O(log n) push,
            # not an O(n) rescan of every aggregator.
            self.kernel.schedule_at(
                aggregator.clock.now(),
                lambda: self._activate(aggregator),
                key=aggregator.name,
            )

    def _activate_lane(self, lane: int) -> None:
        """Sampled-mode lane step: one self-paced round by the lane's occupant."""
        assert self.kernel is not None
        round_number = self._lane_round[lane] + 1
        self._lane_round[lane] = round_number
        self._update_active_cohort(round_number)
        aggregator = self._lane_occupant(lane, round_number)
        self._free_running_round(aggregator, round_number)
        self.rounds_done[aggregator.name] = self.rounds_done.get(aggregator.name, 0) + 1
        self._lane_time[lane] = aggregator.clock.now()
        if round_number < self.ctx.num_rounds:
            self.kernel.schedule_at(
                aggregator.clock.now(),
                lambda: self._activate_lane(lane),
                key=f"lane-{lane}",
            )

    def finalize(self) -> None:
        """Drain leftover assigned scoring once every cluster finished."""
        self._drain_scoring()


class SemiSyncRoundPolicy(RoundPolicy):
    """Bounded-staleness buffered-async rounds (FedBuff-style).

    Clusters train and submit at their own pace, but the logical round only
    closes when ``quorum_k`` of them have submitted or ``max_staleness``
    simulated seconds have passed since the round opened.  A cluster that has
    already submitted to the open round *waits* for the close before starting
    its next round — that wait is the (bounded) idle price paid for keeping
    the federation's model versions within one round of each other.
    """

    mode = "semi"

    def __init__(
        self,
        ctx: OrchestrationContext,
        quorum_k: int,
        max_staleness: float,
    ):
        super().__init__(ctx)
        from repro.core.config import validate_semi_params

        validate_semi_params(quorum_k, max_staleness, len(ctx.aggregators))
        self.quorum_k = quorum_k
        self.max_staleness = max_staleness
        self.rounds_done: Dict[str, int] = {a.name: 0 for a in ctx.aggregators}
        #: clusters waiting for the open round to close before re-activating,
        #: as name -> (aggregator, lane); lane is ``None`` outside sampled
        #: mode, where clusters are their own permanent lane.
        self._blocked: Dict[str, tuple] = {}
        #: semi round each cluster's latest submission was buffered into.
        self._submitted_round: Dict[str, int] = {}
        #: submissions that have *landed* (reached their submitter's local
        #: completion time on the global timeline) in the open round — this,
        #: not the contract's eagerly-registered buffer, is what quorum and
        #: staleness decisions are made on.
        self._landed = 0
        #: set when the open round's staleness deadline passed with nothing
        #: landed yet: the next landing closes the round immediately, so a
        #: round never stays open past max_staleness once it has content.
        self._deadline_passed = False
        self._finished: set = set()
        self._timeout_event = None
        #: audit trail of round closures:
        #: (round, close_time, reason, landed, release_time).  "landed" is the
        #: policy's own count and can be smaller than the contract's
        #: SemiRoundClosed buffered count when submissions were registered
        #: on-chain but still in flight at close time; "release_time" is the
        #: closeSemiRound finality every same-round submitter resumed at (it
        #: equals close_time in constant-cost mode).
        self.closures: List[tuple] = []

    # ----------------------------------------------------------------- install
    def install(self, kernel: SimulationKernel) -> None:
        """Configure the contract's quorum, arm every cluster and the timeout."""
        self.kernel = kernel
        self.ctx.chain.send(
            self.ctx.driver, "unifyfl", "configureSemiRound", {"quorum_k": self.quorum_k}
        )
        self.ctx.chain.mine_until_empty()
        # Recorded for the chain accounting; nobody waits on the configuration
        # transaction (clusters start from their own clocks regardless).
        self._driver_chain_op("configureSemiRound", 0.0)
        if self.ctx.population is not None:
            for lane in range(self.ctx.population.cohort_size):
                self._lane_round[lane] = 0
                kernel.schedule_at(
                    0.0, lambda l=lane: self._activate_lane(l), key=f"lane-{lane}"
                )
            self._arm_timeout()
            return
        for aggregator in self.ctx.aggregators:
            kernel.schedule_at(
                aggregator.clock.now(),
                lambda a=aggregator: self._activate(a),
                key=aggregator.name,
            )
        self._arm_timeout()

    # ------------------------------------------------------------------ events
    def _activate(self, aggregator: "UnifyFLAggregator") -> None:
        """Run one self-paced cluster round starting at this event's time.

        The round's work is atomic (it advances the cluster's *local* clock
        past the kernel's global time), so quorum bookkeeping is deferred to a
        separate :meth:`_on_submission` event scheduled at the cluster's local
        submission time — that keeps round closes and staleness timeouts
        correctly ordered on the global timeline.
        """
        assert self.kernel is not None
        round_number = self.rounds_done[aggregator.name] + 1
        submitted = self._free_running_round(aggregator, round_number)
        self.rounds_done[aggregator.name] = round_number
        done = round_number >= self.ctx.num_rounds
        if done:
            self._finished.add(aggregator.name)

        if submitted:
            status = self.ctx.chain.call("unifyfl", "getSemiRoundStatus")
            self._submitted_round[aggregator.name] = status["round"]
            self.kernel.schedule_at(
                aggregator.clock.now(),
                lambda: self._on_submission(aggregator),
                key=aggregator.name,
            )
        elif not done:
            # Offline round: nothing was submitted, keep free-running.
            self._reactivate(aggregator)

        if self._all_finished() and self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None

    def _activate_lane(self, lane: int) -> None:
        """Sampled-mode lane step: one self-paced round by the lane's occupant."""
        assert self.kernel is not None
        round_number = self._lane_round[lane] + 1
        self._lane_round[lane] = round_number
        self._update_active_cohort(round_number)
        aggregator = self._lane_occupant(lane, round_number)
        submitted = self._free_running_round(aggregator, round_number)
        self.rounds_done[aggregator.name] = self.rounds_done.get(aggregator.name, 0) + 1
        done = round_number >= self.ctx.num_rounds
        if done:
            # Finished state is tracked per *lane*: the lane retires, its
            # last occupant does not block other lanes it may later join.
            self._finished.add(lane)
        self._lane_time[lane] = aggregator.clock.now()

        if submitted:
            status = self.ctx.chain.call("unifyfl", "getSemiRoundStatus")
            self._submitted_round[aggregator.name] = status["round"]
            self.kernel.schedule_at(
                aggregator.clock.now(),
                lambda: self._on_submission(aggregator, lane=lane),
                key=f"lane-{lane}",
            )
        elif not done:
            self._reactivate(aggregator, lane=lane)

        if self._all_finished() and self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None

    def _on_submission(
        self, aggregator: "UnifyFLAggregator", lane: Optional[int] = None
    ) -> None:
        """The cluster's submission lands (in global time): close or wait."""
        assert self.kernel is not None
        done = (lane in self._finished) if lane is not None else (
            aggregator.name in self._finished
        )
        status = self.ctx.chain.call("unifyfl", "getSemiRoundStatus")
        if status["round"] > self._submitted_round.get(aggregator.name, 0):
            # The round this cluster fed was closed while its submission was
            # in flight — it is free to continue immediately.
            if not done:
                self._reactivate(aggregator, lane=lane)
            return
        self._landed += 1
        if self._landed >= self.quorum_k:
            release_time = self._close_round(reason="quorum")
            if not done:
                # The quorum-triggering cluster waits for closeSemiRound
                # finality exactly like every blocked waiter — closing the
                # round is not a licence to skip the consensus wait.
                self._release(aggregator, release_time, lane=lane)
        elif self._deadline_passed:
            # The round is already past its staleness deadline; this first
            # landing gives it content, so it closes right away.
            release_time = self._close_round(reason="staleness")
            if not done:
                self._release(aggregator, release_time, lane=lane)
        elif not done:
            # Submitted to a round that is still open: wait for the close.
            self._blocked[aggregator.name] = (aggregator, lane)

    def _on_timeout(self) -> None:
        assert self.kernel is not None
        self._timeout_event = None
        if self._all_finished():
            return
        if self._landed > 0:
            self._close_round(reason="staleness")
        else:
            # Nothing has landed yet: an empty round cannot close, but the
            # deadline stands — the next landing closes it immediately.
            self._deadline_passed = True

    # --------------------------------------------------------------- internals
    def _reactivate(
        self, aggregator: "UnifyFLAggregator", lane: Optional[int] = None
    ) -> None:
        assert self.kernel is not None
        if lane is not None:
            # Sampled mode: the *lane* continues from this occupant's clock;
            # the next round's occupant may be a different cluster.
            self._lane_time[lane] = aggregator.clock.now()
            self.kernel.schedule_at(
                aggregator.clock.now(),
                lambda: self._activate_lane(lane),
                key=f"lane-{lane}",
            )
            return
        self.kernel.schedule_at(
            aggregator.clock.now(),
            lambda: self._activate(aggregator),
            key=aggregator.name,
        )

    def _arm_timeout(self) -> None:
        assert self.kernel is not None
        self._timeout_event = self.kernel.schedule_after(
            self.max_staleness, self._on_timeout, priority=1, key="semi-timeout"
        )

    def _release(
        self,
        aggregator: "UnifyFLAggregator",
        release_time: float,
        lane: Optional[int] = None,
    ) -> None:
        """Advance a same-round submitter to the close's finality and re-arm it.

        Shared by blocked waiters and the cluster whose landing triggered the
        close, so every submitter of a round resumes no earlier than
        ``release_time`` (in constant-cost mode finality is instant and the
        wait degenerates to zero).
        """
        waited = aggregator.clock.advance_to(release_time)
        self.ctx.add_idle(aggregator.name, waited)
        if aggregator.history:
            aggregator.history[-1].timing.idle_time += waited
        self._reactivate(aggregator, lane=lane)

    def _close_round(self, reason: str) -> float:
        """Close the open semi round on the contract and release waiters.

        Returns the release time — closeSemiRound finality — the caller must
        also hold its own triggering cluster to.
        """
        assert self.kernel is not None
        close_time = self.kernel.now()
        status = self.ctx.chain.call("unifyfl", "getSemiRoundStatus")
        self.ctx.chain.send(
            self.ctx.driver, "unifyfl", "closeSemiRound", {"timestamp": close_time}
        )
        self.ctx.chain.mine_until_empty()
        # Event streams: blocked clusters only learn of the close once the
        # closeSemiRound transaction is sealed — the quorum close is itself a
        # chain event, so its consensus latency is part of their wait.
        release_time = close_time + self._driver_chain_op("closeSemiRound", close_time)
        self.closures.append((status["round"], close_time, reason, self._landed, release_time))
        self._landed = 0
        self._deadline_passed = False

        if self._timeout_event is not None:
            self._timeout_event.cancel()
        if not self._all_finished():
            self._arm_timeout()
        else:
            self._timeout_event = None

        blocked = [self._blocked.pop(name) for name in sorted(self._blocked)]
        for aggregator, lane in blocked:
            self._release(aggregator, release_time, lane=lane)
        return release_time

    def _all_finished(self) -> bool:
        if self.ctx.population is not None:
            return len(self._finished) == self.ctx.population.cohort_size
        return len(self._finished) == len(self.ctx.aggregators)

    # ----------------------------------------------------------------- results
    def finalize(self) -> None:
        """Drain leftover assigned scoring once every cluster finished."""
        self._drain_scoring()

    def extras(self) -> Dict[str, object]:
        """Quorum/staleness closure statistics for the result document."""
        quorum = sum(1 for c in self.closures if c[2] == "quorum")
        staleness = sum(1 for c in self.closures if c[2] == "staleness")
        return {
            "semi_quorum_k": self.quorum_k,
            "max_staleness": self.max_staleness,
            "rounds_closed": len(self.closures),
            "quorum_closures": quorum,
            "staleness_closures": staleness,
            "closures": list(self.closures),
        }


class HierarchicalRoundPolicy(RoundPolicy):
    """Two-tier rounds: local site aggregation under a thin global tier.

    Clusters are grouped by topology site (the same ``i % num_sites``
    round-robin the event-stream fabric assigns home replicas with, so a
    group really is the set of clusters sharing a storage site).  One global
    round is:

    1. **global barrier** — everyone advances to the slowest cluster, serves
       any assigned scoring, and the round's *leader* of each group (a
       deterministic rotation over the group, skipping offline members)
       pulls the other groups' submitted models from the contract and
       broadcasts the merged model to its members over the (LAN) exchange
       links;
    2. **local tier** — ``local_rounds_per_global`` cheap aggregation
       rounds within each group: members train, shuttle their models to the
       leader, the leader merges the group model and shuttles it back.
       Nothing touches storage or chain, so a local round costs LAN
       transfers plus compute only;
    3. **global tier** — each group's leader submits the group model over
       the real storage/chain path (``submitModel``), paying WAN
       replication, link contention and block-interval finality when event
       streams are on.

    A ``round_budget`` caps the total local training rounds each cluster
    contributes across the run: an exhausted cluster keeps receiving group
    models (and can still lead and score) but trains no further — the
    per-cluster cost-control knob multi-site deployments need.
    """

    mode = "hierarchical"

    def __init__(
        self,
        ctx: OrchestrationContext,
        num_sites: int = 1,
        local_rounds_per_global: int = 2,
        round_budget: Optional[int] = None,
    ):
        super().__init__(ctx)
        # Range validation lives in HierarchicalOrchestrator (and, for
        # experiment configs, in ExperimentConfig); the policy trusts its
        # inputs and only clamps the site count to the federation size.
        aggregators = list(ctx.aggregators)
        self.num_sites = max(1, min(num_sites, len(aggregators)))
        self.local_rounds = local_rounds_per_global
        self.round_budget = round_budget
        #: groups[s] = clusters whose home site is s (fabric round-robin order).
        self.groups: List[List["UnifyFLAggregator"]] = [[] for _ in range(self.num_sites)]
        for i, aggregator in enumerate(aggregators):
            self.groups[i % self.num_sites].append(aggregator)
        self.budget_left: Dict[str, Optional[int]] = {
            a.name: round_budget for a in aggregators
        }
        #: (global_round, local_round) at which each cluster ran dry.
        self.budget_exhausted_at: Dict[str, tuple] = {}
        #: audit trail of leader elections: (global_round, site_index, name).
        self.leader_log: List[tuple] = []
        #: per-tier timing accumulators for the result document.
        self.tier_totals: Dict[str, float] = {
            "local_training_time": 0.0,
            "local_exchange_time": 0.0,
            "local_aggregation_time": 0.0,
            "local_idle_time": 0.0,
            "global_pull_time": 0.0,
            "global_aggregation_time": 0.0,
            "global_broadcast_time": 0.0,
            "global_store_time": 0.0,
            "global_chain_time": 0.0,
            "global_idle_time": 0.0,
            "global_scoring_time": 0.0,
        }

    # ----------------------------------------------------------------- install
    def install(self, kernel: SimulationKernel) -> None:
        """Schedule the first global round at the initial barrier time."""
        self.kernel = kernel
        barrier = max(a.clock.now() for a in self._participants(1))
        kernel.schedule_at(barrier, lambda: self._begin_round(1), key="hier-round")

    # ---------------------------------------------------------- helper pricing
    def _exchange(
        self,
        source: "UnifyFLAggregator",
        destination: "UnifyFLAggregator",
        payer: "UnifyFLAggregator",
    ) -> float:
        """Elapsed seconds to move one model ``source`` -> ``destination``.

        ``payer`` is the cluster whose clock the caller advances by the
        returned cost — the member pushing to its leader, or the member
        waiting out the leader's broadcast.  The transfer is committed at
        the payer's clock: by then the payload exists (a pusher just
        trained; a broadcast receiver was first advanced to the leader's
        clock), so the link reservation never precedes the model.  In
        constant-cost mode the payer's own profile prices the transfer,
        like every other legacy transfer.
        """
        if self.ctx.comm is not None:
            return self.ctx.comm.exchange(
                source.name, destination.name, at=payer.clock.now()
            )
        return self.ctx.timing.transfer_time(payer.config.aggregator_profile, 1)

    def _consume_budget(self, aggregator: "UnifyFLAggregator", global_round: int, local_round: int) -> bool:
        """Whether the cluster may train now; decrements the budget if so."""
        left = self.budget_left.get(aggregator.name, self.round_budget)
        if left is None:
            return True
        if left <= 0:
            return False
        self.budget_left[aggregator.name] = left - 1
        if left - 1 == 0:
            self.budget_exhausted_at[aggregator.name] = (global_round, local_round)
        return True

    # ------------------------------------------------------------ round events
    def _begin_round(self, global_round: int) -> None:
        from repro.core.timing import RoundTiming

        assert self.kernel is not None
        participants = list(self._participants(global_round))
        self._update_active_cohort(global_round)
        sampled = self.ctx.population is not None
        if sampled:
            # Cohorts change per round: site groups are rebuilt each round
            # with the same ``i % num_sites`` round-robin over the cohort.
            self.groups = [[] for _ in range(self.num_sites)]
            for i, aggregator in enumerate(participants):
                self.groups[i % self.num_sites].append(aggregator)
        barrier = max(a.clock.now() for a in participants)
        if sampled:
            barrier = max(barrier, self.kernel.now())
        timings: Dict[str, "RoundTiming"] = {}
        available: Dict[str, bool] = {}
        for aggregator in participants:
            waited = aggregator.clock.advance_to(barrier)
            if sampled and not aggregator.history:
                # A freshly materialised cohort member did not exist before
                # this barrier; catching its clock up is not idle waiting.
                waited = 0.0
            self.ctx.add_idle(aggregator.name, waited)
            self.tier_totals["global_idle_time"] += waited
            timings[aggregator.name] = RoundTiming(idle_time=waited)
            available[aggregator.name] = aggregator.is_available(global_round)
            aggregator._pulled_this_round = 0

        # Serve the scoring the previous round's leader submissions assigned.
        for aggregator in participants:
            if not available[aggregator.name]:
                continue
            score_timing = aggregator.score_assigned(before_time=aggregator.clock.now())
            timing = timings[aggregator.name]
            timing.scoring_time += score_timing.scoring_time
            timing.pull_time += score_timing.pull_time
            timing.chain_time += score_timing.chain_time
            self.tier_totals["global_scoring_time"] += score_timing.total_time

        for site_index, group in enumerate(self.groups):
            members = [m for m in group if available[m.name]]
            if not members:
                continue
            leader = group[(global_round - 1) % len(group)]
            if not available[leader.name]:
                # Deterministic fallback: the next available member in
                # rotation order takes the round.
                offset = (global_round - 1) % len(group)
                leader = next(
                    group[(offset + j) % len(group)]
                    for j in range(len(group))
                    if available[group[(offset + j) % len(group)].name]
                )
            self.leader_log.append((global_round, site_index, leader.name))
            self._run_group_round(global_round, group, members, leader, timings)

        for aggregator in participants:
            aggregator.record_round(
                global_round,
                timings[aggregator.name],
                offline=not available[aggregator.name],
            )

        if global_round < self.ctx.num_rounds:
            barrier = max(a.clock.now() for a in participants)
            self.kernel.schedule_at(
                barrier, lambda: self._begin_round(global_round + 1), key="hier-round"
            )

    def _run_group_round(
        self,
        global_round: int,
        group: List["UnifyFLAggregator"],
        members: List["UnifyFLAggregator"],
        leader: "UnifyFLAggregator",
        timings: Dict[str, "RoundTiming"],
    ) -> None:
        """One group's complete global round: pull, local tier, submission."""
        # --- global pull: the leader fetches the other groups' submissions.
        pull_timing = leader.build_global_model(before_time=leader.clock.now())
        leader_timing = timings[leader.name]
        leader_timing.pull_time += pull_timing.pull_time
        leader_timing.aggregation_time += pull_timing.aggregation_time
        self.tier_totals["global_pull_time"] += pull_timing.pull_time
        self.tier_totals["global_aggregation_time"] += pull_timing.aggregation_time

        # --- broadcast the merged global model to the group (LAN exchange).
        followers = [m for m in members if m.name != leader.name]
        for member in followers:
            waited = member.clock.advance_to(leader.clock.now())
            self.ctx.add_idle(member.name, waited)
            timings[member.name].idle_time += waited
            self.tier_totals["local_idle_time"] += waited
            elapsed = self._exchange(leader, member, payer=member)
            member.clock.advance(elapsed)
            timings[member.name].exchange_time += elapsed
            self.tier_totals["global_broadcast_time"] += elapsed
            member.global_weights = [np.array(w, copy=True) for w in leader.global_weights]

        # --- local tier: LAN-priced aggregation rounds around the leader.
        for local_round in range(1, self.local_rounds + 1):
            trained: List["UnifyFLAggregator"] = []
            for member in members:
                if not self._consume_budget(member, global_round, local_round):
                    continue
                train_timing = member.local_training_round()
                timing = timings[member.name]
                timing.client_training_time += train_timing.client_training_time
                timing.aggregation_time += train_timing.aggregation_time
                self.tier_totals["local_training_time"] += train_timing.client_training_time
                self.tier_totals["local_aggregation_time"] += train_timing.aggregation_time
                trained.append(member)
            # Members shuttle their fresh models to the leader...
            for member in trained:
                if member.name == leader.name:
                    continue
                elapsed = self._exchange(member, leader, payer=member)
                member.clock.advance(elapsed)
                timings[member.name].exchange_time += elapsed
                self.tier_totals["local_exchange_time"] += elapsed
            # ...the leader waits for the slowest shuttle and merges...
            arrival = max([leader.clock.now()] + [m.clock.now() for m in trained])
            waited = leader.clock.advance_to(arrival)
            self.ctx.add_idle(leader.name, waited)
            leader_timing.idle_time += waited
            self.tier_totals["local_idle_time"] += waited
            weight_sets = [m.local_weights for m in trained if m.name != leader.name]
            weight_sets.append(leader.local_weights)
            group_model = leader.strategy.aggregate_weight_sets(leader.local_weights, weight_sets)
            merge_time = self.ctx.timing.aggregation_time(leader.config, len(weight_sets))
            leader.clock.advance(merge_time)
            leader_timing.aggregation_time += merge_time
            self.tier_totals["local_aggregation_time"] += merge_time
            leader.local_weights = group_model
            leader.global_weights = [np.array(w, copy=True) for w in group_model]
            # ...and shuttles the merged group model back.
            for member in followers:
                waited = member.clock.advance_to(leader.clock.now())
                self.ctx.add_idle(member.name, waited)
                timings[member.name].idle_time += waited
                self.tier_totals["local_idle_time"] += waited
                elapsed = self._exchange(leader, member, payer=member)
                member.clock.advance(elapsed)
                timings[member.name].exchange_time += elapsed
                self.tier_totals["local_exchange_time"] += elapsed
                member.global_weights = [np.array(w, copy=True) for w in group_model]

        # --- global tier: only the leader crosses WAN/chain.
        _, submit_timing = leader.submit_local_model()
        leader_timing.store_time += submit_timing.store_time
        leader_timing.chain_time += submit_timing.chain_time
        self.tier_totals["global_store_time"] += submit_timing.store_time
        self.tier_totals["global_chain_time"] += submit_timing.chain_time

    # ----------------------------------------------------------------- results
    def finalize(self) -> None:
        """Drain leftover assigned scoring once every group finished.

        The drained effort belongs to the global tier's scoring service (it
        is the tail of the last round's leader submissions), so it is added
        to ``tier_totals`` — the per-tier breakdown sums exactly to the
        cluster clocks.
        """
        before = {a.name: a.clock.now() for a in self.ctx.aggregators}
        self._drain_scoring()
        self.tier_totals["global_scoring_time"] += sum(
            a.clock.now() - before[a.name] for a in self.ctx.aggregators
        )

    def extras(self) -> Dict[str, object]:
        """Per-tier timing breakdown and leadership/budget audit trails."""
        return {
            "num_sites": self.num_sites,
            "local_rounds_per_global": self.local_rounds,
            "round_budget": self.round_budget if self.round_budget is not None else 0,
            "groups": {
                str(site): [m.name for m in group] for site, group in enumerate(self.groups)
            },
            "leaders": list(self.leader_log),
            "tier_totals": dict(self.tier_totals),
            "budget_exhausted": dict(self.budget_exhausted_at),
        }


class GossipRoundPolicy(RoundPolicy):
    """Barrier-free epidemic rounds: pull a few peers, merge, train, publish.

    Every cluster free-runs like async, but instead of pulling *every*
    peer's latest model through the contract view it exchanges with
    ``gossip_fanout`` peers chosen by a deterministic seeded draw per
    (cluster, round).  An exchange pulls the peer's last *published* model
    by CID through the storage fabric — so link contention,
    read-your-writes availability gating and lazy on-demand replication all
    price the exchange when event streams are on — and the merged model is
    trained and re-published (upload + ``submitModel`` finality).  With
    ``gossip_fanout=0`` nothing is exchanged and every cluster trains in
    isolation.  There is no global round to close, so convergence is a
    per-cluster time series, not a federation barrier.
    """

    mode = "gossip"

    def __init__(self, ctx: OrchestrationContext, fanout: int = 2, seed: int = 0):
        super().__init__(ctx)
        if fanout < 0:
            raise ValueError("gossip fanout must be non-negative")
        self.fanout = fanout
        self.seed = seed
        self.rounds_done: Dict[str, int] = {a.name: 0 for a in ctx.aggregators}
        self._index: Dict[str, int] = {a.name: i for i, a in enumerate(ctx.aggregators)}
        #: publication history per cluster, as (cid, publish_time) in time
        #: order.  A puller sees the peer's *latest visible* publication —
        #: the last one whose publish time its own clock has passed — so a
        #: fast-rounding peer's newer model never hides the older one a
        #: slower puller could causally know of.
        self._published: Dict[str, List[tuple]] = {}
        #: audit trail: (round, puller, peer, elapsed_seconds).
        self.exchange_log: List[tuple] = []
        #: exchanges skipped because the peer had published nothing visible.
        self.missed_exchanges = 0

    # ----------------------------------------------------------------- install
    def install(self, kernel: SimulationKernel) -> None:
        """Arm every cluster's first activation at its own local clock."""
        self.kernel = kernel
        if self.ctx.population is not None:
            for lane in range(self.ctx.population.cohort_size):
                self._lane_round[lane] = 0
                kernel.schedule_at(
                    0.0, lambda l=lane: self._activate_lane(l), key=f"lane-{lane}"
                )
            return
        for aggregator in self.ctx.aggregators:
            kernel.schedule_at(
                aggregator.clock.now(),
                lambda a=aggregator: self._activate(a),
                key=aggregator.name,
            )

    # ------------------------------------------------------------------ events
    def _select_peers(self, aggregator: "UnifyFLAggregator", round_number: int) -> List["UnifyFLAggregator"]:
        """The deterministic seeded fanout draw for one (cluster, round)."""
        others = [a for a in self.ctx.aggregators if a.name != aggregator.name]
        k = min(self.fanout, len(others))
        if k <= 0:
            return []
        rng = np.random.default_rng(
            [self.seed, round_number, self._index[aggregator.name]]
        )
        chosen = sorted(rng.choice(len(others), size=k, replace=False).tolist())
        return [others[i] for i in chosen]

    def _select_lane_peers(
        self,
        participants: Sequence["UnifyFLAggregator"],
        lane: int,
        round_number: int,
    ) -> List["UnifyFLAggregator"]:
        """Sampled-mode fanout draw: peers come from the round's cohort.

        The draw is keyed on the *lane* (the cohort slot), not the cluster,
        so it is independent of which virtual cluster happens to occupy the
        slot this round.
        """
        others = [a for i, a in enumerate(participants) if i != lane]
        k = min(self.fanout, len(others))
        if k <= 0:
            return []
        rng = np.random.default_rng([self.seed, round_number, lane])
        chosen = sorted(rng.choice(len(others), size=k, replace=False).tolist())
        return [others[i] for i in chosen]

    def _activate(self, aggregator: "UnifyFLAggregator") -> None:
        assert self.kernel is not None
        round_number = self.rounds_done[aggregator.name] + 1
        self.rounds_done[aggregator.name] = round_number
        done = round_number >= self.ctx.num_rounds
        self._run_round(
            aggregator, round_number, self._select_peers(aggregator, round_number)
        )
        if not done:
            self._reactivate(aggregator)

    def _activate_lane(self, lane: int) -> None:
        """Sampled-mode lane step: one gossip round by the lane's occupant."""
        assert self.kernel is not None
        assert self.ctx.population is not None
        round_number = self._lane_round[lane] + 1
        self._lane_round[lane] = round_number
        participants = self.ctx.population.round_aggregators(round_number)
        aggregator = self._lane_occupant(lane, round_number)
        self.rounds_done[aggregator.name] = self.rounds_done.get(aggregator.name, 0) + 1
        self._run_round(
            aggregator,
            round_number,
            self._select_lane_peers(participants, lane, round_number),
        )
        self._lane_time[lane] = aggregator.clock.now()
        if round_number < self.ctx.num_rounds:
            self.kernel.schedule_at(
                aggregator.clock.now(),
                lambda: self._activate_lane(lane),
                key=f"lane-{lane}",
            )

    def _run_round(
        self,
        aggregator: "UnifyFLAggregator",
        round_number: int,
        peers: Sequence["UnifyFLAggregator"],
    ) -> None:
        """One cluster's complete gossip round: pull peers, merge, train, publish."""
        from repro.core.timing import RoundTiming

        if not aggregator.is_available(round_number):
            downtime = self.ctx.timing.client_training_time(aggregator.config, jitter=False)
            aggregator.clock.advance(downtime)
            aggregator.record_round(round_number, RoundTiming(idle_time=downtime), offline=True)
            return

        timing = RoundTiming()
        peer_weight_sets = []
        for peer in peers:
            cid = self._latest_visible(peer.name, aggregator.clock.now())
            if cid is None:
                # The peer has published nothing this cluster could know of
                # yet — gossip is best-effort, the exchange is simply missed.
                self.missed_exchanges += 1
                continue
            weights = aggregator.fetch_weights(cid)
            if self.ctx.comm is not None:
                elapsed = self.ctx.comm.gossip_pull(aggregator.name, aggregator.clock.now(), cid)
            else:
                elapsed = self.ctx.timing.transfer_time(aggregator.config.aggregator_profile, 1)
            aggregator.clock.advance(elapsed)
            timing.exchange_time += elapsed
            self.exchange_log.append((round_number, aggregator.name, peer.name, elapsed))
            peer_weight_sets.append(weights)

        if peer_weight_sets:
            aggregator.global_weights = aggregator.strategy.aggregate_weight_sets(
                aggregator.local_weights, peer_weight_sets + [aggregator.local_weights]
            )
        else:
            aggregator.global_weights = [np.array(w, copy=True) for w in aggregator.local_weights]
        merge_time = self.ctx.timing.aggregation_time(aggregator.config, len(peer_weight_sets) + 1)
        aggregator.clock.advance(merge_time)
        timing.aggregation_time += merge_time

        train_timing = aggregator.local_training_round()
        timing.client_training_time += train_timing.client_training_time
        timing.aggregation_time += train_timing.aggregation_time

        cid, submit_timing = aggregator.submit_local_model()
        timing.store_time += submit_timing.store_time
        timing.chain_time += submit_timing.chain_time
        self._published.setdefault(aggregator.name, []).append(
            (cid, aggregator.clock.now())
        )

        aggregator._pulled_this_round = len(peer_weight_sets)
        aggregator.record_round(round_number, timing)

    def _latest_visible(self, peer: str, now: float) -> Optional[str]:
        """The peer's newest CID whose publication ``now`` has passed."""
        for cid, publish_time in reversed(self._published.get(peer, [])):
            if publish_time <= now:
                return cid
        return None

    def _reactivate(self, aggregator: "UnifyFLAggregator") -> None:
        assert self.kernel is not None
        self.kernel.schedule_at(
            aggregator.clock.now(),
            lambda: self._activate(aggregator),
            key=aggregator.name,
        )

    # ----------------------------------------------------------------- results
    def extras(self) -> Dict[str, object]:
        """Per-exchange breakdown: who pulled from whom, at what cost."""
        per_cluster: Dict[str, int] = {a.name: 0 for a in self.ctx.aggregators}
        for _, puller, _, _ in self.exchange_log:
            per_cluster[puller] += 1
        final_accuracy = {
            a.name: (a.history[-1].global_accuracy if a.history else float("nan"))
            for a in self.ctx.aggregators
        }
        return {
            "gossip_fanout": self.fanout,
            "exchange_count": len(self.exchange_log),
            "exchange_time": sum(e[3] for e in self.exchange_log),
            "missed_exchanges": self.missed_exchanges,
            "per_cluster_exchanges": per_cluster,
            "per_cluster_final_accuracy": final_accuracy,
            "exchanges": list(self.exchange_log),
        }
