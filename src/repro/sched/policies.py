"""Round policies: the pluggable "what happens when" of orchestration.

A :class:`RoundPolicy` owns the domain logic of one orchestration mode and
expresses it as events on a :class:`~repro.sched.kernel.SimulationKernel`:

* :class:`SyncRoundPolicy` — lock-step rounds with fixed training/scoring
  windows (the paper's Sync mode, Section 3.2).  Each round is three events:
  round start (barrier + training), training-window close (scoring), and
  scoring-window close (round end + bookkeeping).
* :class:`AsyncRoundPolicy` — every cluster is its own event stream (the
  paper's Async mode, Section 3.3).  The next cluster to act is always the
  earliest event in the heap, replacing the old O(n) scan over all
  aggregators with an O(log n) pop.
* :class:`SemiSyncRoundPolicy` — bounded-staleness buffered-async
  (FedBuff-style): clusters run at their own pace, but a logical round only
  closes once ``quorum_k`` clusters have submitted *or* ``max_staleness``
  simulated seconds have elapsed, and a cluster that already submitted to the
  open round waits for it to close before starting its next one.

Writing a new mode means subclassing :class:`RoundPolicy`, scheduling initial
events in :meth:`~RoundPolicy.install`, and letting handlers schedule their
successors.  See ``docs/scheduling.md`` for a walk-through.

When the :class:`OrchestrationContext` carries a
:class:`~repro.sched.actors.CommFabric`, the policies consume the network and
chain *event streams* instead of constant per-interaction costs: phase
transitions wait for their transactions to seal, submission-cost predictions
read the live link schedule (including, under lazy replication, the possible
on-demand fetch a consumer of the submission would wait behind), and the
semi-sync quorum close releases waiters only at transaction finality.
Without a fabric every hook degenerates to a zero-cost no-op, preserving
bit-identical constant-cost runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.sched.kernel import SimulationKernel

# No module-level repro.core imports here: repro.core.__init__ imports the
# orchestrators, which import this module — eager imports in both directions
# would break whichever package is imported first.  Runtime needs are imported
# inside the handful of methods that use them.
if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.chain.account import Account
    from repro.chain.blockchain import Blockchain
    from repro.core.aggregator import UnifyFLAggregator
    from repro.core.timing import ClusterTimingModel, RoundTiming
    from repro.sched.actors import CommFabric


@dataclass
class OrchestrationContext:
    """Everything a round policy needs to drive a federation."""

    chain: "Blockchain"
    driver: "Account"
    aggregators: Sequence["UnifyFLAggregator"]
    timing: "ClusterTimingModel"
    num_rounds: int
    #: shared per-aggregator accumulators, owned by the orchestrator facade.
    idle_totals: Dict[str, float] = field(default_factory=dict)
    straggles: Dict[str, int] = field(default_factory=dict)
    #: the event-stream communication fabric, or ``None`` for constant costs.
    #: When set, policies charge the driver's phase-control transactions
    #: (startTraining / startScoring / endRound / closeSemiRound) as chain
    #: events and predict submission costs from the live link schedule.
    comm: Optional["CommFabric"] = None

    def add_idle(self, name: str, waited: float) -> None:
        """Accumulate ``waited`` idle seconds against aggregator ``name``."""
        self.idle_totals[name] = self.idle_totals.get(name, 0.0) + waited


class RoundPolicy:
    """Base class for orchestration modes expressed as kernel event streams."""

    mode = "base"

    def __init__(self, ctx: OrchestrationContext):
        self.ctx = ctx
        self.kernel: Optional[SimulationKernel] = None

    def install(self, kernel: SimulationKernel) -> None:
        """Schedule the policy's initial events on ``kernel``."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Run once after the kernel drains (e.g. leftover-scoring cleanup)."""

    def extras(self) -> Dict[str, object]:
        """Policy-specific result annotations (quorum stats, closures, ...)."""
        return {}

    # ------------------------------------------------------------ shared steps
    def _driver_chain_op(self, kind: str, at: float, num_transactions: int = 1) -> float:
        """Charge one driver (orchestrator) transaction to the chain stream.

        Returns the finality delay in event-stream mode, ``0.0`` in
        constant-cost mode — phase-control transactions were always free
        there, and staying free is what keeps default runs bit-identical.
        """
        if self.ctx.comm is None:
            return 0.0
        return self.ctx.comm.chain_op(kind, "driver", at=at, num_transactions=num_transactions)

    def _submission_cost(self, aggregator: "UnifyFLAggregator") -> float:
        """Predicted cost of submitting one model right now.

        Event-stream mode chains the contended store, the chain finality
        and — under lazy replication — the possible on-demand origin→peer
        fetch a remote consumer would wait behind, so the sync straggler
        decision does not declare a cluster window-safe on the strength of a
        submission no other site could read in time.
        """
        if self.ctx.comm is not None:
            return self.ctx.comm.estimate_submission(aggregator.name, aggregator.clock.now())
        return self.ctx.timing.transfer_time(aggregator.config.aggregator_profile, 1) + \
            self.ctx.timing.chain_interaction_time(1)

    def _free_running_round(self, aggregator: "UnifyFLAggregator", round_number: int) -> bool:
        """One self-paced cluster round (the async/semi work unit).

        Returns True when the cluster actually trained and submitted, False
        when it sat the round out offline (fault injection).
        """
        from repro.core.timing import RoundTiming

        now = aggregator.clock.now()
        if not aggregator.is_available():
            downtime = self.ctx.timing.client_training_time(aggregator.config, jitter=False)
            aggregator.clock.advance(downtime)
            aggregator.record_round(round_number, RoundTiming(idle_time=downtime), offline=True)
            return False
        # Idle clusters first serve the scoring requests assigned to them.
        score_timing = aggregator.score_assigned(before_time=now)
        pull_timing = aggregator.build_global_model(before_time=aggregator.clock.now())
        train_timing = aggregator.local_training_round()
        _, submit_timing = aggregator.submit_local_model()

        timing = RoundTiming(
            pull_time=pull_timing.pull_time + score_timing.pull_time,
            client_training_time=train_timing.client_training_time,
            aggregation_time=pull_timing.aggregation_time + train_timing.aggregation_time,
            store_time=submit_timing.store_time,
            chain_time=submit_timing.chain_time + score_timing.chain_time,
            scoring_time=score_timing.scoring_time,
        )
        aggregator.record_round(round_number, timing, straggled=False)
        return True

    def _drain_scoring(self) -> None:
        """Score any work still queued so final score lists are complete.

        The drained effort is folded into each aggregator's *last* round
        record, so summing per-round timings equals the cluster's clock —
        previously the drain advanced the clock but left the records short.
        """
        for aggregator in sorted(self.ctx.aggregators, key=lambda a: a.clock.now()):
            drain_timing = aggregator.score_assigned(before_time=aggregator.clock.now())
            if aggregator.history and drain_timing.total_time > 0:
                last = aggregator.history[-1].timing
                last.scoring_time += drain_timing.scoring_time
                last.pull_time += drain_timing.pull_time
                last.chain_time += drain_timing.chain_time


class SyncRoundPolicy(RoundPolicy):
    """Lock-step rounds with fixed phase windows (Section 3.2)."""

    mode = "sync"

    def __init__(
        self,
        ctx: OrchestrationContext,
        training_window: float,
        scoring_window: float,
    ):
        super().__init__(ctx)
        self.training_window = training_window
        self.scoring_window = scoring_window
        #: clusters that missed the submission window and owe a late submission.
        self.pending_late: Dict[str, bool] = {a.name: False for a in ctx.aggregators}
        self._round_timings: Dict[str, "RoundTiming"] = {}
        self._straggled: Dict[str, bool] = {}
        self._offline: Dict[str, bool] = {}

    def install(self, kernel: SimulationKernel) -> None:
        """Schedule the first round start at the initial barrier time."""
        self.kernel = kernel
        barrier = max(a.clock.now() for a in self.ctx.aggregators)
        kernel.schedule_at(barrier, lambda: self._begin_round(1), key="sync-round")

    # ------------------------------------------------------------ phase events
    def _begin_round(self, round_number: int) -> None:
        """Barrier + training phase; schedules the training-window close."""
        from repro.core.timing import RoundTiming

        assert self.kernel is not None
        barrier = max(a.clock.now() for a in self.ctx.aggregators)
        self.ctx.chain.send(self.ctx.driver, "unifyfl", "startTraining")
        self.ctx.chain.mine_until_empty()
        # Event streams: training starts when the startTraining transaction is
        # final on-chain, not the instant the driver broadcast it.
        phase_start = barrier + self._driver_chain_op("startTraining", barrier)
        barrier_waits: Dict[str, float] = {}
        for aggregator in self.ctx.aggregators:
            waited = aggregator.clock.advance_to(phase_start)
            self.ctx.add_idle(aggregator.name, waited)
            barrier_waits[aggregator.name] = waited
        self._round_timings = {}
        self._straggled = {}
        self._offline = {}
        for aggregator in self.ctx.aggregators:
            # The wait for the barrier / startTraining finality belongs to this
            # round's books (zero in constant-cost mode, where clusters are
            # already aligned when a round begins).
            timing = RoundTiming(idle_time=barrier_waits[aggregator.name])
            # Fault injection: an unavailable organisation sits the round out.
            if not aggregator.is_available():
                self._offline[aggregator.name] = True
                self._straggled[aggregator.name] = False
                self._round_timings[aggregator.name] = timing
                continue
            self._offline[aggregator.name] = False
            # A cluster that straggled last round submits its stale model first.
            if self.pending_late[aggregator.name]:
                cid, late_timing = aggregator.submit_local_model()
                timing.store_time += late_timing.store_time
                timing.chain_time += late_timing.chain_time
                self.pending_late[aggregator.name] = False
            pull_timing = aggregator.build_global_model()
            train_timing = aggregator.local_training_round()
            timing.pull_time += pull_timing.pull_time
            timing.aggregation_time += pull_timing.aggregation_time + train_timing.aggregation_time
            timing.client_training_time += train_timing.client_training_time
            elapsed = aggregator.clock.now() - phase_start
            submit_cost = self._submission_cost(aggregator)
            if elapsed + submit_cost <= self.training_window:
                _, submit_timing = aggregator.submit_local_model()
                timing.store_time += submit_timing.store_time
                timing.chain_time += submit_timing.chain_time
                self._straggled[aggregator.name] = False
            else:
                # Missed the submission window: submit next round instead.
                self._straggled[aggregator.name] = True
                self.pending_late[aggregator.name] = True
                self.ctx.straggles[aggregator.name] += 1
            self._round_timings[aggregator.name] = timing

        self.kernel.schedule_at(
            phase_start + self.training_window,
            lambda: self._close_training(round_number),
            key="sync-round",
        )

    def _close_training(self, round_number: int) -> None:
        """Training window elapses: everyone idles to it, scoring begins."""
        assert self.kernel is not None
        window_end = self.kernel.now()
        self.ctx.chain.send(self.ctx.driver, "unifyfl", "startScoring")
        self.ctx.chain.mine_until_empty()
        # Event streams: scoring starts once startScoring is sealed on-chain.
        scoring_start = window_end + self._driver_chain_op("startScoring", window_end)
        for aggregator in self.ctx.aggregators:
            waited = aggregator.clock.advance_to(scoring_start)
            self.ctx.add_idle(aggregator.name, waited)
            self._round_timings[aggregator.name].idle_time += waited

        for aggregator in self.ctx.aggregators:
            if self._offline.get(aggregator.name, False):
                continue
            score_timing = aggregator.score_assigned()
            timing = self._round_timings[aggregator.name]
            timing.scoring_time += score_timing.scoring_time
            timing.pull_time += score_timing.pull_time
            timing.chain_time += score_timing.chain_time

        self.kernel.schedule_at(
            scoring_start + self.scoring_window,
            lambda: self._close_scoring(round_number),
            key="sync-round",
        )

    def _close_scoring(self, round_number: int) -> None:
        """Scoring window elapses: close the round and start the next one."""
        assert self.kernel is not None
        scoring_end = self.kernel.now()
        self.ctx.chain.send(self.ctx.driver, "unifyfl", "endRound")
        self.ctx.chain.mine_until_empty()
        # Event streams: the round (and its reward bookkeeping) is only over
        # once the endRound transaction is sealed.
        round_end = scoring_end + self._driver_chain_op("endRound", scoring_end)
        for aggregator in self.ctx.aggregators:
            waited = aggregator.clock.advance_to(round_end)
            self.ctx.add_idle(aggregator.name, waited)
            self._round_timings[aggregator.name].idle_time += waited

        for aggregator in self.ctx.aggregators:
            aggregator.record_round(
                round_number,
                self._round_timings[aggregator.name],
                straggled=self._straggled.get(aggregator.name, False),
                offline=self._offline.get(aggregator.name, False),
            )

        if round_number < self.ctx.num_rounds:
            barrier = max(a.clock.now() for a in self.ctx.aggregators)
            self.kernel.schedule_at(
                barrier, lambda: self._begin_round(round_number + 1), key="sync-round"
            )


class AsyncRoundPolicy(RoundPolicy):
    """Free-running clusters; the earliest heap event is always next (3.3)."""

    mode = "async"

    def __init__(self, ctx: OrchestrationContext):
        super().__init__(ctx)
        self.rounds_done: Dict[str, int] = {a.name: 0 for a in ctx.aggregators}

    def install(self, kernel: SimulationKernel) -> None:
        """Arm every cluster's first activation at its own local clock."""
        self.kernel = kernel
        for aggregator in self.ctx.aggregators:
            kernel.schedule_at(
                aggregator.clock.now(),
                lambda a=aggregator: self._activate(a),
                key=aggregator.name,
            )

    def _activate(self, aggregator: "UnifyFLAggregator") -> None:
        assert self.kernel is not None
        round_number = self.rounds_done[aggregator.name] + 1
        self._free_running_round(aggregator, round_number)
        self.rounds_done[aggregator.name] = round_number
        if round_number < self.ctx.num_rounds:
            # Re-arm this cluster at its new local time: an O(log n) push,
            # not an O(n) rescan of every aggregator.
            self.kernel.schedule_at(
                aggregator.clock.now(),
                lambda: self._activate(aggregator),
                key=aggregator.name,
            )

    def finalize(self) -> None:
        """Drain leftover assigned scoring once every cluster finished."""
        self._drain_scoring()


class SemiSyncRoundPolicy(RoundPolicy):
    """Bounded-staleness buffered-async rounds (FedBuff-style).

    Clusters train and submit at their own pace, but the logical round only
    closes when ``quorum_k`` of them have submitted or ``max_staleness``
    simulated seconds have passed since the round opened.  A cluster that has
    already submitted to the open round *waits* for the close before starting
    its next round — that wait is the (bounded) idle price paid for keeping
    the federation's model versions within one round of each other.
    """

    mode = "semi"

    def __init__(
        self,
        ctx: OrchestrationContext,
        quorum_k: int,
        max_staleness: float,
    ):
        super().__init__(ctx)
        from repro.core.config import validate_semi_params

        validate_semi_params(quorum_k, max_staleness, len(ctx.aggregators))
        self.quorum_k = quorum_k
        self.max_staleness = max_staleness
        self.rounds_done: Dict[str, int] = {a.name: 0 for a in ctx.aggregators}
        #: clusters waiting for the open round to close before re-activating.
        self._blocked: Dict[str, "UnifyFLAggregator"] = {}
        #: semi round each cluster's latest submission was buffered into.
        self._submitted_round: Dict[str, int] = {}
        #: submissions that have *landed* (reached their submitter's local
        #: completion time on the global timeline) in the open round — this,
        #: not the contract's eagerly-registered buffer, is what quorum and
        #: staleness decisions are made on.
        self._landed = 0
        #: set when the open round's staleness deadline passed with nothing
        #: landed yet: the next landing closes the round immediately, so a
        #: round never stays open past max_staleness once it has content.
        self._deadline_passed = False
        self._finished: set = set()
        self._timeout_event = None
        #: audit trail of round closures:
        #: (round, close_time, reason, landed, release_time).  "landed" is the
        #: policy's own count and can be smaller than the contract's
        #: SemiRoundClosed buffered count when submissions were registered
        #: on-chain but still in flight at close time; "release_time" is the
        #: closeSemiRound finality every same-round submitter resumed at (it
        #: equals close_time in constant-cost mode).
        self.closures: List[tuple] = []

    # ----------------------------------------------------------------- install
    def install(self, kernel: SimulationKernel) -> None:
        """Configure the contract's quorum, arm every cluster and the timeout."""
        self.kernel = kernel
        self.ctx.chain.send(
            self.ctx.driver, "unifyfl", "configureSemiRound", {"quorum_k": self.quorum_k}
        )
        self.ctx.chain.mine_until_empty()
        # Recorded for the chain accounting; nobody waits on the configuration
        # transaction (clusters start from their own clocks regardless).
        self._driver_chain_op("configureSemiRound", 0.0)
        for aggregator in self.ctx.aggregators:
            kernel.schedule_at(
                aggregator.clock.now(),
                lambda a=aggregator: self._activate(a),
                key=aggregator.name,
            )
        self._arm_timeout()

    # ------------------------------------------------------------------ events
    def _activate(self, aggregator: "UnifyFLAggregator") -> None:
        """Run one self-paced cluster round starting at this event's time.

        The round's work is atomic (it advances the cluster's *local* clock
        past the kernel's global time), so quorum bookkeeping is deferred to a
        separate :meth:`_on_submission` event scheduled at the cluster's local
        submission time — that keeps round closes and staleness timeouts
        correctly ordered on the global timeline.
        """
        assert self.kernel is not None
        round_number = self.rounds_done[aggregator.name] + 1
        submitted = self._free_running_round(aggregator, round_number)
        self.rounds_done[aggregator.name] = round_number
        done = round_number >= self.ctx.num_rounds
        if done:
            self._finished.add(aggregator.name)

        if submitted:
            status = self.ctx.chain.call("unifyfl", "getSemiRoundStatus")
            self._submitted_round[aggregator.name] = status["round"]
            self.kernel.schedule_at(
                aggregator.clock.now(),
                lambda: self._on_submission(aggregator),
                key=aggregator.name,
            )
        elif not done:
            # Offline round: nothing was submitted, keep free-running.
            self._reactivate(aggregator)

        if self._all_finished() and self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None

    def _on_submission(self, aggregator: "UnifyFLAggregator") -> None:
        """The cluster's submission lands (in global time): close or wait."""
        assert self.kernel is not None
        done = aggregator.name in self._finished
        status = self.ctx.chain.call("unifyfl", "getSemiRoundStatus")
        if status["round"] > self._submitted_round.get(aggregator.name, 0):
            # The round this cluster fed was closed while its submission was
            # in flight — it is free to continue immediately.
            if not done:
                self._reactivate(aggregator)
            return
        self._landed += 1
        if self._landed >= self.quorum_k:
            release_time = self._close_round(reason="quorum")
            if not done:
                # The quorum-triggering cluster waits for closeSemiRound
                # finality exactly like every blocked waiter — closing the
                # round is not a licence to skip the consensus wait.
                self._release(aggregator, release_time)
        elif self._deadline_passed:
            # The round is already past its staleness deadline; this first
            # landing gives it content, so it closes right away.
            release_time = self._close_round(reason="staleness")
            if not done:
                self._release(aggregator, release_time)
        elif not done:
            # Submitted to a round that is still open: wait for the close.
            self._blocked[aggregator.name] = aggregator

    def _on_timeout(self) -> None:
        assert self.kernel is not None
        self._timeout_event = None
        if self._all_finished():
            return
        if self._landed > 0:
            self._close_round(reason="staleness")
        else:
            # Nothing has landed yet: an empty round cannot close, but the
            # deadline stands — the next landing closes it immediately.
            self._deadline_passed = True

    # --------------------------------------------------------------- internals
    def _reactivate(self, aggregator: "UnifyFLAggregator") -> None:
        assert self.kernel is not None
        self.kernel.schedule_at(
            aggregator.clock.now(),
            lambda: self._activate(aggregator),
            key=aggregator.name,
        )

    def _arm_timeout(self) -> None:
        assert self.kernel is not None
        self._timeout_event = self.kernel.schedule_after(
            self.max_staleness, self._on_timeout, priority=1, key="semi-timeout"
        )

    def _release(self, aggregator: "UnifyFLAggregator", release_time: float) -> None:
        """Advance a same-round submitter to the close's finality and re-arm it.

        Shared by blocked waiters and the cluster whose landing triggered the
        close, so every submitter of a round resumes no earlier than
        ``release_time`` (in constant-cost mode finality is instant and the
        wait degenerates to zero).
        """
        waited = aggregator.clock.advance_to(release_time)
        self.ctx.add_idle(aggregator.name, waited)
        if aggregator.history:
            aggregator.history[-1].timing.idle_time += waited
        self._reactivate(aggregator)

    def _close_round(self, reason: str) -> float:
        """Close the open semi round on the contract and release waiters.

        Returns the release time — closeSemiRound finality — the caller must
        also hold its own triggering cluster to.
        """
        assert self.kernel is not None
        close_time = self.kernel.now()
        status = self.ctx.chain.call("unifyfl", "getSemiRoundStatus")
        self.ctx.chain.send(
            self.ctx.driver, "unifyfl", "closeSemiRound", {"timestamp": close_time}
        )
        self.ctx.chain.mine_until_empty()
        # Event streams: blocked clusters only learn of the close once the
        # closeSemiRound transaction is sealed — the quorum close is itself a
        # chain event, so its consensus latency is part of their wait.
        release_time = close_time + self._driver_chain_op("closeSemiRound", close_time)
        self.closures.append((status["round"], close_time, reason, self._landed, release_time))
        self._landed = 0
        self._deadline_passed = False

        if self._timeout_event is not None:
            self._timeout_event.cancel()
        if not self._all_finished():
            self._arm_timeout()
        else:
            self._timeout_event = None

        blocked = [self._blocked.pop(name) for name in sorted(self._blocked)]
        for aggregator in blocked:
            self._release(aggregator, release_time)
        return release_time

    def _all_finished(self) -> bool:
        return len(self._finished) == len(self.ctx.aggregators)

    # ----------------------------------------------------------------- results
    def finalize(self) -> None:
        """Drain leftover assigned scoring once every cluster finished."""
        self._drain_scoring()

    def extras(self) -> Dict[str, object]:
        """Quorum/staleness closure statistics for the result document."""
        quorum = sum(1 for c in self.closures if c[2] == "quorum")
        staleness = sum(1 for c in self.closures if c[2] == "staleness")
        return {
            "semi_quorum_k": self.quorum_k,
            "max_staleness": self.max_staleness,
            "rounds_closed": len(self.closures),
            "quorum_closures": quorum,
            "staleness_closures": staleness,
            "closures": list(self.closures),
        }
