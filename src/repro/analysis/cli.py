"""The ``repro lint`` subcommand: run the determinism linter from the CLI.

Kept in the analysis package so :mod:`repro.cli` only wires the subparser;
the linter, the baseline handling and the exit-code contract all live next
to the rules they expose.

Exit codes: ``0`` clean (nothing beyond suppressions and the baseline),
``1`` findings surfaced, ``2`` a file failed to parse.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.analysis.baseline import Baseline, load_baseline, save_baseline
from repro.analysis.linter import LintReport, lint_paths
from repro.analysis.rules import all_rules

DEFAULT_LINT_PATHS = ["src/repro"]
DEFAULT_BASELINE = "detlint.baseline.json"


def add_lint_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``lint`` subcommand on an existing subparser collection."""
    parser = subparsers.add_parser(
        "lint",
        help="run the determinism linter (DET001-DET005) over simulation code",
        description=(
            "Scan Python sources for constructs that break the repo's core "
            "invariant: fixed seeds must produce bit-identical results. "
            "Findings can be suppressed inline with '# detlint: ignore[CODE]' "
            "or justified in a checked-in baseline file."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_LINT_PATHS,
        help=f"files or directories to scan (default: {' '.join(DEFAULT_LINT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all registered rules)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE,
        help=f"baseline file of justified findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        metavar="NOTE",
        default=None,
        help=(
            "write every current finding into the baseline file with NOTE as "
            "the justification, then exit 0 (review the diff before committing)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule catalogue and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    return parser


def _print_rules() -> None:
    for rule in all_rules():
        print(f"{rule.code}  {rule.name}")
        print(f"        {rule.summary}")


def _report_json(report: LintReport) -> str:
    return json.dumps(
        {
            "findings": [
                {
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "code": finding.code,
                    "message": finding.message,
                    "snippet": finding.snippet,
                }
                for finding in report.findings
            ],
            "files_scanned": report.files_scanned,
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "parse_errors": report.parse_errors,
        },
        indent=2,
    )


def command_lint(args: argparse.Namespace) -> int:
    """Execute the ``lint`` subcommand; returns the process exit code."""
    if args.list_rules:
        _print_rules()
        return 0

    codes: Optional[List[str]] = None
    if args.select:
        codes = [code.strip() for code in args.select.split(",") if code.strip()]

    baseline: Optional[Baseline] = None
    if not args.no_baseline and args.update_baseline is None:
        baseline = load_baseline(args.baseline)

    report = lint_paths(args.paths, codes=codes, baseline=baseline)

    if args.update_baseline is not None:
        updated = Baseline()
        updated.extend(report.findings, note=args.update_baseline)
        save_baseline(updated, args.baseline)
        print(f"wrote {len(updated)} entr{'y' if len(updated) == 1 else 'ies'} to {args.baseline}")
        return 0

    if args.format == "json":
        print(_report_json(report))
    else:
        for finding in report.findings:
            print(finding.render())
        for error in report.parse_errors:
            print(f"parse error: {error}")
        tail = (
            f"{report.files_scanned} file(s) scanned, "
            f"{len(report.findings)} finding(s), "
            f"{report.suppressed} suppressed inline, "
            f"{report.baselined} baselined"
        )
        print(tail)

    if report.parse_errors:
        return 2
    return 0 if not report.findings else 1
