"""The ``repro lint`` subcommand: run the determinism linter from the CLI.

Kept in the analysis package so :mod:`repro.cli` only wires the subparser;
the linter, the baseline handling and the exit-code contract all live next
to the rules they expose.

Exit codes: ``0`` clean (nothing beyond suppressions and the baseline),
``1`` findings surfaced or stale baseline entries, ``2`` a file failed to
parse or an unknown rule code was named (``--select``/``--explain``).
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.analysis.baseline import Baseline, load_baseline, save_baseline
from repro.analysis.linter import LintReport, lint_paths
from repro.analysis.rules import all_rules, expand_selectors, get_rule

DEFAULT_LINT_PATHS = ["src/repro"]
DEFAULT_BASELINE = "detlint.baseline.json"


def add_lint_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``lint`` subcommand on an existing subparser collection."""
    parser = subparsers.add_parser(
        "lint",
        help="run the static analyzer (DET/UNIT/WIRE rule families) over simulation code",
        description=(
            "Scan Python sources for constructs that break the repo's core "
            "invariants: determinism (DET), unit/dimension discipline (UNIT) "
            "and cross-layer config/CLI/schema wiring (WIRE). Findings can "
            "be suppressed inline with '# detlint: ignore[CODE]' or "
            "justified in a checked-in baseline file."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_LINT_PATHS,
        help=f"files or directories to scan (default: {' '.join(DEFAULT_LINT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help=(
            "comma-separated rule codes or families to run — 'DET003', "
            "'UNIT', 'DET,WIRE' (default: all registered rules)"
        ),
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="print the long-form rationale and fix guidance for one rule code, then exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE,
        help=f"baseline file of justified findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        metavar="NOTE",
        default=None,
        help=(
            "rewrite the baseline file: keep the existing notes of findings "
            "that still match, record new findings with NOTE as the "
            "justification, and prune stale entries; then exit 0 (review "
            "the diff before committing)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule catalogue and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    return parser


def _print_rules() -> None:
    for rule in all_rules():
        print(f"{rule.code}  {rule.name}")
        print(f"        {rule.summary}")


def _print_explain(code: str) -> int:
    try:
        rule = get_rule(code)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(f"{rule.code}  {rule.name}  [{rule.scope} scope]")
    print(f"    {rule.summary}")
    if rule.explain:
        print()
        for line in rule.explain.splitlines():
            print(f"    {line}" if line else "")
    return 0


def _report_json(report: LintReport, stale: List[dict]) -> str:
    return json.dumps(
        {
            "findings": [
                {
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "code": finding.code,
                    "message": finding.message,
                    "snippet": finding.snippet,
                }
                for finding in report.findings
            ],
            "files_scanned": report.files_scanned,
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "parse_errors": report.parse_errors,
            "stale_baseline_entries": stale,
        },
        indent=2,
    )


def command_lint(args: argparse.Namespace) -> int:
    """Execute the ``lint`` subcommand; returns the process exit code."""
    if args.list_rules:
        _print_rules()
        return 0
    if args.explain is not None:
        return _print_explain(args.explain.strip())

    codes: Optional[List[str]] = None
    if args.select:
        codes = [code.strip() for code in args.select.split(",") if code.strip()]
        try:
            expand_selectors(codes)  # fail fast on unknown selectors
        except ValueError as exc:
            print(f"error: {exc}")
            return 2

    baseline: Optional[Baseline] = None
    if not args.no_baseline and args.update_baseline is None:
        baseline = load_baseline(args.baseline)

    report = lint_paths(args.paths, codes=codes, baseline=baseline)

    if args.update_baseline is not None:
        existing = load_baseline(args.baseline)
        stale_keys = {
            (entry["path"], entry["code"], entry["snippet"])
            for entry in existing.stale_entries(args.paths)
        }
        updated = Baseline()
        for finding in report.findings:
            # A finding already justified keeps its note; only genuinely new
            # entries take the NOTE given on the command line.
            updated.add(finding, note=existing.note_for(finding) or args.update_baseline)
        # Entries outside this run's --select (or outside its paths) are
        # still live justifications — carry them over unless their source
        # line is gone.
        for key, note in existing.entries.items():
            if key not in stale_keys and key not in updated.entries:
                updated.entries[key] = note
        save_baseline(updated, args.baseline)
        pruned = len([key for key in existing.entries if key in stale_keys])
        print(
            f"wrote {len(updated)} entr{'y' if len(updated) == 1 else 'ies'} "
            f"to {args.baseline} ({pruned} stale pruned)"
        )
        return 0

    # A baseline entry whose source line no longer exists is a lie about the
    # current tree: surface it and fail, exactly like a finding.
    stale: List[dict] = baseline.stale_entries(args.paths) if baseline is not None else []

    if args.format == "json":
        print(_report_json(report, stale))
    else:
        for finding in report.findings:
            print(finding.render())
        for entry in stale:
            print(
                f"stale baseline entry: {entry['path']} {entry['code']} "
                f"{entry['snippet']!r} — source line no longer exists "
                "(prune with --update-baseline)"
            )
        for error in report.parse_errors:
            print(f"parse error: {error}")
        tail = (
            f"{report.files_scanned} file(s) scanned, "
            f"{len(report.findings)} finding(s), "
            f"{report.suppressed} suppressed inline, "
            f"{report.baselined} baselined, "
            f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
        )
        print(tail)

    if report.parse_errors:
        return 2
    return 0 if not report.findings and not stale else 1
