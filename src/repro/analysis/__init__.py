"""Static analysis and runtime sanitising for the repo's core invariant.

Everything this repository ships rests on one property: **a fixed seed
produces bit-identical event logs, summaries and CSVs** across every
federation mode.  Until now that invariant was guarded only after the fact,
by bit-identity tests comparing whole result documents.  This package guards
it at the *source*:

* :mod:`repro.analysis.rules` / :mod:`repro.analysis.linter` — an AST-based
  **static analyzer** (the ``repro lint`` CLI subcommand) with a rule
  registry, per-rule codes in three families (``DET`` determinism, ``UNIT``
  unit/dimension discipline, ``WIRE`` cross-layer wiring), family selectors
  (``--select UNIT``), long-form rationales (``--explain CODE``), inline
  ``# detlint: ignore[RULE]`` suppressions and a checked-in baseline file
  for the findings that are individually justified.
* :mod:`repro.analysis.project` — the **cross-layer pass**: rules with
  ``scope="project"`` receive a :class:`~repro.analysis.project.ProjectContext`
  spanning every scanned module and run once per ``lint_paths`` invocation,
  so they can check invariants no single file contains (config↔CLI wiring,
  summary↔CSV schema, registry-backed CLI choices).
* :mod:`repro.analysis.baseline` — the baseline file format: findings are
  fingerprinted by ``(path, code, source line)`` so entries survive
  unrelated line churn; entries whose source line disappeared are **stale**
  and fail the lint until pruned with ``--update-baseline``.
* :mod:`repro.analysis.sanitizer` — a runtime **simulation sanitizer**
  (``ExperimentConfig(sanitize=True)`` / ``repro run --sanitize``): strictly
  read-only assertions hooked into the discrete-event kernel, the link
  scheduler and the communication fabric — a race-detector analogue for the
  discrete-event engine.  A sanitized run is bit-identical to an unsanitized
  one; the sanitizer only ever *observes* and raises
  :class:`~repro.analysis.sanitizer.SanitizerViolation` on the first broken
  invariant.

The linter rules:

========  =====================================================================
``DET001``  wall-clock / entropy APIs (``time.time``, ``datetime.now``,
            ``os.urandom``, ``uuid.uuid4``, ...; the counter clocks are
            allowed only in :mod:`repro.perf`)
``DET002``  unseeded RNG construction and ambient global-RNG calls
            (``random.Random()``, ``np.random.default_rng()``,
            module-level ``random.*`` / ``np.random.*``)
``DET003``  order-dependent aggregation: iteration or ``sum``/``min``/``max``
            over ``set``/``frozenset`` values, ``sum`` over dict views
``DET004``  mode-string comparisons outside the round-policy registry
``DET005``  mutable default arguments
``UNIT001``  arithmetic/comparisons mixing dimensions inferred from the
             ``_s``/``_bytes``/``_mb``/``_mbytes_per_s``/... suffix
             conventions without an explicit conversion
``UNIT002``  magic unit-conversion constants (``1e6``, ``4e6``, ``20e6``)
             outside :mod:`repro.simnet.units`
``UNIT003``  reads of the deprecated ``*_mbps`` alias spelling
``UNIT004``  suffixed names assigned/passed from names of a different (or
             no) dimension without a conversion
``WIRE001``  ``ExperimentConfig`` fields unreachable from any CLI
             ``add_argument`` dest and unvalidated in ``__post_init__``
             (cross-layer)
``WIRE002``  stable ``CommFabric.summary`` keys missing from
             ``_CSV_COLUMNS`` (modulo the ``_s`` suffix mapping) and not
             explicitly exempted (cross-layer)
``WIRE003``  registry-backed CLI options restating their ``choices`` as
             literals instead of deriving them from the registry
========  =====================================================================
"""

from repro.analysis.baseline import Baseline, load_baseline, save_baseline
from repro.analysis.linter import Finding, LintReport, lint_paths, lint_source
from repro.analysis.project import ProjectContext
from repro.analysis.rules import (
    Rule,
    all_rules,
    expand_selectors,
    get_rule,
    register_rule,
)
from repro.analysis.sanitizer import SanitizerViolation, SimulationSanitizer

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "ProjectContext",
    "Rule",
    "SanitizerViolation",
    "SimulationSanitizer",
    "all_rules",
    "expand_selectors",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "save_baseline",
]
