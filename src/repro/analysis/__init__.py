"""Static analysis and runtime sanitising for the repo's core invariant.

Everything this repository ships rests on one property: **a fixed seed
produces bit-identical event logs, summaries and CSVs** across every
federation mode.  Until now that invariant was guarded only after the fact,
by bit-identity tests comparing whole result documents.  This package guards
it at the *source*:

* :mod:`repro.analysis.rules` / :mod:`repro.analysis.linter` — an AST-based
  **determinism linter** (the ``repro lint`` CLI subcommand) with a rule
  registry, per-rule codes (``DET001`` ... ``DET005``), inline
  ``# detlint: ignore[RULE]`` suppressions and a checked-in baseline file
  for the findings that are individually justified.
* :mod:`repro.analysis.baseline` — the baseline file format: findings are
  fingerprinted by ``(path, code, source line)`` so entries survive
  unrelated line churn.
* :mod:`repro.analysis.sanitizer` — a runtime **simulation sanitizer**
  (``ExperimentConfig(sanitize=True)`` / ``repro run --sanitize``): strictly
  read-only assertions hooked into the discrete-event kernel, the link
  scheduler and the communication fabric — a race-detector analogue for the
  discrete-event engine.  A sanitized run is bit-identical to an unsanitized
  one; the sanitizer only ever *observes* and raises
  :class:`~repro.analysis.sanitizer.SanitizerViolation` on the first broken
  invariant.

The linter rules:

========  =====================================================================
``DET001``  wall-clock / entropy APIs (``time.time``, ``datetime.now``,
            ``os.urandom``, ``uuid.uuid4``, ...; the counter clocks are
            allowed only in :mod:`repro.perf`)
``DET002``  unseeded RNG construction and ambient global-RNG calls
            (``random.Random()``, ``np.random.default_rng()``,
            module-level ``random.*`` / ``np.random.*``)
``DET003``  order-dependent aggregation: iteration or ``sum``/``min``/``max``
            over ``set``/``frozenset`` values, ``sum`` over dict views
``DET004``  mode-string comparisons outside the round-policy registry
``DET005``  mutable default arguments
========  =====================================================================
"""

from repro.analysis.baseline import Baseline, load_baseline, save_baseline
from repro.analysis.linter import Finding, LintReport, lint_paths, lint_source
from repro.analysis.rules import Rule, all_rules, get_rule, register_rule
from repro.analysis.sanitizer import SanitizerViolation, SimulationSanitizer

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "Rule",
    "SanitizerViolation",
    "SimulationSanitizer",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "save_baseline",
]
