"""The runtime simulation sanitizer: read-only invariant checks.

A race-detector analogue for the discrete-event engine.  When enabled
(``ExperimentConfig(sanitize=True)`` / ``repro run --sanitize``) one
:class:`SimulationSanitizer` instance is threaded through the run and hooked
into three layers:

* the **kernel** (:meth:`check_event`): no event may commit in the simulated
  past — the event queue's ``(time, priority, key, seq)`` total order must
  hold at execution time, not just at push time;
* the **link scheduler** (:meth:`check_reservation`, called after every
  committed :class:`~repro.simnet.network.ScheduledTransfer`): reservations
  are well-formed (no queue-jumping, no negative wire time), never push an
  endpoint above its declared parallel capacity, and never start inside a
  blocked fault window of the path;
* the **communication fabric** (:meth:`observe_fabric`, called after every
  fabric operation): the running totals the result documents are built from
  (wire/queued time, WAN bytes, log lengths) only ever grow.

Every hook is strictly read-only — it inspects public state and raises
:class:`SanitizerViolation` on the first broken invariant.  A sanitized run
is therefore **bit-identical** to an unsanitized one, which the test suite
pins for all five federation modes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple


class SanitizerViolation(AssertionError):
    """A simulation invariant was broken.

    Subclasses :class:`AssertionError` deliberately: a violation means the
    engine itself is wrong, not that the experiment was misconfigured.
    """


class SimulationSanitizer:
    """Read-only invariant checks over a running simulation.

    One instance serves one experiment run.  The hooks never mutate the
    objects they inspect and never consume randomness, so attaching a
    sanitizer cannot perturb the simulated timeline.
    """

    def __init__(self) -> None:
        #: checks performed, by hook name — the CLI prints this after a
        #: ``--sanitize`` run as evidence the sanitizer actually engaged.
        self.checks: Dict[str, int] = {"event": 0, "reservation": 0, "fabric": 0}
        self._fabric_watermarks: Dict[int, Tuple[float, float, float, int, int]] = {}

    # ------------------------------------------------------------------ kernel
    def check_event(self, now: float, event_time: float) -> None:
        """Assert the next event does not commit in the simulated past."""
        self.checks["event"] += 1
        if event_time < now:
            raise SanitizerViolation(
                f"event scheduled at t={event_time!r} popped with the clock "
                f"already at t={now!r}: the kernel would commit an event in "
                "the simulated past"
            )

    # --------------------------------------------------------------- scheduler
    def check_reservation(self, scheduler: Any, scheduled: Any) -> None:
        """Assert a just-committed transfer respects the scheduler's contract.

        Called from ``LinkScheduler._commit`` *after* the reservation landed,
        so the capacity sweep sees the new interval in the busy lists.
        """
        self.checks["reservation"] += 1
        if scheduled.started_at < scheduled.requested_at:
            raise SanitizerViolation(
                f"transfer {scheduled.source}->{scheduled.destination} started "
                f"at t={scheduled.started_at!r}, before it was requested at "
                f"t={scheduled.requested_at!r}"
            )
        if scheduled.finished_at < scheduled.started_at:
            raise SanitizerViolation(
                f"transfer {scheduled.source}->{scheduled.destination} has "
                f"negative wire time: started t={scheduled.started_at!r}, "
                f"finished t={scheduled.finished_at!r}"
            )
        endpoints = (
            (scheduled.source,)
            if scheduled.source == scheduled.destination
            else (scheduled.source, scheduled.destination)
        )
        for endpoint in endpoints:
            self._check_capacity(scheduler, endpoint, scheduled)
        windows = scheduler.path_fault_windows(scheduled.source, scheduled.destination)
        for start, end in windows:
            if start <= scheduled.started_at < end:
                raise SanitizerViolation(
                    f"transfer {scheduled.source}->{scheduled.destination} "
                    f"starts at t={scheduled.started_at!r}, inside the blocked "
                    f"fault window [{start!r}, {end!r})"
                )

    def _check_capacity(self, scheduler: Any, endpoint: str, scheduled: Any) -> None:
        """Sweep the intervals overlapping the new one for a capacity breach.

        Reservations occupy half-open ``[start, end)`` intervals; at no
        instant may more than ``capacity(endpoint)`` of them overlap.  Only
        the intervals that intersect the new reservation can witness a
        breach it caused, so the sweep is local.
        """
        capacity = scheduler.capacity(endpoint)
        lo, hi = scheduled.started_at, scheduled.finished_at
        if hi <= lo:
            return  # zero-width reservations cannot raise concurrency
        boundaries: List[Tuple[float, int]] = []
        for start, end in scheduler.busy_intervals(endpoint):
            if end > lo and start < hi:  # overlaps the new interval
                boundaries.append((max(start, lo), 1))
                boundaries.append((min(end, hi), -1))
        boundaries.sort()
        concurrency = 0
        for time, delta in boundaries:
            concurrency += delta
            if concurrency > capacity:
                raise SanitizerViolation(
                    f"endpoint '{endpoint}' holds {concurrency} overlapping "
                    f"reservations at t={time!r}, above its declared "
                    f"capacity {capacity}"
                )

    # ------------------------------------------------------------------ fabric
    def observe_fabric(self, fabric: Any) -> None:
        """Assert the fabric's running totals only ever grow."""
        self.checks["fabric"] += 1
        scheduler = fabric.network.scheduler
        current = (
            scheduler.total_wire_time,
            scheduler.total_queued_time,
            float(fabric.network.wan_bytes),
            len(scheduler.log),
            len(fabric.chain.log),
        )
        key = id(fabric)
        previous = self._fabric_watermarks.get(key)
        if previous is not None:
            labels = (
                "scheduler.total_wire_time",
                "scheduler.total_queued_time",
                "network.wan_bytes",
                "len(scheduler.log)",
                "len(chain.log)",
            )
            for label, before, after in zip(labels, previous, current):
                if after < before:
                    raise SanitizerViolation(
                        f"fabric total {label} moved backwards: "
                        f"{before!r} -> {after!r}"
                    )
        self._fabric_watermarks[key] = current

    # --------------------------------------------------------------- reporting
    def report(self) -> Dict[str, int]:
        """Checks performed per hook — all zeros means nothing was attached."""
        return dict(self.checks)

    @property
    def total_checks(self) -> int:
        return sum(self.checks[name] for name in sorted(self.checks))
