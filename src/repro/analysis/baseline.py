"""The checked-in baseline file for individually justified lint findings.

A baseline entry records a finding's line-number-free fingerprint —
``(path, code, stripped source line)`` — plus a mandatory human-readable
justification.  Fingerprints survive unrelated line churn; editing the
offending line itself invalidates the entry, which is exactly when the
justification should be re-examined.

The file is plain sorted JSON so diffs stay reviewable:

.. code-block:: json

    {
      "version": 1,
      "entries": [
        {
          "path": "src/repro/ipfs/node.py",
          "code": "DET003",
          "snippet": "return sum(len(v) for v in self._wantlists.values())",
          "note": "integer count; addition is order-exact"
        }
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.linter import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A set of justified findings keyed by fingerprint."""

    entries: Dict[Tuple[str, str, str], str] = field(default_factory=dict)

    def contains(self, finding: Finding) -> bool:
        fingerprint = finding.fingerprint()
        if fingerprint in self.entries:
            return True
        # Baselines store repo-relative paths; linting the same tree through
        # an absolute path (or from a parent directory) must still match, so
        # fall back to a path-suffix comparison on a component boundary.
        path, code, snippet = fingerprint
        for entry_path, entry_code, entry_snippet in self.entries:
            if (
                entry_code == code
                and entry_snippet == snippet
                and path.endswith("/" + entry_path)
            ):
                return True
        return False

    def note_for(self, finding: Finding) -> Optional[str]:
        """The justification note of the entry matching ``finding``, if any."""
        fingerprint = finding.fingerprint()
        if fingerprint in self.entries:
            return self.entries[fingerprint]
        path, code, snippet = fingerprint
        for (entry_path, entry_code, entry_snippet), note in self.entries.items():
            if (
                entry_code == code
                and entry_snippet == snippet
                and path.endswith("/" + entry_path)
            ):
                return note
        return None

    def stale_entries(self, paths: Iterable[Union[str, Path]]) -> List[dict]:
        """Entries whose source line no longer exists anywhere in the scan.

        Staleness is **line-presence** based, deliberately independent of
        which rules a run selects: an entry is stale when its file is part
        of the scan but no longer contains the snippet as a (stripped)
        source line, or when its path falls under a scanned directory but
        the file itself is gone.  Entries for files outside the scan are
        never judged — linting one fixture must not condemn the rest of the
        baseline.
        """
        from repro.analysis.linter import iter_python_files

        scanned: Dict[str, Path] = {
            str(file).replace("\\", "/"): file for file in iter_python_files(paths)
        }
        roots = [
            str(Path(raw)).replace("\\", "/").rstrip("/")
            for raw in paths
            if Path(raw).is_dir()
        ]
        stale: List[dict] = []
        for (path, code, snippet), note in sorted(self.entries.items()):
            matches = [
                file
                for normalized, file in scanned.items()
                if normalized == path or normalized.endswith("/" + path)
            ]
            if not matches:
                deleted_under_scan = any(path.startswith(root + "/") for root in roots)
                if deleted_under_scan:
                    stale.append(
                        {"path": path, "code": code, "snippet": snippet, "note": note}
                    )
                continue
            alive = any(
                snippet in (line.strip() for line in file.read_text(encoding="utf-8").splitlines())
                for file in matches
            )
            if not alive:
                stale.append({"path": path, "code": code, "snippet": snippet, "note": note})
        return stale

    def add(self, finding: Finding, note: str) -> None:
        """Add one justified finding; the note is mandatory by construction."""
        if not note.strip():
            raise ValueError("a baseline entry requires a non-empty justification note")
        self.entries[finding.fingerprint()] = note.strip()

    def extend(self, findings: Iterable[Finding], note: str) -> None:
        for finding in findings:
            self.add(finding, note)

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------- round trip
    def to_document(self) -> dict:
        """The JSON-ready dict form, entries sorted for stable diffs."""
        entries: List[dict] = []
        for (path, code, snippet), note in sorted(self.entries.items()):
            entries.append({"path": path, "code": code, "snippet": snippet, "note": note})
        return {"version": BASELINE_VERSION, "entries": entries}

    @classmethod
    def from_document(cls, document: dict) -> "Baseline":
        version = document.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(f"unsupported baseline version: {version!r}")
        baseline = cls()
        for entry in document.get("entries", []):
            key = (entry["path"], entry["code"], entry["snippet"])
            note = entry.get("note", "")
            if not note.strip():
                raise ValueError(f"baseline entry for {entry['path']} has no justification note")
            baseline.entries[key] = note.strip()
        return baseline


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    file_path = Path(path)
    if not file_path.exists():
        return Baseline()
    document = json.loads(file_path.read_text(encoding="utf-8"))
    return Baseline.from_document(document)


def save_baseline(baseline: Baseline, path: Union[str, Path]) -> None:
    """Write the baseline as sorted, indented JSON with a trailing newline."""
    document = baseline.to_document()
    Path(path).write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
