"""The determinism rule registry and the built-in DET rules.

Each rule is a pure function from a :class:`LintContext` (one parsed module)
to a list of :class:`~repro.analysis.linter.Finding`.  Rules are registered
in a module-level registry — the same single-source-of-truth idiom as the
round-policy registry (:mod:`repro.sched.registry`): the CLI's rule
catalogue, the test fixtures and the documentation all derive from the
registrations at the bottom of this module, and registering a duplicate code
is a hard error.

Rules resolve imported names through a per-module alias map, so
``from time import perf_counter as pc`` / ``import numpy as np`` cannot hide
a banned call.  They only ever flag names that resolve back to a module
import — a method on a local object that merely *looks* like a banned API
(``self._rng.random()``) is never flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.linter import Finding

#: comparison operators DET004 treats as a mode dispatch.
_MODE_COMPARE_OPS = (ast.Eq, ast.NotEq, ast.In, ast.NotIn)


@dataclass
class LintContext:
    """One module being linted: its path, source lines and parsed tree."""

    #: path as the caller supplied it (used in findings verbatim).
    path: str
    #: the same path normalised to forward slashes, for exemption suffixes.
    module_path: str
    tree: ast.AST
    lines: Sequence[str]
    #: local name -> dotted module path, built once per module.
    imports: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.imports:
            self.imports = _build_import_map(self.tree)

    # ------------------------------------------------------------------ helpers
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name a Name/Attribute chain resolves to, through imports.

        ``None`` when the chain does not bottom out in an imported module —
        attributes of local objects are never resolved, so rules cannot
        misfire on look-alike methods.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(self.lines):
            snippet = self.lines[line - 1].strip()
        return Finding(
            path=self.path, line=line, col=col, code=code, message=message, snippet=snippet
        )

    def in_module(self, *suffixes: str) -> bool:
        """True when this module's normalised path ends with any suffix."""
        return any(self.module_path.endswith(suffix) for suffix in suffixes)


def _build_import_map(tree: ast.AST) -> Dict[str, str]:
    """Map every locally bound import name to its dotted module path."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the name ``a``.
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay inside the package
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


@dataclass(frozen=True)
class Rule:
    """One registered determinism rule."""

    code: str
    name: str
    summary: str
    check: Callable[[LintContext], List[Finding]]


_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Register a rule; duplicate codes are a hard error (mirrors the policy registry)."""
    if rule.code in _REGISTRY:
        raise ValueError(f"rule code '{rule.code}' is already registered")
    _REGISTRY[rule.code] = rule
    return rule


def unregister_rule(code: str) -> None:
    """Remove a registered rule (test hook)."""
    _REGISTRY.pop(code, None)


def get_rule(code: str) -> Rule:
    """Look one rule up by code, with the registered codes in the error."""
    try:
        return _REGISTRY[code]
    except KeyError:
        known = ", ".join(f"'{code}'" for code in _REGISTRY)
        raise ValueError(f"unknown rule '{code}'; registered rules: {known}") from None


def all_rules() -> List[Rule]:
    """Every registered rule, in registration order."""
    return list(_REGISTRY.values())


# --------------------------------------------------------------------- DET001
#: dotted call targets that read the wall clock or the OS entropy pool.
WALL_CLOCK_APIS = {
    "time.time": "reads the wall clock",
    "time.time_ns": "reads the wall clock",
    "time.localtime": "reads the wall clock",
    "time.gmtime": "reads the wall clock",
    "time.monotonic": "reads a host-dependent clock",
    "time.monotonic_ns": "reads a host-dependent clock",
    "time.perf_counter": "reads a host-dependent clock",
    "time.perf_counter_ns": "reads a host-dependent clock",
    "datetime.datetime.now": "reads the wall clock",
    "datetime.datetime.utcnow": "reads the wall clock",
    "datetime.datetime.today": "reads the wall clock",
    "datetime.date.today": "reads the wall clock",
    "os.urandom": "reads the OS entropy pool",
    "os.getrandom": "reads the OS entropy pool",
    "uuid.uuid1": "derives from host clock and MAC",
    "uuid.uuid4": "reads the OS entropy pool",
}

#: the counter clocks measurement harnesses legitimately need; allowed only
#: in the modules listed in :data:`PERF_COUNTER_MODULES`.
PERF_COUNTER_APIS = frozenset(
    {"time.monotonic", "time.monotonic_ns", "time.perf_counter", "time.perf_counter_ns"}
)
PERF_COUNTER_MODULES = ("repro/perf.py",)


def _check_wall_clock(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    perf_exempt = ctx.in_module(*PERF_COUNTER_MODULES)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.resolve(node.func)
        if dotted is None:
            continue
        reason = WALL_CLOCK_APIS.get(dotted)
        if reason is None and dotted.startswith("secrets."):
            reason = "reads the OS entropy pool"
        if reason is None:
            continue
        if perf_exempt and dotted in PERF_COUNTER_APIS:
            continue
        findings.append(
            ctx.finding(
                node,
                "DET001",
                f"{dotted}() {reason}; simulation code must take time and "
                "entropy from the seeded simulation substrate",
            )
        )
    return findings


# --------------------------------------------------------------------- DET002
#: RNG constructors that are deterministic *only when given a seed*.
SEEDABLE_RNG_CONSTRUCTORS = frozenset(
    {"random.Random", "random.SystemRandom", "numpy.random.default_rng", "numpy.random.RandomState"}
)
#: numpy.random attributes that are not the ambient global RNG.
_NUMPY_RANDOM_NON_AMBIENT = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
    }
)


def _check_unseeded_rng(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.resolve(node.func)
        if dotted is None:
            continue
        if dotted in SEEDABLE_RNG_CONSTRUCTORS:
            if dotted == "random.SystemRandom":
                findings.append(
                    ctx.finding(
                        node, "DET002", f"{dotted}() draws from the OS entropy pool"
                    )
                )
            elif not node.args and not node.keywords:
                findings.append(
                    ctx.finding(
                        node,
                        "DET002",
                        f"{dotted}() constructed without a seed; thread an "
                        "explicit seed (or a seeded Generator) through instead",
                    )
                )
        elif dotted.startswith("random.") or (
            dotted.startswith("numpy.random.") and dotted not in _NUMPY_RANDOM_NON_AMBIENT
        ):
            findings.append(
                ctx.finding(
                    node,
                    "DET002",
                    f"{dotted}() uses the ambient process-global RNG; draw from "
                    "an explicitly seeded Generator instead",
                )
            )
    return findings


# --------------------------------------------------------------------- DET003
def _is_set_expr(node: ast.AST) -> bool:
    """Set literals, set comprehensions and ``set(...)`` / ``frozenset(...)`` calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_dict_view(node: ast.AST) -> bool:
    """``<expr>.keys()`` / ``.values()`` / ``.items()`` calls (no arguments)."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and not node.args
        and not node.keywords
    )


def _comprehension_iters(node: ast.AST) -> List[ast.AST]:
    """The source iterables of a generator/list/set/dict comprehension."""
    if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)):
        return [gen.iter for gen in node.generators]
    return []


def _check_order_dependence(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
            findings.append(
                ctx.finding(
                    node,
                    "DET003",
                    "iterating a set: the visit order is hash-dependent "
                    "(PYTHONHASHSEED) — sort it, or iterate a deterministic "
                    "sequence instead",
                )
            )
            continue
        for source in _comprehension_iters(node):
            if _is_set_expr(source):
                findings.append(
                    ctx.finding(
                        node,
                        "DET003",
                        "comprehension over a set: the visit order is "
                        "hash-dependent — sort it first",
                    )
                )
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("sum", "min", "max")
            and node.args
        ):
            continue
        arg = node.args[0]
        sources = [arg] + _comprehension_iters(arg)
        if any(_is_set_expr(source) for source in sources):
            findings.append(
                ctx.finding(
                    node,
                    "DET003",
                    f"{node.func.id}() over a set: hash-dependent iteration "
                    "order makes float accumulation (and tie-breaking) "
                    "order-dependent — sort the values first",
                )
            )
        elif node.func.id == "sum" and any(_is_dict_view(source) for source in sources):
            findings.append(
                ctx.finding(
                    node,
                    "DET003",
                    "sum() over a dict view: float accumulation order is the "
                    "dict's insertion order, an implicit invariant — sort the "
                    "items (or suppress if the sum is order-exact, e.g. integers)",
                )
            )
    return findings


# --------------------------------------------------------------------- DET004
#: the one module allowed to compare mode strings: the policy registry itself.
MODE_DISPATCH_MODULES = ("sched/registry.py",)


def _is_mode_ref(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "mode"
    if isinstance(node, ast.Attribute):
        return node.attr == "mode"
    return False


def _check_mode_comparison(ctx: LintContext) -> List[Finding]:
    if ctx.in_module(*MODE_DISPATCH_MODULES):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, _MODE_COMPARE_OPS) for op in node.ops):
            continue
        if any(_is_mode_ref(side) for side in [node.left, *node.comparators]):
            findings.append(
                ctx.finding(
                    node,
                    "DET004",
                    "mode-string comparison outside the round-policy registry: "
                    "per-mode behaviour belongs on the registered PolicySpec "
                    "(repro.sched.registry), not in an if-ladder",
                )
            )
    return findings


# --------------------------------------------------------------------- DET005
_MUTABLE_DEFAULT_CALLS = ("list", "dict", "set", "bytearray", "defaultdict")


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_DEFAULT_CALLS
    )


def _check_mutable_defaults(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                findings.append(
                    ctx.finding(
                        default,
                        "DET005",
                        f"mutable default argument in {node.name}(): state leaks "
                        "across calls and across experiments — default to None "
                        "and construct inside the body",
                    )
                )
    return findings


# ---------------------------------------------------------------- registration
register_rule(
    Rule(
        code="DET001",
        name="wall-clock-or-entropy",
        summary=(
            "wall-clock / entropy APIs (time.time, datetime.now, os.urandom, "
            "uuid.uuid4, ...) are banned in simulation code; the counter "
            "clocks are allowed only in repro.perf"
        ),
        check=_check_wall_clock,
    )
)
register_rule(
    Rule(
        code="DET002",
        name="unseeded-rng",
        summary=(
            "unseeded RNG construction (random.Random(), "
            "np.random.default_rng()) and ambient global-RNG calls "
            "(module-level random.* / np.random.*)"
        ),
        check=_check_unseeded_rng,
    )
)
register_rule(
    Rule(
        code="DET003",
        name="order-dependent-aggregation",
        summary=(
            "iteration or sum()/min()/max() over set/frozenset values, and "
            "sum() over dict views: hash- or insertion-order dependence "
            "leaks into float accumulation and event ordering"
        ),
        check=_check_order_dependence,
    )
)
register_rule(
    Rule(
        code="DET004",
        name="mode-comparison",
        summary=(
            "mode-string comparisons (mode == ... / mode in (...)) outside "
            "repro/sched/registry.py: mode behaviour must derive from the "
            "policy registry"
        ),
        check=_check_mode_comparison,
    )
)
register_rule(
    Rule(
        code="DET005",
        name="mutable-default-argument",
        summary="mutable default arguments leak state across calls and runs",
        check=_check_mutable_defaults,
    )
)
