"""The determinism rule registry and the built-in DET rules.

Each rule is a pure function from a :class:`LintContext` (one parsed module)
to a list of :class:`~repro.analysis.linter.Finding`.  Rules are registered
in a module-level registry — the same single-source-of-truth idiom as the
round-policy registry (:mod:`repro.sched.registry`): the CLI's rule
catalogue, the test fixtures and the documentation all derive from the
registrations at the bottom of this module, and registering a duplicate code
is a hard error.

Rules resolve imported names through a per-module alias map, so
``from time import perf_counter as pc`` / ``import numpy as np`` cannot hide
a banned call.  They only ever flag names that resolve back to a module
import — a method on a local object that merely *looks* like a banned API
(``self._rng.random()``) is never flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.linter import Finding

#: comparison operators DET004 treats as a mode dispatch.
_MODE_COMPARE_OPS = (ast.Eq, ast.NotEq, ast.In, ast.NotIn)


@dataclass
class LintContext:
    """One module being linted: its path, source lines and parsed tree."""

    #: path as the caller supplied it (used in findings verbatim).
    path: str
    #: the same path normalised to forward slashes, for exemption suffixes.
    module_path: str
    tree: ast.AST
    lines: Sequence[str]
    #: local name -> dotted module path, built once per module.
    imports: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.imports:
            self.imports = _build_import_map(self.tree)

    # ------------------------------------------------------------------ helpers
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name a Name/Attribute chain resolves to, through imports.

        ``None`` when the chain does not bottom out in an imported module —
        attributes of local objects are never resolved, so rules cannot
        misfire on look-alike methods.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(self.lines):
            snippet = self.lines[line - 1].strip()
        return Finding(
            path=self.path, line=line, col=col, code=code, message=message, snippet=snippet
        )

    def in_module(self, *suffixes: str) -> bool:
        """True when this module's normalised path ends with any suffix."""
        return any(self.module_path.endswith(suffix) for suffix in suffixes)


def _build_import_map(tree: ast.AST) -> Dict[str, str]:
    """Map every locally bound import name to its dotted module path."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the name ``a``.
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay inside the package
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    ``scope`` is ``"module"`` for per-file AST rules (``check`` receives a
    :class:`LintContext`) or ``"project"`` for whole-program rules run once
    per lint invocation (``check`` receives a
    :class:`repro.analysis.project.ProjectContext` spanning every scanned
    module).  ``explain`` is the long-form text ``repro lint --explain CODE``
    prints: what the rule guards, why it matters here, and how to fix a hit.
    """

    code: str
    name: str
    summary: str
    check: Callable[..., List[Finding]]
    explain: str = ""
    scope: str = "module"


_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Register a rule; duplicate codes are a hard error (mirrors the policy registry)."""
    if rule.code in _REGISTRY:
        raise ValueError(f"rule code '{rule.code}' is already registered")
    _REGISTRY[rule.code] = rule
    return rule


def unregister_rule(code: str) -> None:
    """Remove a registered rule (test hook)."""
    _REGISTRY.pop(code, None)


def get_rule(code: str) -> Rule:
    """Look one rule up by code, with the registered codes in the error."""
    try:
        return _REGISTRY[code]
    except KeyError:
        known = ", ".join(f"'{code}'" for code in _REGISTRY)
        raise ValueError(f"unknown rule '{code}'; registered rules: {known}") from None


def all_rules() -> List[Rule]:
    """Every registered rule, in registration order."""
    return list(_REGISTRY.values())


def expand_selectors(selectors: Sequence[str]) -> List[str]:
    """Expand ``--select`` entries into concrete rule codes.

    A selector is either an exact code (``DET001``) or a **family prefix**
    (``DET``, ``UNIT``, ``WIRE``) selecting every registered code that
    starts with it.  Unknown selectors raise rather than silently no-op.
    """
    codes: List[str] = []
    for raw in selectors:
        selector = raw.strip()
        if not selector:
            continue
        if selector in _REGISTRY:
            codes.append(selector)
            continue
        family = [code for code in _REGISTRY if selector.isalpha() and code.startswith(selector)]
        if not family:
            known = ", ".join(f"'{code}'" for code in _REGISTRY)
            raise ValueError(
                f"unknown rule or family '{selector}'; registered rules: {known}"
            )
        codes.extend(family)
    return codes


# --------------------------------------------------------------------- DET001
#: dotted call targets that read the wall clock or the OS entropy pool.
WALL_CLOCK_APIS = {
    "time.time": "reads the wall clock",
    "time.time_ns": "reads the wall clock",
    "time.localtime": "reads the wall clock",
    "time.gmtime": "reads the wall clock",
    "time.monotonic": "reads a host-dependent clock",
    "time.monotonic_ns": "reads a host-dependent clock",
    "time.perf_counter": "reads a host-dependent clock",
    "time.perf_counter_ns": "reads a host-dependent clock",
    "datetime.datetime.now": "reads the wall clock",
    "datetime.datetime.utcnow": "reads the wall clock",
    "datetime.datetime.today": "reads the wall clock",
    "datetime.date.today": "reads the wall clock",
    "os.urandom": "reads the OS entropy pool",
    "os.getrandom": "reads the OS entropy pool",
    "uuid.uuid1": "derives from host clock and MAC",
    "uuid.uuid4": "reads the OS entropy pool",
}

#: the counter clocks measurement harnesses legitimately need; allowed only
#: in the modules listed in :data:`PERF_COUNTER_MODULES`.
PERF_COUNTER_APIS = frozenset(
    {"time.monotonic", "time.monotonic_ns", "time.perf_counter", "time.perf_counter_ns"}
)
PERF_COUNTER_MODULES = ("repro/perf.py",)


def _check_wall_clock(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    perf_exempt = ctx.in_module(*PERF_COUNTER_MODULES)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.resolve(node.func)
        if dotted is None:
            continue
        reason = WALL_CLOCK_APIS.get(dotted)
        if reason is None and dotted.startswith("secrets."):
            reason = "reads the OS entropy pool"
        if reason is None:
            continue
        if perf_exempt and dotted in PERF_COUNTER_APIS:
            continue
        findings.append(
            ctx.finding(
                node,
                "DET001",
                f"{dotted}() {reason}; simulation code must take time and "
                "entropy from the seeded simulation substrate",
            )
        )
    return findings


# --------------------------------------------------------------------- DET002
#: RNG constructors that are deterministic *only when given a seed*.
SEEDABLE_RNG_CONSTRUCTORS = frozenset(
    {"random.Random", "random.SystemRandom", "numpy.random.default_rng", "numpy.random.RandomState"}
)
#: numpy.random attributes that are not the ambient global RNG.
_NUMPY_RANDOM_NON_AMBIENT = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
    }
)


def _check_unseeded_rng(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.resolve(node.func)
        if dotted is None:
            continue
        if dotted in SEEDABLE_RNG_CONSTRUCTORS:
            if dotted == "random.SystemRandom":
                findings.append(
                    ctx.finding(
                        node, "DET002", f"{dotted}() draws from the OS entropy pool"
                    )
                )
            elif not node.args and not node.keywords:
                findings.append(
                    ctx.finding(
                        node,
                        "DET002",
                        f"{dotted}() constructed without a seed; thread an "
                        "explicit seed (or a seeded Generator) through instead",
                    )
                )
        elif dotted.startswith("random.") or (
            dotted.startswith("numpy.random.") and dotted not in _NUMPY_RANDOM_NON_AMBIENT
        ):
            findings.append(
                ctx.finding(
                    node,
                    "DET002",
                    f"{dotted}() uses the ambient process-global RNG; draw from "
                    "an explicitly seeded Generator instead",
                )
            )
    return findings


# --------------------------------------------------------------------- DET003
def _is_set_expr(node: ast.AST) -> bool:
    """Set literals, set comprehensions and ``set(...)`` / ``frozenset(...)`` calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_dict_view(node: ast.AST) -> bool:
    """``<expr>.keys()`` / ``.values()`` / ``.items()`` calls (no arguments)."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and not node.args
        and not node.keywords
    )


def _comprehension_iters(node: ast.AST) -> List[ast.AST]:
    """The source iterables of a generator/list/set/dict comprehension."""
    if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)):
        return [gen.iter for gen in node.generators]
    return []


def _check_order_dependence(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
            findings.append(
                ctx.finding(
                    node,
                    "DET003",
                    "iterating a set: the visit order is hash-dependent "
                    "(PYTHONHASHSEED) — sort it, or iterate a deterministic "
                    "sequence instead",
                )
            )
            continue
        for source in _comprehension_iters(node):
            if _is_set_expr(source):
                findings.append(
                    ctx.finding(
                        node,
                        "DET003",
                        "comprehension over a set: the visit order is "
                        "hash-dependent — sort it first",
                    )
                )
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("sum", "min", "max")
            and node.args
        ):
            continue
        arg = node.args[0]
        sources = [arg] + _comprehension_iters(arg)
        if any(_is_set_expr(source) for source in sources):
            findings.append(
                ctx.finding(
                    node,
                    "DET003",
                    f"{node.func.id}() over a set: hash-dependent iteration "
                    "order makes float accumulation (and tie-breaking) "
                    "order-dependent — sort the values first",
                )
            )
        elif node.func.id == "sum" and any(_is_dict_view(source) for source in sources):
            findings.append(
                ctx.finding(
                    node,
                    "DET003",
                    "sum() over a dict view: float accumulation order is the "
                    "dict's insertion order, an implicit invariant — sort the "
                    "items (or suppress if the sum is order-exact, e.g. integers)",
                )
            )
    return findings


# --------------------------------------------------------------------- DET004
#: the one module allowed to compare mode strings: the policy registry itself.
MODE_DISPATCH_MODULES = ("sched/registry.py",)


def _is_mode_ref(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "mode"
    if isinstance(node, ast.Attribute):
        return node.attr == "mode"
    return False


def _check_mode_comparison(ctx: LintContext) -> List[Finding]:
    if ctx.in_module(*MODE_DISPATCH_MODULES):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, _MODE_COMPARE_OPS) for op in node.ops):
            continue
        if any(_is_mode_ref(side) for side in [node.left, *node.comparators]):
            findings.append(
                ctx.finding(
                    node,
                    "DET004",
                    "mode-string comparison outside the round-policy registry: "
                    "per-mode behaviour belongs on the registered PolicySpec "
                    "(repro.sched.registry), not in an if-ladder",
                )
            )
    return findings


# --------------------------------------------------------------------- DET005
_MUTABLE_DEFAULT_CALLS = ("list", "dict", "set", "bytearray", "defaultdict")


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_DEFAULT_CALLS
    )


def _check_mutable_defaults(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                findings.append(
                    ctx.finding(
                        default,
                        "DET005",
                        f"mutable default argument in {node.name}(): state leaks "
                        "across calls and across experiments — default to None "
                        "and construct inside the body",
                    )
                )
    return findings


# ----------------------------------------------------------------- UNIT rules
#: suffix → dimension, longest suffix first so ``_bytes_per_s`` wins over
#: ``_s`` and ``_mbytes_per_s`` over ``_bytes_per_s``.  ``_mbps`` is the
#: deprecated alias spelling of megabytes/s (UNIT003 bans reading it; the
#: dimension is still tracked so mixed arithmetic is caught either way).
UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_mbytes_per_s", "megabytes/s"),
    ("_bytes_per_s", "bytes/s"),
    ("_mbps", "megabytes/s"),
    ("_bytes", "bytes"),
    ("_mb", "megabytes"),
    ("_count", "count"),
    ("_s", "seconds"),
)

#: the one module allowed to hold raw conversion constants.
UNITS_MODULES = ("simnet/units.py",)

#: conversion-constant literals banned outside :data:`UNITS_MODULES`: the
#: MB scale and the hand-folded bandwidth multiples the timing model used.
CONVERSION_LITERALS = (1e6, 4e6, 20e6)


def infer_unit(name: str) -> Optional[str]:
    """Dimension a ``name`` carries by suffix convention, or ``None``."""
    for suffix, dimension in UNIT_SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return dimension
    return None


def _unit_of(node: ast.AST) -> Optional[str]:
    """Inferred dimension of a Name/Attribute leaf; ``None`` for anything else.

    Only identifier leaves are inferred — a call or arithmetic expression has
    an unknown dimension, so explicit conversions (``units.bytes_over_bandwidth``)
    naturally silence the mixing rules.
    """
    if isinstance(node, ast.Name):
        return infer_unit(node.id)
    if isinstance(node, ast.Attribute):
        return infer_unit(node.attr)
    return None


def _check_unit_mixing(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left, right = _unit_of(node.left), _unit_of(node.right)
            if left is not None and right is not None and left != right:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                findings.append(
                    ctx.finding(
                        node,
                        "UNIT001",
                        f"arithmetic mixes units: {left} {op} {right} without an "
                        "explicit conversion (use a repro.simnet.units helper)",
                    )
                )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            left, right = _unit_of(node.left), _unit_of(node.right)
            if left == "bytes" and right in ("megabytes/s",):
                findings.append(
                    ctx.finding(
                        node,
                        "UNIT001",
                        "bytes divided by a megabytes/s bandwidth yields "
                        "microseconds-off seconds; convert with "
                        "repro.simnet.units.bytes_over_bandwidth (or "
                        "mbytes_per_s_to_bytes_per_s)",
                    )
                )
        elif isinstance(node, ast.Compare) and len(node.ops) == 1:
            left, right = _unit_of(node.left), _unit_of(node.comparators[0])
            if left is not None and right is not None and left != right:
                findings.append(
                    ctx.finding(
                        node,
                        "UNIT001",
                        f"comparison mixes units: {left} vs {right} — convert "
                        "one side explicitly via repro.simnet.units",
                    )
                )
    return findings


def _is_conversion_literal(node: ast.AST) -> bool:
    if not isinstance(node, ast.Constant):
        return False
    value = node.value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    return float(value) in CONVERSION_LITERALS


def _check_conversion_literals(ctx: LintContext) -> List[Finding]:
    if ctx.in_module(*UNITS_MODULES):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        # Only arithmetic *uses* are conversions — a bare default such as
        # ``gas_limit: int = 1_000_000`` is a count that merely collides
        # with the MB scale numerically.
        if not isinstance(node, ast.BinOp) or not isinstance(node.op, (ast.Mult, ast.Div)):
            continue
        for operand in (node.left, node.right):
            if _is_conversion_literal(operand):
                findings.append(
                    ctx.finding(
                        operand,
                        "UNIT002",
                        f"magic unit-conversion constant {operand.value!r}: "
                        "conversions belong in repro.simnet.units (MB, "
                        "bytes_over_bandwidth, bytes_over_scaled_bandwidth, ...)",
                    )
                )
    return findings


def _check_deprecated_alias(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Name, ast.Attribute)):
            # Only *reads* are uses; the Store contexts are the shim
            # definitions themselves (the deprecated dataclass field, the
            # alias property) which have to keep the old spelling.
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            name = node.id if isinstance(node, ast.Name) else node.attr
            if name.endswith("_mbps"):
                findings.append(
                    ctx.finding(
                        node,
                        "UNIT003",
                        f"'{name}' is a deprecated megabits-looking alias (the "
                        "unit is megabytes/s); read the *_mbytes_per_s field "
                        "instead",
                    )
                )
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is not None and keyword.arg.endswith("_mbps"):
                    findings.append(
                        ctx.finding(
                            keyword.value,
                            "UNIT003",
                            f"keyword '{keyword.arg}' passes through the "
                            "deprecated alias; use the *_mbytes_per_s "
                            "parameter instead",
                        )
                    )
    return findings


def _unit004_finding(ctx: LintContext, node: ast.AST, target_name: str, value: ast.AST):
    target_unit = infer_unit(target_name)
    if target_unit is None:
        return None
    if not isinstance(value, (ast.Name, ast.Attribute)):
        return None  # calls/arithmetic are explicit enough (conversions live there)
    value_name = value.id if isinstance(value, ast.Name) else value.attr
    value_unit = infer_unit(value_name)
    if value_unit == target_unit:
        return None
    if value_unit is None:
        message = (
            f"'{target_name}' ({target_unit}) is assigned from the "
            f"unsuffixed name '{value_name}'; carry the unit suffix through "
            "(or convert explicitly via repro.simnet.units)"
        )
    else:
        message = (
            f"'{target_name}' ({target_unit}) is assigned from "
            f"'{value_name}' ({value_unit}) without a conversion"
        )
    return ctx.finding(node, "UNIT004", message)


def _check_suffix_assignment(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name is not None:
                finding = _unit004_finding(ctx, node, name, node.value)
                if finding is not None:
                    findings.append(finding)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, (ast.Name, ast.Attribute)):
                name = (
                    node.target.id
                    if isinstance(node.target, ast.Name)
                    else node.target.attr
                )
                finding = _unit004_finding(ctx, node, name, node.value)
                if finding is not None:
                    findings.append(finding)
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                finding = _unit004_finding(ctx, keyword.value, keyword.arg, keyword.value)
                if finding is not None:
                    findings.append(finding)
    return findings


# ---------------------------------------------------------------- registration
register_rule(
    Rule(
        code="DET001",
        name="wall-clock-or-entropy",
        summary=(
            "wall-clock / entropy APIs (time.time, datetime.now, os.urandom, "
            "uuid.uuid4, ...) are banned in simulation code; the counter "
            "clocks are allowed only in repro.perf"
        ),
        check=_check_wall_clock,
        explain=(
            "Simulated experiments must be a pure function of their seed. A "
            "wall-clock read (time.time, datetime.now) or an entropy read "
            "(os.urandom, uuid.uuid4, secrets.*) injects host state into the "
            "timeline, so the same seed stops producing the same result.\n\n"
            "Fix: take time from the simulation clock (SimClock.now) and "
            "randomness from an explicitly seeded numpy Generator. The "
            "counter clocks (time.perf_counter, time.monotonic) are allowed "
            "only in repro/perf.py, the measurement harness.\n\n"
            "    import time\n"
            "    stamp = time.time()          # DET001\n"
            "    stamp = clock.now()          # clean"
        ),
    )
)
register_rule(
    Rule(
        code="DET002",
        name="unseeded-rng",
        summary=(
            "unseeded RNG construction (random.Random(), "
            "np.random.default_rng()) and ambient global-RNG calls "
            "(module-level random.* / np.random.*)"
        ),
        check=_check_unseeded_rng,
        explain=(
            "An RNG constructed without a seed (random.Random(), "
            "np.random.default_rng()) seeds itself from the OS, and the "
            "module-level random.*/np.random.* functions draw from the "
            "ambient process-global stream any other code may also have "
            "advanced. Either way the draws stop being a function of the "
            "experiment seed.\n\n"
            "Fix: thread an explicit integer seed or an already-seeded "
            "Generator through to wherever randomness is consumed.\n\n"
            "    rng = np.random.default_rng()      # DET002\n"
            "    rng = np.random.default_rng(seed)  # clean"
        ),
    )
)
register_rule(
    Rule(
        code="DET003",
        name="order-dependent-aggregation",
        summary=(
            "iteration or sum()/min()/max() over set/frozenset values, and "
            "sum() over dict views: hash- or insertion-order dependence "
            "leaks into float accumulation and event ordering"
        ),
        check=_check_order_dependence,
        explain=(
            "Set iteration order depends on PYTHONHASHSEED, and dict-view "
            "iteration order is the dict's insertion history — both are "
            "implicit invariants. Feeding either into float accumulation "
            "(sum) or tie-breaking (min/max) makes the result depend on "
            "that hidden order.\n\n"
            "Fix: sort before aggregating. Integer sums are order-exact and "
            "may be suppressed inline with a justification:\n\n"
            "    total = sum(w.values())          # DET003\n"
            "    total = sum(w[k] for k in sorted(w))  # clean"
        ),
    )
)
register_rule(
    Rule(
        code="DET004",
        name="mode-comparison",
        summary=(
            "mode-string comparisons (mode == ... / mode in (...)) outside "
            "repro/sched/registry.py: mode behaviour must derive from the "
            "policy registry"
        ),
        check=_check_mode_comparison,
        explain=(
            "Per-mode behaviour must derive from the round-policy registry "
            "(repro.sched.registry): a mode-string if-ladder anywhere else "
            "is a parallel dispatch table that silently misses newly "
            "registered modes.\n\n"
            "Fix: put the behaviour on the registered PolicySpec (a flag on "
            "ContractProfile, a factory, a validate hook) and look it up:\n\n"
            "    if config.mode == 'sync': ...            # DET004\n"
            "    get_policy(config.mode).profile.phase_gated  # clean"
        ),
    )
)
register_rule(
    Rule(
        code="DET005",
        name="mutable-default-argument",
        summary="mutable default arguments leak state across calls and runs",
        check=_check_mutable_defaults,
        explain=(
            "A mutable default (def f(x=[])) is constructed once at import "
            "and shared by every call — state leaks across calls and "
            "therefore across experiments in the same process.\n\n"
            "Fix: default to None and construct inside the body:\n\n"
            "    def f(x=[]): ...                 # DET005\n"
            "    def f(x=None):\n"
            "        x = [] if x is None else x   # clean"
        ),
    )
)
register_rule(
    Rule(
        code="UNIT001",
        name="mixed-unit-arithmetic",
        summary=(
            "arithmetic or comparisons mixing suffix-inferred units "
            "(seconds + bytes, bytes / megabytes-per-s) without an explicit "
            "repro.simnet.units conversion"
        ),
        check=_check_unit_mixing,
        explain=(
            "Names carry their unit as a suffix (_s, _bytes, _mb, "
            "_mbytes_per_s, _bytes_per_s, _count). Adding, subtracting or "
            "comparing two names whose inferred units differ is almost "
            "always a missing conversion; dividing bytes by a megabytes/s "
            "bandwidth is the exact 1e6-off trap behind the old "
            "bandwidth_mbps bug.\n\n"
            "Fix: convert through repro.simnet.units so the conversion is "
            "named and single-sourced:\n\n"
            "    wait = size_bytes / link_mbytes_per_s          # UNIT001\n"
            "    wait = units.bytes_over_bandwidth(size_bytes, link_mbytes_per_s)"
        ),
    )
)
register_rule(
    Rule(
        code="UNIT002",
        name="magic-conversion-constant",
        summary=(
            "raw unit-conversion literals (1e6, 4e6, 20e6, 1_000_000) "
            "outside repro/simnet/units.py"
        ),
        check=_check_conversion_literals,
        explain=(
            "The byte/megabyte scale and its hand-folded multiples used to "
            "live inline (1_000_000 in hardware.py and runner.py, 4e6/20e6 "
            "in timing.py), so nothing connected them and nothing could "
            "check them. They now live once, in repro.simnet.units, whose "
            "helpers are pinned bit-identical to the literals they "
            "replaced.\n\n"
            "    rate = bw * 1_000_000                          # UNIT002\n"
            "    rate = units.mbytes_per_s_to_bytes_per_s(bw)   # clean"
        ),
    )
)
register_rule(
    Rule(
        code="UNIT003",
        name="deprecated-mbps-alias",
        summary=(
            "reads of the deprecated *_mbps aliases (bandwidth_mbps, "
            "link_bandwidth_mbps) inside src/repro"
        ),
        check=_check_deprecated_alias,
        explain=(
            "The *_mbps names always held mega**bytes**/s — the PR 3 units "
            "trap. They survive only as deprecated read aliases for "
            "downstream users; first-party code must not read or pass them, "
            "or the DeprecationWarning churn hides real warnings and the "
            "trap stays live.\n\n"
            "Fix: read the *_mbytes_per_s field. The alias shims themselves "
            "carry inline '# detlint: ignore[UNIT003]' markers — the only "
            "two justified reads in the tree.\n\n"
            "    bw = profile.bandwidth_mbps           # UNIT003\n"
            "    bw = profile.bandwidth_mbytes_per_s   # clean"
        ),
    )
)
register_rule(
    Rule(
        code="UNIT004",
        name="suffix-dropped-assignment",
        summary=(
            "unit-suffixed targets (assignments and keyword arguments) "
            "bound to a bare name without that unit suffix"
        ),
        check=_check_suffix_assignment,
        explain=(
            "A unit-suffixed name bound straight from a suffix-less name "
            "drops the unit from the data flow: two hops later nobody knows "
            "whether 'latency' was seconds or milliseconds. Calls and "
            "arithmetic are exempt — an explicit conversion is exactly "
            "where a unit legitimately changes spelling.\n\n"
            "Fix: carry the suffix through the intermediate names, or "
            "convert explicitly:\n\n"
            "    NetworkLink(latency_s=latency)     # UNIT004\n"
            "    NetworkLink(latency_s=latency_s)   # clean"
        ),
    )
)

# The WIRE cross-layer rules live next to the whole-program pass; importing
# the module here keeps the registry complete whenever any rule is consulted
# (the import sits after every name it needs is defined).
from repro.analysis import project as _project  # noqa: E402,F401
