"""The cross-layer (whole-program) lint pass: the WIRE rule family.

The per-file rules in :mod:`repro.analysis.rules` see one module at a time;
the invariants that rot first in this repo span *layers*: an
``ExperimentConfig`` field nobody can set from the CLI, a
``CommFabric.summary`` total the CSV exporter silently drops, a CLI
``choices=`` list that drifts from the registry it mirrors.  This module
adds a second kind of rule — ``scope="project"`` — whose ``check`` receives
a :class:`ProjectContext` holding **every module of the scan** and runs once
per ``lint_paths`` invocation:

``WIRE001``
    every ``ExperimentConfig`` field must be reachable from a ``cli.py``
    ``add_argument`` dest (passed through the ``ExperimentConfig(...)``
    construction in the CLI module), validated in ``__post_init__``, or
    baselined with a justification;
``WIRE002``
    every stable ``CommFabric.summary`` total key must appear in the CSV
    schema (``_CSV_COLUMNS``, modulo the documented ``_s`` suffix mapping)
    or be listed in ``_CSV_EXEMPT_SUMMARY_KEYS`` next to the schema;
``WIRE003``
    registry-backed CLI options (``--mode``, ``--replication-mode``,
    ``--replica-selection``) must derive their ``choices`` from the
    registry, never restate them as literals.

All discovery is *content-based* (the class/function/constant names), not
path-based, so the rules work unchanged on the shipped tree and on the
fixture mini-projects the tests build under ``tmp_path``.  A rule whose
anchor modules are absent from the scan simply reports nothing — linting a
lone fixture file never demands the whole repository.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.linter import Finding
from repro.analysis.rules import Rule, register_rule

#: registry-backed CLI options and where their one source of truth lives.
REGISTRY_BACKED_OPTIONS: Dict[str, str] = {
    "--mode": "repro.sched.registry.registered_modes()",
    "--replication-mode": "repro.simnet.replication.REPLICATION_MODES",
    "--replica-selection": "repro.sched.actors.REPLICA_SELECTIONS",
}

#: summary-key f-string loops that expand over a static module constant;
#: every other dynamic key (per-replica, per-chain-kind) is run-dependent
#: and deliberately outside the stable CSV schema.
_STATIC_KEY_DOMAINS = {"phase_totals": "TRANSFER_PHASES"}


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed module of the scan."""

    path: str
    tree: ast.Module
    lines: Tuple[str, ...]

    def snippet(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            snippet=self.snippet(node),
        )


@dataclass
class ProjectContext:
    """Every module of one ``lint_paths`` invocation, parsed once."""

    modules: List[ModuleInfo]

    def find_class(self, name: str) -> Optional[Tuple[ModuleInfo, ast.ClassDef]]:
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == name:
                    return module, node
        return None

    def find_assignment(self, name: str) -> Optional[Tuple[ModuleInfo, ast.AST]]:
        """A module-level ``name = value`` (or annotated) assignment anywhere."""
        for module in self.modules:
            value = _module_assignment(module.tree, name)
            if value is not None:
                return module, value
        return None

    def cli_modules(self) -> List[ModuleInfo]:
        """Modules that build an argparse interface (contain ``add_argument``)."""
        return [m for m in self.modules if any(True for _ in _iter_add_argument(m.tree))]


# ----------------------------------------------------------------- AST helpers
def _module_assignment(tree: ast.Module, name: str) -> Optional[ast.AST]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return node.value
    return None


def _string_elements(node: ast.AST) -> Optional[List[str]]:
    """Strings of a List/Tuple/Set literal (unwrapping ``frozenset(...)``)."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("frozenset", "set", "tuple", "list")
        and len(node.args) == 1
    ):
        node = node.args[0]
    if not isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return None
    values: List[str] = []
    for element in node.elts:
        if not isinstance(element, ast.Constant) or not isinstance(element.value, str):
            return None
        values.append(element.value)
    return values


def _iter_add_argument(tree: ast.Module):
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            yield node


def _add_argument_dest(call: ast.Call) -> Optional[str]:
    """The argparse dest of one ``add_argument`` call, mirroring argparse."""
    for keyword in call.keywords:
        if keyword.arg == "dest" and isinstance(keyword.value, ast.Constant):
            return str(keyword.value.value)
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            option = arg.value
            if option.startswith("--"):
                return option[2:].replace("-", "_")
            if not option.startswith("-"):
                return option  # positional
    return None


def _is_args_attribute(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "args"
    ):
        return node.attr
    return None


# --------------------------------------------------------------------- WIRE001
def _config_fields(class_def: ast.ClassDef) -> List[Tuple[str, ast.AnnAssign]]:
    fields: List[Tuple[str, ast.AnnAssign]] = []
    for node in class_def.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            name = node.target.id
            if not name.startswith("_"):
                fields.append((name, node))
    return fields


def _post_init_reads(class_def: ast.ClassDef) -> Set[str]:
    """Every ``self.X`` the class's ``__post_init__`` touches."""
    reads: Set[str] = set()
    for node in class_def.body:
        if isinstance(node, ast.FunctionDef) and node.name == "__post_init__":
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    reads.add(sub.attr)
    return reads


def _check_config_cli_wiring(project: ProjectContext) -> List[Finding]:
    located = project.find_class("ExperimentConfig")
    if located is None:
        return []
    config_module, class_def = located
    fields = _config_fields(class_def)
    validated = _post_init_reads(class_def)

    cli_modules = project.cli_modules()
    dests: Set[str] = set()
    for module in cli_modules:
        for call in _iter_add_argument(module.tree):
            dest = _add_argument_dest(call)
            if dest is not None:
                dests.add(dest)

    findings: List[Finding] = []
    passed: Set[str] = set()
    for module in cli_modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            if name != "ExperimentConfig":
                continue
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                passed.add(keyword.arg)
                # The chain has to hold end to end: a keyword reading a
                # namespace attribute no add_argument defines is dead wiring.
                dest = _is_args_attribute(keyword.value)
                if dest is not None and dest not in dests:
                    findings.append(
                        module.finding(
                            keyword.value,
                            "WIRE001",
                            f"ExperimentConfig({keyword.arg}=...) reads "
                            f"'args.{dest}' but no add_argument defines that "
                            "dest — the flag and the config field are not "
                            "actually connected",
                        )
                    )

    if not cli_modules:
        # Cross-layer by definition: linting a lone config fixture without
        # any argparse module in the scan asserts nothing about wiring.
        return findings

    for name, node in fields:
        if name in passed or name in validated:
            continue
        findings.append(
            config_module.finding(
                node,
                "WIRE001",
                f"ExperimentConfig field '{name}' is neither reachable from "
                "a CLI add_argument dest nor validated in __post_init__ — "
                "wire a CLI flag, validate it, or baseline it with a "
                "justification",
            )
        )
    return findings


# --------------------------------------------------------------------- WIRE002
def _summary_keys(module: ModuleInfo) -> List[Tuple[str, ast.AST]]:
    """The stable keys ``summary()`` exports, each with its source node.

    Static ``out["key"] = ...`` assigns are taken verbatim; f-string keys in
    loops over ``phase_totals()`` expand over the module's
    ``TRANSFER_PHASES`` constant (the phase set is closed); loops over the
    per-replica / per-chain-kind totals produce run-dependent keys and are
    skipped; ``out.update(self.network.resilience_totals())`` pulls the keys
    of the dict literal that method returns.
    """
    summary_def: Optional[ast.FunctionDef] = None
    helpers: Dict[str, ast.FunctionDef] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.FunctionDef):
            helpers[node.name] = node
            if node.name == "summary":
                summary_def = node
    if summary_def is None:
        return []

    domains: Dict[str, List[str]] = {}
    for call_name, constant in _STATIC_KEY_DOMAINS.items():
        value = _module_assignment(module.tree, constant)
        elements = _string_elements(value) if value is not None else None
        if elements is not None:
            domains[call_name] = elements

    keys: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(summary_def):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Subscript):
                continue
            slice_node = target.slice
            if isinstance(slice_node, ast.Constant) and isinstance(slice_node.value, str):
                keys.append((slice_node.value, node))
        elif isinstance(node, ast.For):
            domain = _loop_domain(node, domains)
            if domain is None:
                continue
            loop_var = _first_loop_name(node.target)
            for sub in ast.walk(node):
                if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                    continue
                target = sub.targets[0]
                if not isinstance(target, ast.Subscript):
                    continue
                pattern = _fstring_pattern(target.slice, loop_var)
                if pattern is None:
                    continue
                prefix, suffix = pattern
                for value in domain:
                    keys.append((prefix + value + suffix, sub))
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "update"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Call)
                and isinstance(node.args[0].func, ast.Attribute)
            ):
                helper = helpers.get(node.args[0].func.attr)
                if helper is not None:
                    keys.extend((key, node) for key in _returned_dict_keys(helper))
    return keys


def _loop_domain(node: ast.For, domains: Dict[str, List[str]]) -> Optional[List[str]]:
    for sub in ast.walk(node.iter):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr in domains:
                return domains[sub.func.attr]
    return None


def _first_loop_name(target: ast.AST) -> Optional[str]:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Tuple) and target.elts and isinstance(target.elts[0], ast.Name):
        return target.elts[0].id
    return None


def _fstring_pattern(node: ast.AST, loop_var: Optional[str]) -> Optional[Tuple[str, str]]:
    """``f"{var}_time"`` → ``("", "_time")`` when ``var`` is the loop variable."""
    if not isinstance(node, ast.JoinedStr) or loop_var is None:
        return None
    prefix, suffix = "", ""
    seen_var = False
    for part in node.values:
        if isinstance(part, ast.Constant) and isinstance(part.value, str):
            if seen_var:
                suffix += part.value
            else:
                prefix += part.value
        elif isinstance(part, ast.FormattedValue):
            if seen_var or not isinstance(part.value, ast.Name):
                return None
            if part.value.id != loop_var:
                return None
            seen_var = True
        else:
            return None
    return (prefix, suffix) if seen_var else None


def _returned_dict_keys(func: ast.FunctionDef) -> List[str]:
    keys: List[str] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.append(key.value)
    return keys


def _check_summary_csv_schema(project: ProjectContext) -> List[Finding]:
    csv_located = project.find_assignment("_CSV_COLUMNS")
    if csv_located is None:
        return []
    csv_module, csv_value = csv_located
    columns = _string_elements(csv_value)
    if columns is None:
        return []
    column_set = set(columns)

    exempt: Set[str] = set()
    exempt_value = _module_assignment(csv_module.tree, "_CSV_EXEMPT_SUMMARY_KEYS")
    if exempt_value is not None:
        exempt = set(_string_elements(exempt_value) or [])

    findings: List[Finding] = []
    for module in project.modules:
        for key, node in _summary_keys(module):
            if key in column_set or f"{key}_s" in column_set or key in exempt:
                continue
            findings.append(
                module.finding(
                    node,
                    "WIRE002",
                    f"summary key '{key}' is exported by CommFabric.summary "
                    "but appears in neither _CSV_COLUMNS (directly or via the "
                    f"'{key}_s' suffix mapping) nor _CSV_EXEMPT_SUMMARY_KEYS "
                    "— the CSV schema silently dropped it",
                )
            )
    return findings


# --------------------------------------------------------------------- WIRE003
def _check_registry_backed_choices(project: ProjectContext) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        for call in _iter_add_argument(module.tree):
            option = next(
                (
                    arg.value
                    for arg in call.args
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                ),
                None,
            )
            registry = REGISTRY_BACKED_OPTIONS.get(option or "")
            if registry is None:
                continue
            choices = next((k.value for k in call.keywords if k.arg == "choices"), None)
            if choices is None:
                findings.append(
                    module.finding(
                        call,
                        "WIRE003",
                        f"registry-backed option '{option}' has no choices= — "
                        f"derive them from {registry} so new registrations "
                        "surface in the CLI automatically",
                    )
                )
            elif _string_elements(choices) is not None:
                findings.append(
                    module.finding(
                        choices,
                        "WIRE003",
                        f"'{option}' restates its choices as literals; derive "
                        f"them from {registry} — a parallel list silently "
                        "misses new registrations",
                    )
                )
    return findings


# ---------------------------------------------------------------- registration
register_rule(
    Rule(
        code="WIRE001",
        name="config-cli-wiring",
        summary=(
            "ExperimentConfig fields unreachable from any CLI add_argument "
            "dest and unvalidated in __post_init__ (cross-layer)"
        ),
        check=_check_config_cli_wiring,
        scope="project",
        explain=(
            "ExperimentConfig and the CLI are hand-maintained parallel "
            "schemas; a field neither passed through the "
            "ExperimentConfig(...) construction in the CLI module nor "
            "touched by __post_init__ validation is a knob nobody can turn "
            "and nothing checks — drift that only surfaces when someone "
            "finally needs it. The rule also walks the chain end to end: a "
            "keyword reading args.X where no add_argument defines dest X is "
            "dead wiring.\n\n"
            "Fix: add the flag (and pass it in _build_config), validate the "
            "field, or baseline it with a written justification."
        ),
    )
)
register_rule(
    Rule(
        code="WIRE002",
        name="summary-csv-schema",
        summary=(
            "stable CommFabric.summary keys missing from _CSV_COLUMNS "
            "(modulo the _s suffix mapping) and not explicitly exempted"
        ),
        check=_check_summary_csv_schema,
        scope="project",
        explain=(
            "_CSV_COLUMNS tracks CommFabric.summary by convention only: a "
            "new summary total that never gains a column is silently absent "
            "from every exported CSV. The rule statically expands the "
            "stable summary keys — literal out[...] assigns, the "
            "phase-totals f-string loop over TRANSFER_PHASES, and the "
            "resilience_totals() dict — and requires each to appear in "
            "_CSV_COLUMNS (directly or as key+'_s') or in "
            "_CSV_EXEMPT_SUMMARY_KEYS, the reviewed opt-out list next to "
            "the schema. Per-replica and per-chain-kind keys are "
            "run-dependent and out of scope."
        ),
    )
)
register_rule(
    Rule(
        code="WIRE003",
        name="registry-backed-choices",
        summary=(
            "CLI --mode/--replication-mode/--replica-selection choices "
            "restated as literals instead of derived from their registries"
        ),
        check=_check_registry_backed_choices,
        scope="project",
        explain=(
            "The mode set, the replication modes and the replica-selection "
            "strategies each have one source of truth "
            "(repro.sched.registry.registered_modes(), "
            "repro.simnet.replication.REPLICATION_MODES, "
            "repro.sched.actors.REPLICA_SELECTIONS). A choices= literal on "
            "the matching CLI option is a second copy that silently misses "
            "new registrations.\n\n"
            "    p.add_argument('--replication-mode', choices=['eager'])  # WIRE003\n"
            "    p.add_argument('--replication-mode', choices=list(REPLICATION_MODES))"
        ),
    )
)
