"""The determinism linter driver: findings, suppressions and the scan loop.

The linter parses each module once, runs every registered rule
(:mod:`repro.analysis.rules`) over the tree and filters the raw findings
through the two suppression channels:

* **inline** — ``# detlint: ignore[DET001]`` (or ``ignore[DET001,DET003]``)
  on the offending line suppresses those codes for that line only;
  ``# detlint: skip-file`` anywhere in a file skips the whole module.
* **baseline** — a checked-in JSON file (:mod:`repro.analysis.baseline`) of
  individually justified findings, fingerprinted by
  ``(path, code, stripped source line)`` so entries survive line churn.

Everything else surfaces in the :class:`LintReport` and fails the build.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.baseline import Baseline

#: inline suppression syntax: ``# detlint: ignore[DET001]`` / ``ignore[DET001, DET003]``.
_IGNORE_RE = re.compile(r"#\s*detlint:\s*ignore\[([A-Z0-9,\s]+)\]")
_SKIP_FILE_RE = re.compile(r"#\s*detlint:\s*skip-file\b")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    snippet: str = ""

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-free identity used by the baseline file."""
        return (self.path.replace("\\", "/"), self.code, self.snippet)

    def render(self) -> str:
        """One-line human-readable form (``path:line:col: CODE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class LintReport:
    """The outcome of one lint run over one or more paths."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing surfaced beyond suppressions and the baseline."""
        return not self.findings and not self.parse_errors

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.files_scanned += other.files_scanned
        self.suppressed += other.suppressed
        self.baselined += other.baselined
        self.parse_errors.extend(other.parse_errors)


def _inline_suppressions(lines: Sequence[str]) -> Tuple[bool, Dict[int, Set[str]]]:
    """Scan source lines for ``skip-file`` and per-line ``ignore[...]`` markers."""
    per_line: Dict[int, Set[str]] = {}
    skip_file = False
    for number, text in enumerate(lines, start=1):
        if _SKIP_FILE_RE.search(text):
            skip_file = True
        match = _IGNORE_RE.search(text)
        if match:
            codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
            per_line.setdefault(number, set()).update(codes)
    return skip_file, per_line


def lint_source(
    source: str,
    path: str = "<string>",
    codes: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint one module's source text with the **module-scope** rules.

    ``codes`` restricts the run to a subset of rule codes or families
    (``["DET003"]``, ``["UNIT"]``, any order); by default every registered
    module-scope rule runs.  Project-scope rules (the WIRE family) need the
    whole scan and only run under :func:`lint_paths`.  Inline suppressions
    are honoured; baseline filtering is the caller's concern (see
    :func:`lint_paths`).
    """
    from repro.analysis import rules as _rules  # deferred: rules imports Finding

    report = LintReport(files_scanned=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.parse_errors.append(f"{path}: {exc.msg} (line {exc.lineno})")
        return report

    lines = source.splitlines()
    skip_file, per_line = _inline_suppressions(lines)
    if skip_file:
        return report

    selected = [rule for rule in _rules.all_rules() if rule.scope == "module"]
    if codes is not None:
        wanted = set(_rules.expand_selectors(codes))  # unknown selectors raise
        selected = [rule for rule in selected if rule.code in wanted]

    context = _rules.LintContext(
        path=path,
        module_path=path.replace("\\", "/"),
        tree=tree,
        lines=lines,
    )
    for rule in selected:
        for finding in rule.check(context):
            if finding.code in per_line.get(finding.line, set()):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    report.findings.sort()
    return report


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    collected: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            collected.update(path.rglob("*.py"))
        else:
            collected.add(path)
    return sorted(collected)


def lint_paths(
    paths: Iterable[str],
    codes: Optional[Sequence[str]] = None,
    baseline: Optional["Baseline"] = None,
) -> LintReport:
    """Lint files and directories, filtering through an optional baseline.

    Runs every selected module-scope rule per file, then the project-scope
    rules (the cross-layer WIRE family) once over the whole scan.  Project
    findings honour the same inline suppressions as module findings: a
    ``# detlint: ignore[WIRE001]`` on the anchor line (or ``skip-file`` in
    the anchor module) suppresses them.
    """
    from repro.analysis import rules as _rules  # deferred: rules imports Finding
    from repro.analysis.project import ModuleInfo, ProjectContext

    selected = None if codes is None else _rules.expand_selectors(codes)
    report = LintReport()
    modules: List[ModuleInfo] = []
    suppressions: Dict[str, Tuple[bool, Dict[int, Set[str]]]] = {}
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        path = str(file_path)
        report.extend(lint_source(source, path=path, codes=selected))
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue  # already recorded as a parse error by lint_source
        lines = tuple(source.splitlines())
        normalized = path.replace("\\", "/")
        modules.append(ModuleInfo(path=normalized, tree=tree, lines=lines))
        suppressions[normalized] = _inline_suppressions(lines)

    project_rules = [
        rule
        for rule in _rules.all_rules()
        if rule.scope == "project" and (selected is None or rule.code in selected)
    ]
    if project_rules and modules:
        project = ProjectContext(modules=modules)
        for rule in project_rules:
            for finding in rule.check(project):
                skip_file, per_line = suppressions.get(finding.path, (False, {}))
                if skip_file or finding.code in per_line.get(finding.line, set()):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
        report.findings.sort()

    if baseline is not None:
        kept: List[Finding] = []
        for finding in report.findings:
            if baseline.contains(finding):
                report.baselined += 1
            else:
                kept.append(finding)
        report.findings = kept
    return report
