"""A single IPFS node: local add/get, pinning and garbage collection."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ipfs.blockstore import BlockStore, DEFAULT_CHUNK_SIZE
from repro.ipfs.cid import CID


class IPFSError(Exception):
    """Raised for retrieval failures and invalid node operations."""


@dataclass
class NodeStats:
    """Per-node transfer counters used in the overhead accounting."""

    bytes_added: int = 0
    bytes_retrieved: int = 0
    bytes_received_from_peers: int = 0
    bytes_sent_to_peers: int = 0
    objects_added: int = 0
    objects_fetched_remote: int = 0


class IPFSNode:
    """One storage node in the swarm (hosted on an aggregator machine).

    A node can add content (returning its CID), retrieve content it holds
    locally, pin CIDs to protect them from garbage collection, and exchange
    blocks with peers through the swarm.
    """

    def __init__(self, node_id: str, chunk_size: int = DEFAULT_CHUNK_SIZE):
        if not node_id:
            raise ValueError("node_id must be non-empty")
        self.node_id = node_id
        self.store = BlockStore(chunk_size=chunk_size)
        self.pinned: Set[CID] = set()
        self.stats = NodeStats()
        self._swarm = None  # set when the node joins a swarm

    # -- swarm membership -----------------------------------------------------
    def join(self, swarm) -> None:
        """Attach this node to a swarm (called by :class:`IPFSSwarm.add_node`)."""
        self._swarm = swarm

    @property
    def swarm(self):
        return self._swarm

    # -- content --------------------------------------------------------------
    def add(self, content: bytes, pin: bool = True) -> CID:
        """Store a payload locally, announce it to the swarm, return its CID."""
        obj = self.store.put(content)
        if pin:
            self.pinned.add(obj.cid)
        self.stats.bytes_added += len(content)
        self.stats.objects_added += 1
        if self._swarm is not None:
            self._swarm.announce_provider(obj.cid, self.node_id)
        return obj.cid

    def has_local(self, cid: CID) -> bool:
        """Whether the node can serve a CID without contacting peers."""
        return self.store.has(cid)

    def get(self, cid: CID) -> bytes:
        """Retrieve a payload, fetching blocks from peers when needed.

        Raises:
            IPFSError: when no provider in the swarm holds the content.
        """
        local = self.store.get(cid)
        if local is not None:
            self.stats.bytes_retrieved += len(local)
            return local
        if self._swarm is None:
            raise IPFSError(f"node {self.node_id} does not hold {cid} and is not in a swarm")
        payload = self._swarm.fetch(cid, requester_id=self.node_id)
        self.stats.bytes_retrieved += len(payload)
        return payload

    # -- pinning & GC -----------------------------------------------------------
    def pin(self, cid: CID) -> None:
        """Protect a CID (and its blocks) from garbage collection."""
        if not self.store.has(cid):
            raise IPFSError(f"cannot pin {cid}: not stored on node {self.node_id}")
        self.pinned.add(cid)

    def unpin(self, cid: CID) -> None:
        """Remove GC protection from a CID."""
        self.pinned.discard(cid)

    def garbage_collect(self) -> List[CID]:
        """Delete every unpinned object; returns the CIDs removed."""
        removed: List[CID] = []
        for cid in list(self.store.object_cids()):
            if cid not in self.pinned:
                if self.store.delete(cid):
                    removed.append(cid)
                    if self._swarm is not None:
                        self._swarm.withdraw_provider(cid, self.node_id)
        return removed

    # -- replication hooks used by the swarm -----------------------------------
    def _serve_blocks(self, cid: CID):
        """Hand a peer the root object and raw blocks for a CID."""
        obj = self.store.get_object(cid)
        if obj is None:
            raise IPFSError(f"node {self.node_id} asked to serve unknown CID {cid}")
        blocks = self.store.blocks_for(cid)
        # integer byte counts: addition is order-exact
        size = sum(len(b) for b in blocks.values())  # detlint: ignore[DET003]
        self.stats.bytes_sent_to_peers += size
        return obj, blocks

    def _receive_blocks(self, obj, blocks: Dict[CID, bytes]) -> None:
        """Install replicated content received from a peer."""
        self.store.put_object(obj, blocks)
        # integer byte counts: addition is order-exact
        self.stats.bytes_received_from_peers += sum(  # detlint: ignore[DET003]
            len(b) for b in blocks.values()
        )
        self.stats.objects_fetched_remote += 1

    @property
    def stored_bytes(self) -> int:
        """Raw bytes held in the node's block store."""
        return self.store.stored_bytes
