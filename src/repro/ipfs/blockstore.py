"""Chunked block storage underneath an IPFS node.

IPFS splits files into fixed-size blocks, addresses every block by its hash
and links them from a root object; the root's hash is the file's CID.  This
module reproduces that layout so content integrity is verifiable block by
block and large model weights are stored as many small blocks (which is what
makes retrieval latency proportional to model size in the timing model).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ipfs.cid import CID, compute_cid

DEFAULT_CHUNK_SIZE = 256 * 1024  # IPFS's default 256 KiB chunker

#: recently chunked payloads remembered per store (see BlockStore.put).
_PUT_MEMO_CAPACITY = 16


@dataclass
class ChunkedObject:
    """Root object describing a chunked payload: ordered links to data blocks."""

    cid: CID
    chunk_cids: List[CID]
    total_size: int

    def manifest_bytes(self) -> bytes:
        """Canonical encoding of the root object (what the root CID addresses)."""
        body = ",".join(c.value for c in self.chunk_cids) + f"|{self.total_size}"
        return body.encode("utf-8")


class BlockStore:
    """Hash-addressed storage of raw blocks plus root manifests."""

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE):
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self._blocks: Dict[CID, bytes] = {}
        self._objects: Dict[CID, ChunkedObject] = {}
        #: content -> root object LRU: republishing an unchanged payload
        #: (stale global re-upload, gossip re-offer) skips re-chunking and
        #: re-hashing.  Python caches a bytes object's hash, so a repeat
        #: lookup with the same object is one dict probe.
        self._put_memo: "OrderedDict[bytes, ChunkedObject]" = OrderedDict()

    # -- writes ---------------------------------------------------------------
    def put(self, content: bytes) -> ChunkedObject:
        """Chunk a payload, store every block, and return the root object.

        Content-memoized: a payload put before returns its remembered root
        object without re-chunking (re-installing the blocks only if the
        object was deleted in between).
        """
        cached = self._put_memo.get(content)
        if cached is not None:
            self._put_memo.move_to_end(content)
            if cached.cid in self._objects:
                return cached
            # Deleted since it was memoized: reinstall the blocks with the
            # already-computed CIDs.
            offsets = range(0, max(cached.total_size, 1), self.chunk_size)
            for cid, start in zip(cached.chunk_cids, offsets):
                self._blocks[cid] = content[start : start + self.chunk_size]
            self._objects[cached.cid] = cached
            return cached
        chunk_cids: List[CID] = []
        for start in range(0, max(len(content), 1), self.chunk_size):
            chunk = content[start : start + self.chunk_size]
            cid = compute_cid(chunk)
            self._blocks[cid] = chunk
            chunk_cids.append(cid)
        provisional = ChunkedObject(cid=compute_cid(b""), chunk_cids=chunk_cids, total_size=len(content))
        root_cid = compute_cid(provisional.manifest_bytes())
        obj = ChunkedObject(cid=root_cid, chunk_cids=chunk_cids, total_size=len(content))
        self._objects[root_cid] = obj
        self._put_memo[content] = obj
        if len(self._put_memo) > _PUT_MEMO_CAPACITY:
            self._put_memo.popitem(last=False)
        return obj

    def put_object(self, obj: ChunkedObject, blocks: Dict[CID, bytes]) -> None:
        """Install a chunked object replicated from another node."""
        for cid, chunk in blocks.items():
            if not cid.verify(chunk):
                raise ValueError(f"block content does not match its CID {cid}")
            self._blocks[cid] = chunk
        self._objects[obj.cid] = obj

    # -- reads ----------------------------------------------------------------
    def has(self, cid: CID) -> bool:
        """Whether the root object for a CID is stored locally."""
        return cid in self._objects

    def get_object(self, cid: CID) -> Optional[ChunkedObject]:
        """The root object for a CID, if stored locally."""
        return self._objects.get(cid)

    def get(self, cid: CID) -> Optional[bytes]:
        """Reassemble the full payload for a root CID, verifying every block."""
        obj = self._objects.get(cid)
        if obj is None:
            return None
        parts: List[bytes] = []
        for chunk_cid in obj.chunk_cids:
            chunk = self._blocks.get(chunk_cid)
            if chunk is None or not chunk_cid.verify(chunk):
                return None
            parts.append(chunk)
        payload = b"".join(parts)
        if len(payload) != obj.total_size:
            return None
        return payload

    def blocks_for(self, cid: CID) -> Dict[CID, bytes]:
        """All raw blocks belonging to a root CID (for replication to peers)."""
        obj = self._objects.get(cid)
        if obj is None:
            return {}
        return {c: self._blocks[c] for c in obj.chunk_cids if c in self._blocks}

    # -- maintenance ------------------------------------------------------------
    def delete(self, cid: CID) -> bool:
        """Remove a root object and any blocks no other object references."""
        obj = self._objects.pop(cid, None)
        if obj is None:
            return False
        still_referenced = {
            chunk for other in self._objects.values() for chunk in other.chunk_cids
        }
        for chunk_cid in obj.chunk_cids:
            if chunk_cid not in still_referenced:
                self._blocks.pop(chunk_cid, None)
        return True

    @property
    def object_count(self) -> int:
        """Number of stored root objects."""
        return len(self._objects)

    @property
    def stored_bytes(self) -> int:
        """Total bytes of raw block data held locally."""
        # integer byte counts: addition is order-exact
        return sum(len(b) for b in self._blocks.values())  # detlint: ignore[DET003]

    def object_cids(self) -> List[CID]:
        """All locally stored root CIDs."""
        return list(self._objects)
