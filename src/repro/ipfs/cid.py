"""Content identifiers (CIDs).

A CID is a self-describing content address: a version, a codec tag and the
multihash of the content.  The simulation keeps the structure (so CIDs are
recognisable, comparable and verifiable) while using SHA-256 as the digest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


_PREFIX = "Qm"  # the familiar CIDv0-style prefix


@dataclass(frozen=True, order=True)
class CID:
    """An immutable content identifier."""

    value: str

    def __post_init__(self) -> None:
        if not self.value.startswith(_PREFIX) or len(self.value) != len(_PREFIX) + 64:
            raise ValueError(f"malformed CID: {self.value!r}")

    def __str__(self) -> str:
        return self.value

    @property
    def digest(self) -> str:
        """The raw hex digest embedded in the CID."""
        return self.value[len(_PREFIX):]

    def verify(self, content: bytes) -> bool:
        """Check that ``content`` hashes to this CID."""
        return compute_cid(content) == self


def compute_cid(content: bytes) -> CID:
    """Derive the CID of a byte payload."""
    return CID(_PREFIX + hashlib.sha256(content).hexdigest())


def parse_cid(value: str) -> CID:
    """Parse and validate a CID string."""
    return CID(value)
