"""Content-addressed distributed storage (the IPFS-equivalent substrate).

UnifyFL stores serialized model weights on a private IPFS swarm hosted by the
aggregator nodes and passes only the content identifier (CID) through the
blockchain.  This package reproduces the behaviour that design depends on:

* :mod:`repro.ipfs.cid` — CIDs derived from content hashes (integrity).
* :mod:`repro.ipfs.blockstore` — chunking of payloads into fixed-size blocks
  addressed by their own hashes, with a root object linking them.
* :mod:`repro.ipfs.node` — a single IPFS node: add / get / pin / gc.
* :mod:`repro.ipfs.swarm` — a swarm of nodes with DHT-style provider records,
  so a node can retrieve content added by any peer; transfer sizes feed the
  timing/overhead simulation.
"""

from repro.ipfs.blockstore import BlockStore, ChunkedObject
from repro.ipfs.cid import CID, compute_cid
from repro.ipfs.node import IPFSError, IPFSNode
from repro.ipfs.swarm import IPFSSwarm

__all__ = [
    "BlockStore",
    "ChunkedObject",
    "CID",
    "compute_cid",
    "IPFSError",
    "IPFSNode",
    "IPFSSwarm",
]
