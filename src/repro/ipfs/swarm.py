"""The IPFS swarm: provider records (DHT) and peer-to-peer block exchange."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.ipfs.cid import CID
from repro.ipfs.node import IPFSError, IPFSNode


@dataclass
class TransferRecord:
    """One peer-to-peer content transfer, consumed by the timing simulation."""

    cid: CID
    provider: str
    requester: str
    num_bytes: int
    sim_time: float = 0.0


class IPFSSwarm:
    """A private swarm of IPFS nodes with a DHT-style provider index.

    The provider index maps a CID to the set of node ids that hold it —
    the role the Kademlia DHT plays in real IPFS.  ``fetch`` resolves a CID to
    a provider, transfers the blocks to the requesting node, verifies them
    against their hashes, and records the transfer for the overhead study.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._nodes: Dict[str, IPFSNode] = {}
        self._providers: Dict[CID, Set[str]] = {}
        self._clock = clock or (lambda: 0.0)
        self.transfers: List[TransferRecord] = []

    # -- membership -------------------------------------------------------------
    def add_node(self, node: IPFSNode) -> IPFSNode:
        """Add a node to the swarm and index any content it already holds."""
        if node.node_id in self._nodes:
            raise IPFSError(f"a node with id '{node.node_id}' is already in the swarm")
        self._nodes[node.node_id] = node
        node.join(self)
        for cid in node.store.object_cids():
            self.announce_provider(cid, node.node_id)
        return node

    def create_node(self, node_id: str, chunk_size: int = 256 * 1024) -> IPFSNode:
        """Create a node and add it to the swarm in one step."""
        return self.add_node(IPFSNode(node_id, chunk_size=chunk_size))

    def node(self, node_id: str) -> IPFSNode:
        """Look up a member node by id."""
        if node_id not in self._nodes:
            raise IPFSError(f"no node '{node_id}' in the swarm")
        return self._nodes[node_id]

    @property
    def node_ids(self) -> List[str]:
        """Ids of all member nodes."""
        return sorted(self._nodes)

    # -- provider index (DHT) ------------------------------------------------------
    def announce_provider(self, cid: CID, node_id: str) -> None:
        """Record that a node can provide a CID."""
        self._providers.setdefault(cid, set()).add(node_id)

    def withdraw_provider(self, cid: CID, node_id: str) -> None:
        """Remove a node from a CID's provider set (after GC)."""
        providers = self._providers.get(cid)
        if providers is not None:
            providers.discard(node_id)
            if not providers:
                del self._providers[cid]

    def providers(self, cid: CID) -> List[str]:
        """Node ids currently providing a CID."""
        return sorted(self._providers.get(cid, set()))

    # -- content exchange -----------------------------------------------------------
    def fetch(self, cid: CID, requester_id: str) -> bytes:
        """Transfer a CID's content to the requesting node and return it.

        Raises:
            IPFSError: when no provider holds the content or verification fails.
        """
        requester = self.node(requester_id)
        for provider_id in self.providers(cid):
            if provider_id == requester_id:
                continue
            provider = self._nodes.get(provider_id)
            if provider is None or not provider.has_local(cid):
                continue
            obj, blocks = provider._serve_blocks(cid)
            requester._receive_blocks(obj, blocks)
            payload = requester.store.get(cid)
            if payload is None:
                raise IPFSError(f"verification failed after transferring {cid}")
            self.announce_provider(cid, requester_id)
            self.transfers.append(
                TransferRecord(
                    cid=cid,
                    provider=provider_id,
                    requester=requester_id,
                    num_bytes=len(payload),
                    sim_time=self._clock(),
                )
            )
            return payload
        raise IPFSError(f"no provider in the swarm holds {cid}")

    # -- aggregate statistics -----------------------------------------------------
    def total_stored_bytes(self) -> int:
        """Sum of raw block bytes across every node (counts replicas)."""
        # integer byte counts: addition is order-exact
        return sum(node.stored_bytes for node in self._nodes.values())  # detlint: ignore[DET003]

    def total_transferred_bytes(self) -> int:
        """Total bytes moved between peers since the swarm was created."""
        return sum(t.num_bytes for t in self.transfers)

    def replication_factor(self, cid: CID) -> int:
        """Number of nodes currently holding a CID."""
        return len(self.providers(cid))
