#!/usr/bin/env python
"""The GPU-cluster workload: Async UnifyFL vs the centralized multilevel oracle.

A scaled-down version of the paper's Table 5 Runs 1 and 2: four organisations
with three GPU-node clients each train the MiniVGG model on the synthetic
Tiny-ImageNet stand-in under Dirichlet non-IID partitioning.  The script runs
the HBFL-style centralized baseline and Async UnifyFL with the Pick-All policy
on the same data and prints the accuracy/time comparison the paper's headline
result is built on.

Run with:  python examples/gpu_cluster_comparison.py
"""

from __future__ import annotations

from repro.core import (
    ExperimentConfig,
    ExperimentRunner,
    format_run_table,
    gpu_cluster_configs,
    tiny_imagenet_workload,
)

ROUNDS = 12


def build_config() -> ExperimentConfig:
    return ExperimentConfig(
        name="gpu-cluster-async",
        workload=tiny_imagenet_workload(
            rounds=ROUNDS, samples_per_class=40, num_classes=10, image_size=8, learning_rate=0.1
        ),
        clusters=gpu_cluster_configs(num_clusters=4, num_clients=3),
        mode="async",
        partitioning="dirichlet",
        dirichlet_alpha=0.5,
        rounds=ROUNDS,
        seed=3,
    )


def main() -> None:
    runner = ExperimentRunner(build_config())
    baseline = runner.run_centralized_baseline(rounds=ROUNDS)
    unifyfl = ExperimentRunner(build_config()).run()

    print(format_run_table(unifyfl))
    print()
    print(f"{'System':<38}{'Global Acc %':>14}{'Time (sim s)':>14}")
    print("-" * 66)
    print(f"{'Centralized multilevel (HBFL oracle)':<38}{baseline.global_accuracy * 100:>14.2f}{baseline.total_time:>14.0f}")
    print(f"{'Async UnifyFL (Pick All)':<38}{unifyfl.mean_global_accuracy * 100:>14.2f}{unifyfl.max_total_time:>14.0f}")
    print()
    speedup = baseline.total_time / unifyfl.max_total_time
    print(f"Async UnifyFL reaches comparable accuracy {speedup:.2f}x faster than the oracle,")
    print("without any organisation having to trust a third-party aggregator.")


if __name__ == "__main__":
    main()
