#!/usr/bin/env python
"""Customisability: plug your own aggregation policy and scoring policy in.

UnifyFL's selling point over HBFL/ChainFL is that each organisation keeps full
control over *how* it uses the shared models.  This example defines two custom
policies and wires them into one organisation of a federation whose other
members use built-in policies:

* ``TrimmedMeanScore`` — a scoring policy that drops the highest and lowest
  score before averaging (robust to one wild scorer).
* ``ScoreWeightedSample`` — an aggregation policy that samples ``k`` peer
  models with probability proportional to their resolved score.

Run with:  python examples/custom_policies.py
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core import (
    AggregationPolicy,
    CandidateModel,
    ClusterConfig,
    ExperimentConfig,
    ExperimentRunner,
    ScoringPolicy,
    cifar10_workload,
    format_run_table,
)
from repro.simnet.hardware import DOCKER_CONTAINER, EDGE_CPU_NODE


class TrimmedMeanScore(ScoringPolicy):
    """Average the scores after dropping the single best and worst value."""

    name = "trimmed_mean"

    def resolve(self, scores: Sequence[float]) -> float:
        values = sorted(scores)
        if len(values) > 2:
            values = values[1:-1]
        return float(np.mean(values))


class ScoreWeightedSample(AggregationPolicy):
    """Sample ``k`` peer models with probability proportional to their score."""

    name = "score_weighted_sample"

    def __init__(self, k: int = 2):
        self.k = k

    def select(
        self,
        candidates: Sequence[CandidateModel],
        self_candidate: Optional[CandidateModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> List[CandidateModel]:
        rng = rng or np.random.default_rng()
        scored = [c for c in candidates if not np.isnan(c.resolved_score)]
        chosen: List[CandidateModel] = []
        if scored:
            weights = np.array([max(c.resolved_score, 1e-6) for c in scored])
            probabilities = weights / weights.sum()
            count = min(self.k, len(scored))
            picked = rng.choice(len(scored), size=count, replace=False, p=probabilities)
            chosen = [scored[i] for i in sorted(picked)]
        if self_candidate is not None:
            chosen.append(self_candidate)
        return chosen


def main() -> None:
    clusters = [
        ClusterConfig(name="custom-org", num_clients=3, aggregator_profile=EDGE_CPU_NODE,
                      client_profile=DOCKER_CONTAINER),
        ClusterConfig(name="topk-org", num_clients=3, aggregation_policy="top_k", policy_k=2,
                      aggregator_profile=EDGE_CPU_NODE, client_profile=DOCKER_CONTAINER),
        ClusterConfig(name="all-org", num_clients=3, aggregation_policy="all",
                      aggregator_profile=EDGE_CPU_NODE, client_profile=DOCKER_CONTAINER),
    ]
    config = ExperimentConfig(
        name="custom-policies",
        workload=cifar10_workload(rounds=6, samples_per_class=24, image_size=8, learning_rate=0.05),
        clusters=clusters,
        mode="sync",
        partitioning="dirichlet",
        dirichlet_alpha=0.5,
        rounds=6,
        seed=21,
    )

    runner = ExperimentRunner(config)
    runner.build()
    # Swap the first organisation's policies for the custom implementations.
    custom_org = runner.aggregators[0]
    custom_org.aggregation_policy = ScoreWeightedSample(k=2)
    custom_org.scoring_policy = TrimmedMeanScore()

    result = runner.run()
    # Reflect the customisation in the printed table.
    result.aggregators[0].policy = "score_weighted/trimmed_mean"

    print(format_run_table(result))
    print()
    print("Each organisation used a different selection rule against the same shared")
    print("contract state — no change to the orchestrator or to the other organisations")
    print("was needed to plug the custom policies in.")


if __name__ == "__main__":
    main()
