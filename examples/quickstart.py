#!/usr/bin/env python
"""Quickstart: run a small UnifyFL federation end to end.

Three organisations (clusters), each with its own FL aggregator and three
clients, collaborate through the blockchain orchestrator and the
content-addressed storage swarm.  The script runs the asynchronous mode on a
Dirichlet non-IID split of the synthetic CIFAR-10 workload and prints a
Table-6-style summary plus the on-chain audit trail.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    ExperimentConfig,
    ExperimentRunner,
    cifar10_workload,
    edge_cluster_configs,
    format_run_table,
)


def main() -> None:
    config = ExperimentConfig(
        name="quickstart-async",
        workload=cifar10_workload(rounds=6, samples_per_class=24, image_size=8, learning_rate=0.05),
        clusters=edge_cluster_configs(num_clients=3, policy="top_k", policy_k=2),
        mode="async",
        partitioning="dirichlet",
        dirichlet_alpha=0.5,
        rounds=6,
        seed=42,
    )
    runner = ExperimentRunner(config)
    result = runner.run()

    print(format_run_table(result))
    print()
    print(f"Mean global accuracy : {result.mean_global_accuracy * 100:.2f} %")
    print(f"Federation makespan  : {result.max_total_time:.0f} simulated seconds")
    print()

    # Everything the federation did is auditable on the chain.
    chain = runner.chain
    print("On-chain audit trail")
    print(f"  blocks mined        : {int(result.chain_metrics['blocks_mined'])}")
    print(f"  transactions        : {int(result.chain_metrics['transactions_processed'])}")
    print(f"  chain verifies      : {chain.verify_chain()}")
    models = chain.call("unifyfl", "getLatestModelsWithScores")
    print(f"  models on contract  : {len(models)}")
    scored = sum(1 for record in models if record["scores"])
    print(f"  models with scores  : {scored}")
    print()
    print("Storage swarm")
    print(f"  stored bytes        : {int(result.storage_metrics['stored_bytes']):,}")
    print(f"  peer transfers      : {int(result.storage_metrics['transfer_count'])}")


if __name__ == "__main__":
    main()
