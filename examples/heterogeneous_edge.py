#!/usr/bin/env python
"""Device heterogeneity on the edge cluster: Sync vs Async orchestration.

Reproduces the scenario of Section 4.2.5 at example scale: three
organisations whose client fleets are Raspberry Pi 400s, Jetson Nanos and
Docker containers.  The Raspberry Pi silo is the straggler; in Sync mode every
organisation waits for it each round, while in Async mode the faster silos
keep training.

The script runs both modes on the same NIID data and prints the per-silo
completion times and accuracies side by side, plus the idle time that the
synchronous barriers cost.

Run with:  python examples/heterogeneous_edge.py
"""

from __future__ import annotations

from repro.core import (
    ExperimentConfig,
    cifar10_workload,
    edge_cluster_configs,
    format_comparison,
    format_run_table,
    run_experiment,
)


def build_config(mode: str) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"edge-heterogeneous-{mode}",
        workload=cifar10_workload(rounds=6, samples_per_class=24, image_size=8, learning_rate=0.05),
        clusters=edge_cluster_configs(num_clients=3, policy="top_k", policy_k=2),
        mode=mode,
        partitioning="dirichlet",
        dirichlet_alpha=0.5,
        rounds=6,
        seed=7,
    )


def main() -> None:
    sync_result = run_experiment(build_config("sync"))
    async_result = run_experiment(build_config("async"))

    print(format_run_table(sync_result))
    print()
    print(format_run_table(async_result))
    print()
    print(format_comparison([sync_result, async_result], labels=["Sync (lock-step)", "Async (independent)"]))
    print()

    print("Straggler analysis (client fleets: agg1=Raspberry Pi, agg2=Jetson, agg3=Docker)")
    for result, label in ((sync_result, "sync"), (async_result, "async")):
        for aggregator in result.aggregators:
            print(
                f"  [{label:>5}] {aggregator.name}: total {aggregator.total_time:7.0f} s, "
                f"idle {aggregator.idle_time:7.0f} s, stragglers {aggregator.straggler_count}"
            )
    speedup = sync_result.max_total_time / async_result.max_total_time
    print()
    print(f"Async finishes the same number of rounds {speedup:.2f}x faster than Sync,")
    print("because the Jetson and Docker silos no longer idle while the Raspberry Pi silo trains.")


if __name__ == "__main__":
    main()
