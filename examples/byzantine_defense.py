#!/usr/bin/env python
"""Defending against a Byzantine organisation with scoring policies (Figure 7).

Two honest organisations federate with a third that submits sign-flipped
(poisoned) models every round.  The example runs the same federation twice:

* with the *naive* policy (aggregate the top-3 models regardless of
  reliability), which keeps absorbing the poisoned model; and
* with the *smart* policy (aggregate only above-average models), which uses
  the majority scorers' accuracy scores to filter the attacker out.

It prints the honest organisations' accuracy over time under both policies and
the scores the attacker's submissions received on the smart run.

Run with:  python examples/byzantine_defense.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    ClusterConfig,
    ExperimentConfig,
    ExperimentRunner,
    cifar10_workload,
)

ROUNDS = 8


def build_config(policy: str) -> ExperimentConfig:
    clusters = [
        ClusterConfig(name="honest1", num_clients=3, aggregation_policy=policy, policy_k=3),
        ClusterConfig(name="honest2", num_clients=3, aggregation_policy=policy, policy_k=3),
        ClusterConfig(
            name="attacker",
            num_clients=3,
            aggregation_policy=policy,
            policy_k=3,
            malicious=True,
            attack="sign_flip",
        ),
    ]
    return ExperimentConfig(
        name=f"byzantine-{policy}",
        workload=cifar10_workload(rounds=ROUNDS, samples_per_class=30, image_size=8, learning_rate=0.05),
        clusters=clusters,
        mode="sync",
        partitioning="iid",
        rounds=ROUNDS,
        seed=11,
    )


def honest_accuracy_series(result) -> np.ndarray:
    honest = [result.aggregator("honest1"), result.aggregator("honest2")]
    return np.mean([aggregator.accuracy_series() for aggregator in honest], axis=0)


def main() -> None:
    naive_runner = ExperimentRunner(build_config("top_k"))
    naive = naive_runner.run()
    smart_runner = ExperimentRunner(build_config("above_average"))
    smart = smart_runner.run()

    naive_series = honest_accuracy_series(naive)
    smart_series = honest_accuracy_series(smart)

    print("Honest-organisation accuracy per round (one attacker submitting sign-flipped models)")
    print(f"{'Round':>6}{'Naive Top-3 (%)':>18}{'Smart Above-Average (%)':>26}")
    for i, (naive_acc, smart_acc) in enumerate(zip(naive_series, smart_series), start=1):
        print(f"{i:>6}{naive_acc * 100:>18.2f}{smart_acc * 100:>26.2f}")

    print()
    records = smart_runner.chain.call("unifyfl", "getLatestModelsWithScores")
    attacker = smart_runner.accounts["attacker"].address
    attacker_scores = [s for r in records if r["submitter"] == attacker for s in r["scores"].values()]
    honest_scores = [s for r in records if r["submitter"] != attacker for s in r["scores"].values()]
    print("Scores assigned by the majority scorers on the smart run:")
    print(f"  attacker submissions : mean {np.mean(attacker_scores):.3f}")
    print(f"  honest submissions   : mean {np.mean(honest_scores):.3f}")
    print()
    print("The smart policy drops every model scoring below the round average, so the")
    print("attacker's low-scoring submissions never enter the honest organisations' models.")


if __name__ == "__main__":
    main()
