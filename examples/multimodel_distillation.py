#!/usr/bin/env python
"""Multi-model collaboration via knowledge distillation (the paper's §5 Q1).

Weight averaging requires every organisation to train the same architecture.
This example shows the distillation-based extension: three organisations train
*different* MLP architectures on their private tabular data, and each round
they learn from the others by matching the peer ensemble's softened
predictions on their own inputs — no weights are averaged and no raw data is
shared.

The organisation with very little data ("clinic-small") is the one that gains
the most from the collaboration.

Run with:  python examples/multimodel_distillation.py
"""

from __future__ import annotations

import numpy as np

from repro.core.multimodel import MultiModelCollaboration, MultiModelParticipant
from repro.datasets.dataloader import train_test_split
from repro.datasets.synthetic import make_classification_dataset
from repro.ml.models import MLP

ROUNDS = 3


def build(seed: int) -> MultiModelCollaboration:
    dataset = make_classification_dataset(num_samples=400, num_features=12, num_classes=3, seed=seed)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=seed)
    hospital_a = train.subset(np.arange(0, 140))
    hospital_b = train.subset(np.arange(140, 280))
    clinic = train.subset(np.arange(280, 292))  # data-poor participant
    participants = [
        MultiModelParticipant("hospital-a (wide MLP)", MLP(12, (32,), 3, seed=seed), hospital_a,
                              learning_rate=0.1, local_epochs=2, distill_alpha=0.7),
        MultiModelParticipant("hospital-b (deep MLP)", MLP(12, (16, 16), 3, seed=seed + 1), hospital_b,
                              learning_rate=0.1, local_epochs=2, distill_alpha=0.7),
        MultiModelParticipant("clinic-small (tiny MLP)", MLP(12, (8,), 3, seed=seed + 2), clinic,
                              learning_rate=0.1, local_epochs=2, distill_alpha=0.7),
    ]
    return MultiModelCollaboration(participants, eval_data=test, seed=seed)


def main() -> None:
    collaborative = build(seed=1)
    isolated = build(seed=1)
    collaborative.run(ROUNDS, collaborate=True)
    isolated.run(ROUNDS, collaborate=False)

    print("Multi-model federation (different architectures, knowledge distillation)")
    print(f"{'Organisation':<26}{'Isolated acc %':>16}{'Collaborative acc %':>22}")
    print("-" * 64)
    for name in collaborative.final_accuracies():
        iso = isolated.final_accuracies()[name]
        collab = collaborative.final_accuracies()[name]
        print(f"{name:<26}{iso * 100:>16.2f}{collab * 100:>22.2f}")
    print()
    print("The data-poor clinic gains the most: its tiny model absorbs the two hospitals'")
    print("knowledge through soft labels while everyone keeps their own architecture.")


if __name__ == "__main__":
    main()
