#!/usr/bin/env python
"""Semi-synchronous orchestration: quorum rounds with a staleness bound.

The paper evaluates the two extremes of the orchestration spectrum — Sync
(lock-step phase windows, high idle time) and Async (free-running clusters,
zero idle but staggered model visibility).  This example runs the third mode
in between, FedBuff-style semi-sync: every cluster trains at its own pace,
but a logical round only closes once a quorum of clusters has submitted or a
staleness bound expires, and a cluster that already fed the open round waits
for the close before training again.

The same federation is driven through all three modes on identical data so
the trade-off is directly visible: semi-sync keeps most of Async's speed
while bounding how far apart the clusters' model versions can drift.

Run with:  python examples/semi_sync_quorum.py
"""

from __future__ import annotations

from repro.core import (
    ExperimentConfig,
    ExperimentRunner,
    cifar10_workload,
    edge_cluster_configs,
    format_comparison,
)


def build_config(mode: str, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"semi-example-{mode}",
        workload=cifar10_workload(rounds=5, samples_per_class=24, image_size=8, learning_rate=0.05),
        clusters=edge_cluster_configs(num_clients=3, policy="top_k", policy_k=2),
        mode=mode,
        partitioning="dirichlet",
        dirichlet_alpha=0.5,
        rounds=5,
        seed=7,
        **kwargs,
    )


def main() -> None:
    results = []
    for mode, kwargs in (
        ("sync", {}),
        ("async", {}),
        # Close each round once 2 of the 3 clusters submitted, or after 90
        # simulated seconds — whichever comes first.
        ("semi", {"semi_quorum_k": 2, "max_staleness": 90.0}),
    ):
        runner = ExperimentRunner(build_config(mode, **kwargs))
        results.append(runner.run())

    print(format_comparison(results, labels=["Sync", "Async", "Semi-sync (K=2, S=90s)"]))
    print()

    sync_result, async_result, semi_result = results
    sync_idle = sum(a.idle_time for a in sync_result.aggregators)
    semi_idle = sum(a.idle_time for a in semi_result.aggregators)
    print("The orchestration trade-off (same data, same seed):")
    print(f"  sync : makespan {sync_result.max_total_time:7.0f} s, idle {sync_idle:6.0f} s  (lock-step barriers)")
    print(f"  semi : makespan {semi_result.max_total_time:7.0f} s, idle {semi_idle:6.0f} s  (quorum waits, staleness-bounded)")
    print(f"  async: makespan {async_result.max_total_time:7.0f} s, idle      0 s  (free-running)")


if __name__ == "__main__":
    main()
