#!/usr/bin/env python
"""Differential privacy on client updates (the paper's §5 Q3 future work).

One organisation in the federation turns on the Gaussian DP mechanism for its
clients: every update they report is clipped to a fixed L2 norm and perturbed
with calibrated noise *before* it ever reaches the organisation's aggregator —
so nothing that leaves the silo (the aggregated model published to IPFS, the
scores on the chain) depends on any single client's raw update too strongly.

The example compares the DP organisation's accuracy and spent privacy budget
against its non-private peers.

Run with:  python examples/differential_privacy.py
"""

from __future__ import annotations

from repro.core import (
    ClusterConfig,
    ExperimentConfig,
    ExperimentRunner,
    cifar10_workload,
    format_run_table,
)
from repro.fl.privacy import PrivacyAccountant
from repro.simnet.hardware import DOCKER_CONTAINER, EDGE_CPU_NODE

ROUNDS = 6
CLIP_NORM = 5.0
NOISE_MULTIPLIER = 0.05


def main() -> None:
    clusters = [
        ClusterConfig(
            name="private-org",
            num_clients=3,
            aggregation_policy="top_k",
            policy_k=2,
            aggregator_profile=EDGE_CPU_NODE,
            client_profile=DOCKER_CONTAINER,
            dp_clip_norm=CLIP_NORM,
            dp_noise_multiplier=NOISE_MULTIPLIER,
        ),
        ClusterConfig(name="plain-org-1", num_clients=3, aggregation_policy="top_k", policy_k=2,
                      aggregator_profile=EDGE_CPU_NODE, client_profile=DOCKER_CONTAINER),
        ClusterConfig(name="plain-org-2", num_clients=3, aggregation_policy="top_k", policy_k=2,
                      aggregator_profile=EDGE_CPU_NODE, client_profile=DOCKER_CONTAINER),
    ]
    config = ExperimentConfig(
        name="differential-privacy",
        workload=cifar10_workload(rounds=ROUNDS, samples_per_class=24, image_size=8, learning_rate=0.05),
        clusters=clusters,
        mode="sync",
        partitioning="iid",
        rounds=ROUNDS,
        seed=19,
    )
    result = ExperimentRunner(config).run()

    print(format_run_table(result))
    print()
    accountant = PrivacyAccountant(noise_multiplier=NOISE_MULTIPLIER)
    epsilon = accountant.epsilon_after(ROUNDS)
    private = result.aggregator("private-org")
    peers = [a for a in result.aggregators if a.name != "private-org"]
    peer_mean = sum(a.global_accuracy for a in peers) / len(peers)
    print(f"Private organisation : {private.global_accuracy * 100:.2f} % global accuracy")
    print(f"Non-private peers    : {peer_mean * 100:.2f} % mean global accuracy")
    print(f"Approximate budget   : epsilon ~= {epsilon:.1f} per client after {ROUNDS} rounds "
          f"(clip {CLIP_NORM}, noise multiplier {NOISE_MULTIPLIER})")
    print()
    print("DP is applied inside the silo; the orchestrator, the storage swarm and the")
    print("other organisations are unchanged — privacy is a per-organisation choice,")
    print("exactly like the aggregation policy.")


if __name__ == "__main__":
    main()
