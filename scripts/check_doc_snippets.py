#!/usr/bin/env python
"""Run every fenced Python snippet in the Markdown documentation.

Documentation that cannot execute is documentation that has drifted.  This
script extracts each ```python fenced block from the given Markdown files
(default: ``README.md`` and everything under ``docs/``) and executes it in a
fresh interpreter with ``src/`` on the path, failing loudly on the first
snippet that raises.

A block can opt out by placing the marker comment

    <!-- snippet: no-run -->

on any of the three lines directly above its opening fence (for fragments
that illustrate an API mid-flow rather than a runnable program).  ```bash
blocks are never executed — the CI workflow smoke-tests the CLI separately.

Usage::

    python scripts/check_doc_snippets.py [file.md ...]
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
NO_RUN_MARKER = "<!-- snippet: no-run -->"
FENCE_RE = re.compile(r"^```python\s*$")
CLOSE_RE = re.compile(r"^```\s*$")

#: generous per-snippet budget; doc snippets are meant to be quickstarts.
TIMEOUT_S = 300


def extract_snippets(path: Path) -> List[Tuple[int, str]]:
    """Return ``(line_number, code)`` for each runnable python block."""
    lines = path.read_text(encoding="utf-8").splitlines()
    snippets: List[Tuple[int, str]] = []
    i = 0
    while i < len(lines):
        if FENCE_RE.match(lines[i]):
            skip = any(
                NO_RUN_MARKER in lines[j]
                for j in range(max(0, i - 3), i)
            )
            block: List[str] = []
            start = i + 1
            i += 1
            while i < len(lines) and not CLOSE_RE.match(lines[i]):
                block.append(lines[i])
                i += 1
            if not skip and block:
                snippets.append((start + 1, "\n".join(block) + "\n"))
        i += 1
    return snippets


def run_snippet(origin: str, code: str) -> Tuple[bool, str]:
    """Execute one snippet in a subprocess; return (ok, combined output)."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.NamedTemporaryFile("w", suffix=".py", delete=False) as handle:
        handle.write(code)
        script = handle.name
    try:
        proc = subprocess.run(
            [sys.executable, script],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=TIMEOUT_S,
        )
        output = proc.stdout + proc.stderr
        return proc.returncode == 0, output
    except subprocess.TimeoutExpired:
        return False, f"timed out after {TIMEOUT_S}s"
    finally:
        os.unlink(script)


def default_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def main(argv: List[str]) -> int:
    files = [Path(arg) for arg in argv] if argv else default_files()
    failures = 0
    total = 0
    for path in files:
        for line, code in extract_snippets(path):
            total += 1
            origin = f"{path.relative_to(REPO_ROOT) if path.is_absolute() else path}:{line}"
            ok, output = run_snippet(origin, code)
            status = "ok" if ok else "FAIL"
            print(f"[{status}] {origin}")
            if not ok:
                failures += 1
                print(output)
    print(f"{total - failures}/{total} documentation snippets ran cleanly")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
