"""Tests for the loss-based and cosine-similarity scoring algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ExperimentConfig, cifar10_workload, edge_cluster_configs
from repro.core.runner import run_experiment
from repro.core.scorer import CosineSimilarityScorer, LossScorer, build_scorer
from repro.core.timing import ClusterTimingModel
from repro.ml.models import MLP


class TestLossScorer:
    def test_scores_in_unit_interval(self, tabular_dataset):
        model = MLP(input_dim=10, hidden_dims=(8,), num_classes=3, seed=0)
        scorer = LossScorer(model, tabular_dataset)
        score = scorer.score(model.get_weights())
        assert 0.0 < score <= 1.0

    def test_trained_model_scores_higher(self, tabular_dataset):
        model = MLP(input_dim=10, hidden_dims=(32,), num_classes=3, seed=0)
        scorer = LossScorer(model, tabular_dataset)
        random_score = scorer.score(model.get_weights())
        trained = model.clone()
        trained.fit(tabular_dataset.x, tabular_dataset.y, epochs=15, batch_size=32)
        assert scorer.score(trained.get_weights()) > random_score

    def test_rejects_empty_test_data(self, tabular_dataset):
        model = MLP(input_dim=10, num_classes=3, seed=0)
        empty = tabular_dataset.subset(np.array([], dtype=int))
        with pytest.raises(ValueError):
            LossScorer(model, empty)

    def test_works_in_both_modes(self):
        assert LossScorer.requires_full_round is False


class TestCosineSimilarityScorer:
    def _weights(self, direction, scale=1.0, seed=0):
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(5, 5))
        return [direction * scale * base, direction * np.ones(3) * scale]

    def test_outlier_direction_scores_lowest(self):
        scorer = CosineSimilarityScorer()
        round_weights = {
            "h1": self._weights(+1.0, seed=1),
            "h2": self._weights(+1.0, scale=1.1, seed=1),
            "h3": self._weights(+1.0, scale=0.9, seed=1),
            "flipped": self._weights(-1.0, seed=1),
        }
        scores = scorer.score_round(round_weights)
        assert min(scores, key=scores.get) == "flipped"

    def test_scores_bounded(self):
        scorer = CosineSimilarityScorer()
        round_weights = {f"m{i}": self._weights(1.0, seed=i) for i in range(4)}
        scores = scorer.score_round(round_weights)
        assert all(0.0 <= s <= 1.0 for s in scores.values())

    def test_single_model_scores_one(self):
        scorer = CosineSimilarityScorer()
        assert scorer.score_round({"only": self._weights(1.0)}) == {"only": 1.0}

    def test_requires_round_context(self):
        with pytest.raises(ValueError):
            CosineSimilarityScorer().score(self._weights(1.0))

    def test_score_via_context(self):
        scorer = CosineSimilarityScorer()
        round_weights = {"a": self._weights(1.0, seed=2), "b": self._weights(-1.0, seed=2)}
        scores = scorer.score_round(round_weights)
        assert scorer.score(round_weights["b"], context={"round_weights": round_weights, "cid": "b"}) == pytest.approx(
            scores["b"]
        )

    def test_is_sync_only(self):
        assert CosineSimilarityScorer.requires_full_round is True


class TestRegistryAndConfig:
    def test_build_scorer_new_names(self, tabular_dataset):
        model = MLP(input_dim=10, num_classes=3, seed=0)
        assert isinstance(build_scorer("loss", model, tabular_dataset), LossScorer)
        assert isinstance(build_scorer("cosine"), CosineSimilarityScorer)

    def test_loss_requires_data(self):
        with pytest.raises(ValueError):
            build_scorer("loss")

    def test_config_accepts_new_algorithms(self, tiny_workload):
        config = ExperimentConfig(
            name="loss-config",
            workload=tiny_workload,
            clusters=edge_cluster_configs(num_clients=2),
            mode="async",
            scoring_algorithm="loss",
            rounds=2,
        )
        assert config.scoring_algorithm == "loss"

    def test_cosine_rejected_in_async(self, tiny_workload):
        with pytest.raises(ValueError):
            ExperimentConfig(
                name="cosine-async",
                workload=tiny_workload,
                clusters=edge_cluster_configs(num_clients=2),
                mode="async",
                scoring_algorithm="cosine",
                rounds=2,
            )

    def test_cosine_scoring_is_cheaper_than_accuracy(self):
        timing = ClusterTimingModel(cifar10_workload())
        cluster = edge_cluster_configs()[0]
        assert timing.scoring_time(cluster, 3, "cosine") < timing.scoring_time(cluster, 3, "accuracy")


class TestEndToEndWithNewScorers:
    def _config(self, scoring, mode):
        return ExperimentConfig(
            name=f"e2e-{scoring}",
            workload=cifar10_workload(rounds=2, samples_per_class=12, image_size=8),
            clusters=edge_cluster_configs(num_clients=2),
            mode=mode,
            partitioning="iid",
            scoring_algorithm=scoring,
            rounds=2,
            seed=23,
        )

    def test_loss_scoring_full_run(self):
        result = run_experiment(self._config("loss", "async"))
        assert result.scoring_algorithm == "loss"
        assert len(result.aggregators) == 3

    def test_cosine_scoring_full_run(self):
        result = run_experiment(self._config("cosine", "sync"))
        assert result.scoring_algorithm == "cosine"
        assert all(len(a.history) == 2 for a in result.aggregators)
