"""Breadth tests: remaining policies in full experiments, event filters,
result formatting details, swarm provider records and CLI parser edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain.events import EventFilter
from repro.cli import build_parser
from repro.core.config import ClusterConfig, ExperimentConfig, cifar10_workload, edge_cluster_configs
from repro.core.results import format_comparison, format_run_table
from repro.core.runner import ExperimentRunner, run_experiment
from repro.ipfs.cid import compute_cid


def small_experiment(name, clusters=None, **overrides):
    defaults = dict(
        workload=cifar10_workload(rounds=2, samples_per_class=12, image_size=8),
        clusters=clusters or edge_cluster_configs(num_clients=2),
        mode="sync",
        partitioning="iid",
        rounds=2,
        seed=41,
    )
    defaults.update(overrides)
    return ExperimentConfig(name=name, **defaults)


class TestRemainingPoliciesEndToEnd:
    @pytest.mark.parametrize("policy", ["random_k", "above_self", "above_median"])
    def test_policy_runs_in_full_experiment(self, policy):
        clusters = edge_cluster_configs(num_clients=2)
        for cluster in clusters:
            cluster.aggregation_policy = policy
            cluster.policy_k = 2
        result = run_experiment(small_experiment(f"policy-{policy}", clusters=clusters))
        assert len(result.aggregators) == 3
        assert all(policy in a.policy for a in result.aggregators)

    @pytest.mark.parametrize("scoring_policy", ["median", "min", "max"])
    def test_scoring_policy_runs_in_full_experiment(self, scoring_policy):
        clusters = edge_cluster_configs(num_clients=2)
        for cluster in clusters:
            cluster.scoring_policy = scoring_policy
        result = run_experiment(small_experiment(f"scoring-{scoring_policy}", clusters=clusters))
        assert all(scoring_policy in a.policy for a in result.aggregators)

    def test_mixed_policies_within_one_federation(self):
        clusters = [
            ClusterConfig(name="a", num_clients=2, aggregation_policy="random_k", policy_k=1, scoring_policy="min"),
            ClusterConfig(name="b", num_clients=2, aggregation_policy="above_self", scoring_policy="max"),
            ClusterConfig(name="c", num_clients=2, aggregation_policy="above_median", scoring_policy="median"),
        ]
        result = run_experiment(small_experiment("mixed-everything", clusters=clusters))
        labels = {a.policy for a in result.aggregators}
        assert len(labels) == 3


class TestEventLogDetails:
    def test_round_lifecycle_events_in_order(self):
        runner = ExperimentRunner(small_experiment("events"))
        runner.run()
        chain = runner.chain
        start_training = chain.events(EventFilter(name="StartTraining"))
        start_scoring = chain.events(EventFilter(name="StartScoring"))
        round_ended = chain.events(EventFilter(name="RoundEnded"))
        assert len(start_training) == len(start_scoring) == len(round_ended) == 2
        # Per round: training starts before scoring which ends before RoundEnded.
        for training, scoring, ended in zip(start_training, start_scoring, round_ended):
            assert training.block_number <= scoring.block_number <= ended.block_number

    def test_scorer_assignment_events_reference_registered_aggregators(self):
        runner = ExperimentRunner(small_experiment("assignment-events"))
        runner.run()
        chain = runner.chain
        registered = set(chain.call("unifyfl", "getAggregators"))
        for event in chain.events(EventFilter(name="ScorersAssigned")):
            assert set(event.payload["scorers"]) <= registered


class TestResultFormattingDetails:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(small_experiment("formatting"))

    def test_run_table_has_one_row_per_aggregator(self, result):
        table = format_run_table(result)
        data_rows = [line for line in table.splitlines() if line.startswith("agg")]
        assert len(data_rows) == len(result.aggregators)

    def test_run_table_percent_toggle(self, result):
        with_percent = format_run_table(result, percent=True)
        without_percent = format_run_table(result, percent=False)
        assert with_percent != without_percent

    def test_comparison_defaults_to_result_names(self, result):
        text = format_comparison([result])
        assert result.name in text

    def test_aggregator_lookup_is_case_sensitive(self, result):
        with pytest.raises(KeyError):
            result.aggregator("AGG1")


class TestSwarmProviderRecords:
    def test_provider_records_track_replication(self, ipfs_swarm):
        a = ipfs_swarm.node("node-a")
        b = ipfs_swarm.node("node-b")
        cid = a.add(b"replicate")
        assert ipfs_swarm.providers(cid) == ["node-a"]
        b.get(cid)
        assert set(ipfs_swarm.providers(cid)) == {"node-a", "node-b"}

    def test_unknown_cid_has_no_providers(self, ipfs_swarm):
        assert ipfs_swarm.providers(compute_cid(b"never added")) == []

    def test_withdraw_provider_removes_record(self, ipfs_swarm):
        a = ipfs_swarm.node("node-a")
        cid = a.add(b"short lived", pin=False)
        a.garbage_collect()
        assert ipfs_swarm.providers(cid) == []


class TestCLIParser:
    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.mode == "async"
        assert args.workload == "cifar10"
        assert args.testbed == "edge"

    def test_gpu_testbed_options(self):
        args = build_parser().parse_args(
            ["run", "--testbed", "gpu", "--workload", "tiny_imagenet", "--clusters", "4", "--scoring", "multikrum"]
        )
        assert args.testbed == "gpu"
        assert args.clusters == 4
        assert args.scoring == "multikrum"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy"])

    def test_compare_accepts_common_arguments(self):
        args = build_parser().parse_args(["compare", "--rounds", "4", "--alpha", "0.1"])
        assert args.rounds == 4
        assert args.alpha == 0.1


class TestOrchestrationResultBookkeeping:
    def test_histories_and_totals_consistent(self):
        runner = ExperimentRunner(small_experiment("bookkeeping", rounds=3))
        result = runner.run()
        for aggregator in result.aggregators:
            assert len(aggregator.history) == 3
            # Simulated time is monotonically non-decreasing across rounds.
            times = [record.sim_time for record in aggregator.history]
            assert times == sorted(times)
            # The reported total time matches the aggregator's final clock.
            assert aggregator.total_time == pytest.approx(times[-1])

    def test_idle_time_only_reported_for_sync(self):
        sync_result = run_experiment(small_experiment("idle-sync", mode="sync"))
        async_result = run_experiment(small_experiment("idle-async", mode="async"))
        assert any(a.idle_time > 0 for a in sync_result.aggregators)
        assert all(a.idle_time == 0 for a in async_result.aggregators)
