"""Tests for the UnifyFL orchestrator smart contract (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.chain.account import Account
from repro.chain.blockchain import Blockchain
from repro.chain.events import EventFilter
from repro.core.contract import UnifyFLContract


def _register(chain, accounts):
    for account in accounts:
        chain.send(account, "unifyfl", "registerAggregator")
    chain.mine_until_empty()


class TestRegistration:
    def test_register_records_aggregators(self, unifyfl_chain, validator_accounts):
        _register(unifyfl_chain, validator_accounts)
        registered = unifyfl_chain.call("unifyfl", "getAggregators")
        assert registered == [a.address for a in validator_accounts]

    def test_double_registration_reverts(self, unifyfl_chain, validator_accounts):
        _register(unifyfl_chain, validator_accounts)
        tx_hash = unifyfl_chain.send(validator_accounts[0], "unifyfl", "registerAggregator")
        unifyfl_chain.mine_until_empty()
        receipt = unifyfl_chain.receipt(tx_hash)
        assert not receipt.success
        assert "already registered" in receipt.error

    def test_registration_emits_event(self, unifyfl_chain, validator_accounts):
        _register(unifyfl_chain, validator_accounts[:1])
        events = unifyfl_chain.events(EventFilter(name="AggregatorRegistered"))
        assert len(events) == 1
        assert events[0].payload["aggregator"] == validator_accounts[0].address


class TestSyncPhases:
    def test_start_training_increments_round_and_emits(self, unifyfl_chain, validator_accounts):
        _register(unifyfl_chain, validator_accounts)
        unifyfl_chain.send(validator_accounts[0], "unifyfl", "startTraining")
        unifyfl_chain.mine_until_empty()
        assert unifyfl_chain.call("unifyfl", "getCurrentRound") == 1
        assert unifyfl_chain.call("unifyfl", "getPhase") == "training"
        assert len(unifyfl_chain.events(EventFilter(name="StartTraining"))) == 1

    def test_start_training_requires_aggregators(self, unifyfl_chain, validator_accounts):
        tx_hash = unifyfl_chain.send(validator_accounts[0], "unifyfl", "startTraining")
        unifyfl_chain.mine_until_empty()
        assert not unifyfl_chain.receipt(tx_hash).success

    def test_submit_outside_training_phase_reverts(self, unifyfl_chain, validator_accounts):
        _register(unifyfl_chain, validator_accounts)
        tx_hash = unifyfl_chain.send(
            validator_accounts[0], "unifyfl", "submitModel", {"cid": "Qm" + "a" * 64}
        )
        unifyfl_chain.mine_until_empty()
        assert not unifyfl_chain.receipt(tx_hash).success

    def test_unregistered_submitter_reverts(self, unifyfl_chain, validator_accounts):
        _register(unifyfl_chain, validator_accounts[:2])
        unifyfl_chain.send(validator_accounts[0], "unifyfl", "startTraining")
        unifyfl_chain.mine_until_empty()
        outsider = Account.create(seed=321)
        unifyfl_chain.register_account(outsider)
        tx_hash = unifyfl_chain.send(outsider, "unifyfl", "submitModel", {"cid": "Qm" + "b" * 64})
        unifyfl_chain.mine_until_empty()
        assert not unifyfl_chain.receipt(tx_hash).success

    def test_full_sync_round_flow(self, unifyfl_chain, validator_accounts):
        _register(unifyfl_chain, validator_accounts)
        driver = validator_accounts[0]
        unifyfl_chain.send(driver, "unifyfl", "startTraining")
        unifyfl_chain.mine_until_empty()

        cids = ["Qm" + str(i) * 64 for i in range(len(validator_accounts))]
        for account, cid in zip(validator_accounts, cids):
            unifyfl_chain.send(account, "unifyfl", "submitModel", {"cid": cid, "timestamp": 1.0})
        unifyfl_chain.mine_until_empty()
        assert unifyfl_chain.call("unifyfl", "roundSubmissionCount", {"round_number": 1}) == 3

        unifyfl_chain.send(driver, "unifyfl", "startScoring")
        unifyfl_chain.mine_until_empty()
        assert unifyfl_chain.call("unifyfl", "getPhase") == "scoring"

        # Every submission received a majority of scorers (N // 2 + 1 = 2).
        address_by_account = {a.address: a for a in validator_accounts}
        for cid in cids:
            submission = unifyfl_chain.call("unifyfl", "getSubmission", {"cid": cid})
            scorers = submission["assigned_scorers"]
            assert len(scorers) == 2
            assert submission["submitter"] not in scorers
            for scorer_address in scorers:
                unifyfl_chain.send(
                    address_by_account[scorer_address],
                    "unifyfl",
                    "submitScore",
                    {"cid": cid, "score": 0.5, "timestamp": 2.0},
                )
        unifyfl_chain.mine_until_empty()

        records = unifyfl_chain.call("unifyfl", "getLatestModelsWithScores")
        assert len(records) == 3
        assert all(len(r["scores"]) == 2 for r in records)

        unifyfl_chain.send(driver, "unifyfl", "endRound")
        unifyfl_chain.mine_until_empty()
        assert unifyfl_chain.call("unifyfl", "getPhase") == "idle"

    def test_duplicate_cid_rejected(self, unifyfl_chain, validator_accounts):
        _register(unifyfl_chain, validator_accounts)
        unifyfl_chain.send(validator_accounts[0], "unifyfl", "startTraining")
        unifyfl_chain.mine_until_empty()
        cid = "Qm" + "c" * 64
        unifyfl_chain.send(validator_accounts[0], "unifyfl", "submitModel", {"cid": cid})
        unifyfl_chain.mine_until_empty()
        tx_hash = unifyfl_chain.send(validator_accounts[1], "unifyfl", "submitModel", {"cid": cid})
        unifyfl_chain.mine_until_empty()
        assert not unifyfl_chain.receipt(tx_hash).success

    def test_score_from_unassigned_scorer_reverts(self, unifyfl_chain, validator_accounts):
        _register(unifyfl_chain, validator_accounts)
        driver = validator_accounts[0]
        unifyfl_chain.send(driver, "unifyfl", "startTraining")
        unifyfl_chain.mine_until_empty()
        cid = "Qm" + "d" * 64
        unifyfl_chain.send(validator_accounts[0], "unifyfl", "submitModel", {"cid": cid})
        unifyfl_chain.mine_until_empty()
        unifyfl_chain.send(driver, "unifyfl", "startScoring")
        unifyfl_chain.mine_until_empty()
        submission = unifyfl_chain.call("unifyfl", "getSubmission", {"cid": cid})
        not_assigned = [
            a for a in validator_accounts
            if a.address not in submission["assigned_scorers"]
        ]
        # The submitter itself is never assigned with 3 aggregators.
        tx_hash = unifyfl_chain.send(not_assigned[0], "unifyfl", "submitScore", {"cid": cid, "score": 1.0})
        unifyfl_chain.mine_until_empty()
        assert not unifyfl_chain.receipt(tx_hash).success

    def test_scores_after_scoring_phase_rejected(self, unifyfl_chain, validator_accounts):
        _register(unifyfl_chain, validator_accounts)
        driver = validator_accounts[0]
        unifyfl_chain.send(driver, "unifyfl", "startTraining")
        unifyfl_chain.mine_until_empty()
        cid = "Qm" + "e" * 64
        unifyfl_chain.send(validator_accounts[1], "unifyfl", "submitModel", {"cid": cid})
        unifyfl_chain.mine_until_empty()
        unifyfl_chain.send(driver, "unifyfl", "startScoring")
        unifyfl_chain.mine_until_empty()
        unifyfl_chain.send(driver, "unifyfl", "endRound")
        unifyfl_chain.mine_until_empty()
        submission = unifyfl_chain.call("unifyfl", "getSubmission", {"cid": cid})
        scorer = next(a for a in validator_accounts if a.address in submission["assigned_scorers"])
        tx_hash = unifyfl_chain.send(scorer, "unifyfl", "submitScore", {"cid": cid, "score": 0.9})
        unifyfl_chain.mine_until_empty()
        assert not unifyfl_chain.receipt(tx_hash).success


class TestAsyncMode:
    @pytest.fixture()
    def async_chain(self, validator_accounts):
        chain = Blockchain(validator_accounts, block_period=1.0)
        chain.deploy_contract(UnifyFLContract(mode="async", scorer_seed=1))
        _register(chain, validator_accounts)
        return chain

    def test_submission_allowed_without_phase(self, async_chain, validator_accounts):
        cid = "Qm" + "f" * 64
        async_chain.send(validator_accounts[0], "unifyfl", "submitModel", {"cid": cid, "timestamp": 3.0})
        async_chain.mine_until_empty()
        submission = async_chain.call("unifyfl", "getSubmission", {"cid": cid})
        assert submission["cid"] == cid

    def test_scorers_assigned_immediately(self, async_chain, validator_accounts):
        cid = "Qm" + "1" * 64
        async_chain.send(validator_accounts[0], "unifyfl", "submitModel", {"cid": cid})
        async_chain.mine_until_empty()
        submission = async_chain.call("unifyfl", "getSubmission", {"cid": cid})
        assert len(submission["assigned_scorers"]) == 2
        events = async_chain.events(EventFilter(name="ScorersAssigned"))
        assert len(events) == 1

    def test_pending_assignments_tracked_and_cleared(self, async_chain, validator_accounts):
        cid = "Qm" + "2" * 64
        async_chain.send(validator_accounts[0], "unifyfl", "submitModel", {"cid": cid})
        async_chain.mine_until_empty()
        submission = async_chain.call("unifyfl", "getSubmission", {"cid": cid})
        scorer_address = submission["assigned_scorers"][0]
        pending = async_chain.call("unifyfl", "getAssignedModels", {"scorer": scorer_address})
        assert cid in pending
        scorer = next(a for a in validator_accounts if a.address == scorer_address)
        async_chain.send(scorer, "unifyfl", "submitScore", {"cid": cid, "score": 0.4})
        async_chain.mine_until_empty()
        pending_after = async_chain.call("unifyfl", "getAssignedModels", {"scorer": scorer_address})
        assert cid not in pending_after

    def test_before_time_filters_visibility(self, async_chain, validator_accounts):
        early = "Qm" + "3" * 64
        late = "Qm" + "4" * 64
        async_chain.send(validator_accounts[0], "unifyfl", "submitModel", {"cid": early, "timestamp": 10.0})
        async_chain.send(validator_accounts[1], "unifyfl", "submitModel", {"cid": late, "timestamp": 100.0})
        async_chain.mine_until_empty()
        visible = async_chain.call("unifyfl", "getLatestModelsWithScores", {"before_time": 50.0})
        cids = {r["cid"] for r in visible}
        assert early in cids and late not in cids

    def test_score_timestamps_filtered(self, async_chain, validator_accounts):
        cid = "Qm" + "5" * 64
        async_chain.send(validator_accounts[0], "unifyfl", "submitModel", {"cid": cid, "timestamp": 1.0})
        async_chain.mine_until_empty()
        submission = async_chain.call("unifyfl", "getSubmission", {"cid": cid})
        scorer = next(a for a in validator_accounts if a.address == submission["assigned_scorers"][0])
        async_chain.send(scorer, "unifyfl", "submitScore", {"cid": cid, "score": 0.7, "timestamp": 90.0})
        async_chain.mine_until_empty()
        early_view = async_chain.call("unifyfl", "getLatestModelsWithScores", {"before_time": 50.0})
        late_view = async_chain.call("unifyfl", "getLatestModelsWithScores", {"before_time": 100.0})
        assert early_view[0]["scores"] == {}
        assert len(late_view[0]["scores"]) == 1

    def test_start_scoring_rejected_in_async(self, async_chain, validator_accounts):
        tx_hash = async_chain.send(validator_accounts[0], "unifyfl", "startScoring")
        async_chain.mine_until_empty()
        assert not async_chain.receipt(tx_hash).success


class TestSemiMode:
    @pytest.fixture()
    def semi_chain(self, validator_accounts):
        chain = Blockchain(validator_accounts, block_period=1.0)
        chain.deploy_contract(UnifyFLContract(mode="semi", scorer_seed=1))
        _register(chain, validator_accounts)
        return chain

    def test_semi_starts_buffering_in_round_one(self, semi_chain):
        assert semi_chain.call("unifyfl", "getPhase") == "buffering"
        assert semi_chain.call("unifyfl", "getCurrentRound") == 1

    def test_submission_buffers_and_assigns_scorers(self, semi_chain, validator_accounts):
        cid = "Qm" + "a" * 64
        semi_chain.send(validator_accounts[0], "unifyfl", "submitModel", {"cid": cid, "timestamp": 5.0})
        semi_chain.mine_until_empty()
        submission = semi_chain.call("unifyfl", "getSubmission", {"cid": cid})
        assert len(submission["assigned_scorers"]) == 2
        status = semi_chain.call("unifyfl", "getSemiRoundStatus")
        assert status == {
            "round": 1,
            "buffered": 1,
            "submitters": 1,
            "quorum_k": 2,
            "opened_at": 0.0,
            "quorum_reached": False,
        }

    def test_quorum_event_emitted_at_threshold(self, semi_chain, validator_accounts):
        for i, account in enumerate(validator_accounts[:2]):
            semi_chain.send(account, "unifyfl", "submitModel", {"cid": "Qm" + str(i) * 64})
        semi_chain.mine_until_empty()
        assert semi_chain.call("unifyfl", "getSemiRoundStatus")["quorum_reached"]
        events = semi_chain.events(EventFilter(name="SemiQuorumReached"))
        assert len(events) == 1
        assert events[0].payload["buffered"] == 2

    def test_quorum_event_fires_once_even_past_threshold(self, semi_chain, validator_accounts):
        for i, account in enumerate(validator_accounts):
            semi_chain.send(account, "unifyfl", "submitModel", {"cid": "Qm" + str(i) * 64})
        semi_chain.mine_until_empty()
        events = semi_chain.events(EventFilter(name="SemiQuorumReached"))
        assert len(events) == 1
        assert events[0].payload["submitters"] == 2

    def test_quorum_counts_distinct_clusters_not_submissions(self, semi_chain, validator_accounts):
        # One cluster resubmitting must not reach a 2-cluster quorum by itself.
        for tag in ("x", "y"):
            semi_chain.send(
                validator_accounts[0], "unifyfl", "submitModel", {"cid": "Qm" + tag * 64}
            )
        semi_chain.mine_until_empty()
        status = semi_chain.call("unifyfl", "getSemiRoundStatus")
        assert status["buffered"] == 2
        assert status["submitters"] == 1
        assert not status["quorum_reached"]
        assert not semi_chain.events(EventFilter(name="SemiQuorumReached"))

    def test_close_advances_round_and_clears_buffer(self, semi_chain, validator_accounts):
        semi_chain.send(validator_accounts[0], "unifyfl", "submitModel", {"cid": "Qm" + "b" * 64})
        semi_chain.mine_until_empty()
        semi_chain.send(validator_accounts[0], "unifyfl", "closeSemiRound", {"timestamp": 12.5})
        semi_chain.mine_until_empty()
        status = semi_chain.call("unifyfl", "getSemiRoundStatus")
        assert status["round"] == 2
        assert status["buffered"] == 0
        assert status["opened_at"] == 12.5
        closed = semi_chain.events(EventFilter(name="SemiRoundClosed"))
        assert len(closed) == 1
        assert closed[0].payload["duration"] == 12.5

    def test_close_empty_round_reverts(self, semi_chain, validator_accounts):
        tx_hash = semi_chain.send(validator_accounts[0], "unifyfl", "closeSemiRound", {"timestamp": 1.0})
        semi_chain.mine_until_empty()
        receipt = semi_chain.receipt(tx_hash)
        assert not receipt.success
        assert "no submissions" in receipt.error

    def test_configure_quorum(self, semi_chain, validator_accounts):
        semi_chain.send(validator_accounts[0], "unifyfl", "configureSemiRound", {"quorum_k": 3})
        semi_chain.mine_until_empty()
        assert semi_chain.call("unifyfl", "getSemiRoundStatus")["quorum_k"] == 3

    def test_reconfigure_mid_round_reverts(self, semi_chain, validator_accounts):
        semi_chain.send(validator_accounts[0], "unifyfl", "submitModel", {"cid": "Qm" + "e" * 64})
        semi_chain.mine_until_empty()
        tx_hash = semi_chain.send(validator_accounts[0], "unifyfl", "configureSemiRound", {"quorum_k": 3})
        semi_chain.mine_until_empty()
        receipt = semi_chain.receipt(tx_hash)
        assert not receipt.success
        assert "between rounds" in receipt.error

    def test_submissions_land_in_successive_rounds(self, semi_chain, validator_accounts):
        semi_chain.send(validator_accounts[0], "unifyfl", "submitModel", {"cid": "Qm" + "c" * 64})
        semi_chain.mine_until_empty()
        semi_chain.send(validator_accounts[0], "unifyfl", "closeSemiRound", {"timestamp": 9.0})
        semi_chain.mine_until_empty()
        semi_chain.send(validator_accounts[1], "unifyfl", "submitModel", {"cid": "Qm" + "d" * 64})
        semi_chain.mine_until_empty()
        first = semi_chain.call("unifyfl", "getSubmission", {"cid": "Qm" + "c" * 64})
        second = semi_chain.call("unifyfl", "getSubmission", {"cid": "Qm" + "d" * 64})
        assert (first["round"], second["round"]) == (1, 2)

    def test_semi_round_methods_revert_outside_semi_mode(self, unifyfl_chain, validator_accounts):
        _register(unifyfl_chain, validator_accounts)
        tx_hash = unifyfl_chain.send(validator_accounts[0], "unifyfl", "closeSemiRound", {"timestamp": 0.0})
        unifyfl_chain.mine_until_empty()
        assert not unifyfl_chain.receipt(tx_hash).success
        with pytest.raises(Exception):
            unifyfl_chain.call("unifyfl", "getSemiRoundStatus")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            UnifyFLContract(mode="bogus")


class TestViews:
    def test_exclude_submitter(self, unifyfl_chain, validator_accounts):
        _register(unifyfl_chain, validator_accounts)
        unifyfl_chain.send(validator_accounts[0], "unifyfl", "startTraining")
        unifyfl_chain.mine_until_empty()
        unifyfl_chain.send(validator_accounts[0], "unifyfl", "submitModel", {"cid": "Qm" + "7" * 64})
        unifyfl_chain.send(validator_accounts[1], "unifyfl", "submitModel", {"cid": "Qm" + "8" * 64})
        unifyfl_chain.mine_until_empty()
        filtered = unifyfl_chain.call(
            "unifyfl",
            "getLatestModelsWithScores",
            {"exclude_submitter": validator_accounts[0].address},
        )
        assert len(filtered) == 1
        assert filtered[0]["submitter"] == validator_accounts[1].address

    def test_get_submission_unknown_cid(self, unifyfl_chain, validator_accounts):
        from repro.chain.contract import ContractError

        with pytest.raises(ContractError):
            unifyfl_chain.call("unifyfl", "getSubmission", {"cid": "Qm" + "9" * 64})

    def test_scorer_assignment_is_deterministic(self):
        def assignment(seed):
            accounts = [Account.create(label=f"v{i}", seed=500 + i) for i in range(3)]
            chain = Blockchain(accounts, block_period=1.0)
            chain.deploy_contract(UnifyFLContract(mode="async", scorer_seed=seed))
            _register(chain, accounts)
            chain.send(accounts[0], "unifyfl", "submitModel", {"cid": "Qm" + "a" * 64})
            chain.mine_until_empty()
            return tuple(chain.call("unifyfl", "getSubmission", {"cid": "Qm" + "a" * 64})["assigned_scorers"])

        assert assignment(7) == assignment(7)

    def test_contract_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            UnifyFLContract(mode="turbo")
