"""Tests for the discrete-event scheduling engine (repro.sched / simnet.events)."""

from __future__ import annotations

import pytest

from repro.sched.kernel import SimulationKernel
from repro.simnet.clock import SimClock
from repro.simnet.events import Event, EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            queue.push(t, lambda t=t: fired.append(t))
        while queue:
            queue.pop().action()
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_ties_break_by_priority_then_key_then_seq(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, priority=1, key="a")
        queue.push(1.0, lambda: None, priority=0, key="z")
        queue.push(1.0, lambda: None, priority=0, key="b")
        order = [queue.pop().key for _ in range(3)]
        assert order == ["b", "z", "a"]

    def test_equal_everything_preserves_insertion_order(self):
        queue = EventQueue()
        first = queue.push(2.0, lambda: None, key="x")
        second = queue.push(2.0, lambda: None, key="x")
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        doomed = queue.push(1.0, lambda: None)
        kept = queue.push(2.0, lambda: None)
        doomed.cancel()
        assert len(queue) == 1
        assert queue.pop() is kept
        assert not queue

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        doomed = queue.push(1.0, lambda: None)
        queue.push(7.0, lambda: None)
        doomed.cancel()
        assert queue.peek_time() == 7.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-1.0, lambda: None)

    def test_stats_count_pushes_and_pops(self):
        queue = EventQueue()
        for t in range(4):
            queue.push(float(t), lambda: None)
        queue.pop()
        assert queue.stats == {"pushes": 4, "pops": 1}


class TestSimulationKernel:
    def test_clock_advances_to_event_times(self):
        kernel = SimulationKernel()
        seen = []
        kernel.schedule_at(3.0, lambda: seen.append(kernel.now()))
        kernel.schedule_at(1.0, lambda: seen.append(kernel.now()))
        kernel.run()
        assert seen == [1.0, 3.0]
        assert kernel.now() == 3.0

    def test_handlers_can_schedule_followups(self):
        kernel = SimulationKernel()
        fired = []

        def chain(n):
            fired.append((n, kernel.now()))
            if n < 3:
                kernel.schedule_after(2.0, lambda: chain(n + 1))

        kernel.schedule_at(1.0, lambda: chain(1))
        processed = kernel.run()
        assert processed == 3
        assert fired == [(1, 1.0), (2, 3.0), (3, 5.0)]

    def test_schedule_at_clamps_to_now(self):
        kernel = SimulationKernel(SimClock(start=10.0))
        event = kernel.schedule_at(4.0, lambda: None)
        assert event.time == 10.0

    def test_schedule_after_rejects_negative_delay(self):
        kernel = SimulationKernel()
        with pytest.raises(ValueError):
            kernel.schedule_after(-1.0, lambda: None)

    def test_run_until_leaves_future_events_queued(self):
        kernel = SimulationKernel()
        fired = []
        kernel.schedule_at(1.0, lambda: fired.append(1))
        kernel.schedule_at(9.0, lambda: fired.append(9))
        kernel.run(until=5.0)
        assert fired == [1]
        assert len(kernel.queue) == 1
        kernel.run()
        assert fired == [1, 9]

    def test_stop_halts_processing(self):
        kernel = SimulationKernel()
        fired = []
        kernel.schedule_at(1.0, lambda: (fired.append(1), kernel.stop()))
        kernel.schedule_at(2.0, lambda: fired.append(2))
        kernel.run()
        assert fired == [1]
        # A later run() resumes with whatever is still queued.
        kernel.run()
        assert fired == [1, 2]

    def test_actor_style_scheduling_is_deterministic(self):
        """The async-orchestration pattern: one event stream per actor."""

        def simulate():
            kernel = SimulationKernel()
            clocks = {name: SimClock() for name in ("c", "a", "b")}
            trace = []

            def act(name, remaining):
                trace.append((name, kernel.now()))
                # Heterogeneous, deterministic per-actor work durations.
                clocks[name].advance(1.0 + (ord(name) - ord("a")) * 0.5)
                if remaining > 1:
                    kernel.schedule_at(
                        clocks[name].now(), lambda: act(name, remaining - 1), key=name
                    )

            for name, clock in clocks.items():
                kernel.schedule_at(clock.now(), lambda n=name: act(n, 3), key=name)
            kernel.run()
            return trace

        first, second = simulate(), simulate()
        assert first == second
        # Simultaneous start events resolve in key (actor-name) order.
        assert [name for name, _ in first[:3]] == ["a", "b", "c"]
        # The earliest-clock actor always acts next, as in the old O(n) scan.
        assert first[3] == ("a", 1.0)

    def test_events_processed_counter(self):
        kernel = SimulationKernel()
        for t in range(5):
            kernel.schedule_at(float(t), lambda: None)
        kernel.run()
        assert kernel.events_processed == 5

    def test_sched_package_imports_before_core(self):
        # Regression: repro.core.__init__ imports the orchestrators, which
        # import repro.sched.policies — importing repro.sched *first* used to
        # blow up on the resulting cycle in a fresh interpreter.
        import os
        import subprocess
        import sys

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        proc = subprocess.run(
            [sys.executable, "-c", "import repro.sched; import repro.core; print('ok')"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"
