"""Tests for the differential-privacy extension (clip + Gaussian noise)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.partition import IIDPartitioner
from repro.fl.client import Client, ClientConfig
from repro.fl.privacy import GaussianDPMechanism, PrivacyAccountant
from repro.ml.models import MLP
from repro.ml.tensor_utils import subtract_weights, weights_norm


class TestPrivacyAccountant:
    def test_epsilon_decreases_with_noise(self):
        low_noise = PrivacyAccountant(noise_multiplier=0.1)
        high_noise = PrivacyAccountant(noise_multiplier=1.0)
        assert high_noise.epsilon_per_round() < low_noise.epsilon_per_round()

    def test_epsilon_composes_linearly(self):
        accountant = PrivacyAccountant(noise_multiplier=0.5)
        assert accountant.epsilon_after(10) == pytest.approx(10 * accountant.epsilon_per_round())

    def test_zero_noise_is_infinite_epsilon(self):
        assert PrivacyAccountant(noise_multiplier=0.0).epsilon_per_round() == float("inf")

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(noise_multiplier=0.5).epsilon_after(-1)


class TestGaussianDPMechanism:
    def test_clipping_bounds_update_norm(self):
        mechanism = GaussianDPMechanism(clip_norm=1.0, noise_multiplier=0.0, rng=np.random.default_rng(0))
        update = [np.full((10,), 5.0)]
        private = mechanism.privatize_update(update)
        assert weights_norm(private) == pytest.approx(1.0)

    def test_small_update_unchanged_without_noise(self):
        mechanism = GaussianDPMechanism(clip_norm=10.0, noise_multiplier=0.0, rng=np.random.default_rng(0))
        update = [np.array([0.1, -0.2])]
        private = mechanism.privatize_update(update)
        assert np.allclose(private[0], update[0])

    def test_noise_changes_update(self):
        mechanism = GaussianDPMechanism(clip_norm=1.0, noise_multiplier=0.5, rng=np.random.default_rng(1))
        update = [np.zeros(50)]
        private = mechanism.privatize_update(update)
        assert not np.allclose(private[0], 0.0)

    def test_noise_scale_matches_multiplier(self):
        rng = np.random.default_rng(2)
        mechanism = GaussianDPMechanism(clip_norm=2.0, noise_multiplier=0.5, rng=rng)
        samples = [mechanism.privatize_update([np.zeros(2000)])[0] for _ in range(3)]
        observed_std = np.std(np.concatenate(samples))
        assert observed_std == pytest.approx(1.0, rel=0.1)  # 0.5 * clip_norm 2.0

    def test_privatize_weights_round_trip_structure(self):
        rng = np.random.default_rng(3)
        mechanism = GaussianDPMechanism(clip_norm=1.0, noise_multiplier=0.0, rng=rng)
        global_weights = [np.zeros((3, 3)), np.zeros(3)]
        new_weights = [np.full((3, 3), 0.01), np.full(3, 0.01)]
        private = mechanism.privatize_weights(global_weights, new_weights)
        assert [w.shape for w in private] == [(3, 3), (3,)]
        # Without noise and with a generous clip bound the result is unchanged.
        assert all(np.allclose(a, b) for a, b in zip(private, new_weights))

    def test_applications_and_epsilon_accumulate(self):
        mechanism = GaussianDPMechanism(clip_norm=1.0, noise_multiplier=0.5, rng=np.random.default_rng(4))
        for _ in range(3):
            mechanism.privatize_update([np.ones(4)])
        assert mechanism.applications == 3
        assert mechanism.spent_epsilon() == pytest.approx(3 * mechanism.accountant.epsilon_per_round())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GaussianDPMechanism(clip_norm=0.0)
        with pytest.raises(ValueError):
            GaussianDPMechanism(clip_norm=1.0, noise_multiplier=-1.0)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.1, 5.0))
    def test_property_clipped_norm_never_exceeds_bound(self, clip_norm):
        mechanism = GaussianDPMechanism(clip_norm=clip_norm, noise_multiplier=0.0, rng=np.random.default_rng(5))
        update = [np.random.default_rng(6).normal(size=(20,)) * 10]
        private = mechanism.privatize_update(update)
        assert weights_norm(private) <= clip_norm + 1e-9


class TestDPClient:
    def test_client_config_validation(self):
        with pytest.raises(ValueError):
            ClientConfig(dp_clip_norm=0.0)
        with pytest.raises(ValueError):
            ClientConfig(dp_noise_multiplier=-0.5)

    def test_dp_client_reports_clipped_update(self, tabular_dataset):
        model = MLP(input_dim=10, hidden_dims=(16,), num_classes=3, seed=0)
        partition = IIDPartitioner(2, seed=0).partition(tabular_dataset)[0]
        config = ClientConfig(
            local_epochs=1, batch_size=16, learning_rate=0.5, seed=1,
            dp_clip_norm=0.5, dp_noise_multiplier=0.0,
        )
        client = Client("dp", model.clone(), partition, config=config)
        global_weights = model.get_weights()
        result = client.fit(global_weights)
        update_norm = weights_norm(subtract_weights(result.weights, global_weights))
        assert update_norm <= 0.5 + 1e-6
        assert "dp_epsilon_spent" in result.metrics

    def test_non_dp_client_has_no_epsilon_metric(self, tabular_dataset):
        model = MLP(input_dim=10, hidden_dims=(16,), num_classes=3, seed=0)
        partition = IIDPartitioner(2, seed=0).partition(tabular_dataset)[0]
        client = Client("plain", model.clone(), partition, config=ClientConfig(local_epochs=1, batch_size=16))
        result = client.fit(model.get_weights())
        assert "dp_epsilon_spent" not in result.metrics

    def test_dp_noise_degrades_but_does_not_break_learning(self, tabular_dataset):
        """Moderate DP noise: the federation still learns, just less sharply."""
        from repro.fl.server import FLServer

        model = MLP(input_dim=10, hidden_dims=(16,), num_classes=3, seed=0)
        parts = IIDPartitioner(3, seed=0).partition(tabular_dataset)

        def run(dp: bool) -> float:
            config = ClientConfig(
                local_epochs=1, batch_size=16, learning_rate=0.05, seed=2,
                dp_clip_norm=5.0 if dp else None, dp_noise_multiplier=0.05 if dp else 0.0,
            )
            clients = [Client(f"c{i}", model.clone(), p, config=config) for i, p in enumerate(parts)]
            server = FLServer("s", model.get_weights(), clients, eval_data=tabular_dataset, eval_model=model.clone())
            return server.run(6, seed=0).final_accuracy

        noisy = run(dp=True)
        clean = run(dp=False)
        assert noisy > 0.4  # still learns under DP
        assert clean >= noisy - 0.1  # and DP does not mysteriously beat the clean run by much
