"""Tests for the replication subsystem (PR 4).

Replication is not free: an upload lands on exactly one storage replica, and
every other site only holds the artifact once a real origin→replica WAN
transfer has delivered it.  Covers, bottom-up:

* :class:`~repro.simnet.replication.ReplicaDirectory` — the availability
  ledger;
* :class:`~repro.simnet.network.LinkScheduler` — availability gating via
  ``earliest_start`` and the capacity-decrease guard;
* :class:`~repro.sched.actors.NetworkActor` — eager propagation, lazy
  fetches, origin pinning (``none``), read-your-writes download gating,
  cost-aware replica selection, and the replication metrics;
* :class:`~repro.sched.actors.ChainActor` — the genesis (block 0) anomaly;
* end-to-end experiments — replication accounting in ``comm_metrics``,
  determinism, and the bit-identity guarantees replication must not break.
"""

from __future__ import annotations

import pytest

from repro.core.config import ExperimentConfig, cifar10_workload, gpu_cluster_configs
from repro.core.reporting import load_results_csv, save_results_csv
from repro.core.results import format_comm_table
from repro.core.runner import ExperimentRunner
from repro.sched.actors import ChainActor, CommFabric, NetworkActor
from repro.simnet.network import LinkScheduler, NetworkLink, NetworkModel, Topology
from repro.simnet.replication import REPLICATION_MODES, ReplicaDirectory


# ------------------------------------------------------------------ directory
class TestReplicaDirectory:
    def test_upload_fixes_origin_and_arrival(self):
        directory = ReplicaDirectory()
        assert not directory.known("cid-1")
        directory.record_upload("cid-1", "site-a", 3.0)
        assert directory.known("cid-1")
        assert directory.origin("cid-1") == "site-a"
        assert directory.arrival("cid-1", "site-a") == 3.0
        assert directory.arrival("cid-1", "site-b") is None
        assert directory.replicas_holding("cid-1") == ["site-a"]
        assert len(directory) == 1

    def test_reupload_keeps_first_origin_and_earliest_arrival(self):
        directory = ReplicaDirectory()
        directory.record_upload("cid-1", "site-a", 5.0)
        directory.record_upload("cid-1", "site-b", 2.0)
        assert directory.origin("cid-1") == "site-a"
        assert directory.arrival("cid-1", "site-b") == 2.0
        directory.record_arrival("cid-1", "site-b", 9.0)   # later: ignored
        assert directory.arrival("cid-1", "site-b") == 2.0

    def test_none_is_never_known(self):
        directory = ReplicaDirectory()
        directory.record_upload("cid-1", "site-a", 0.0)
        assert not directory.known(None)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            ReplicaDirectory().record_arrival("cid-1", "site-a", -1.0)


# ------------------------------------------------------- scheduler foundations
def make_network(bandwidth_bytes_per_s: float = 1e6) -> NetworkModel:
    return NetworkModel(
        default_link=NetworkLink(latency_s=0.0, bandwidth_bytes_per_s=bandwidth_bytes_per_s)
    )


class TestSchedulerGatingAndCapacityGuard:
    def test_earliest_start_floors_placement_but_not_request_time(self):
        scheduler = LinkScheduler(make_network())
        gated = scheduler.transfer("storage", "agg1", 1_000_000, at=1.0, earliest_start=4.0)
        assert gated.requested_at == 1.0
        assert gated.started_at == pytest.approx(4.0)
        # The availability wait is accounted as queueing.
        assert gated.queued_time == pytest.approx(3.0)

    def test_earliest_start_before_request_time_is_a_no_op(self):
        scheduler = LinkScheduler(make_network())
        plain = scheduler.preview("a", "b", 1_000_000, at=5.0)
        floored = scheduler.preview("a", "b", 1_000_000, at=5.0, earliest_start=2.0)
        assert plain == floored

    def test_preview_matches_commit(self):
        scheduler = LinkScheduler(make_network())
        scheduler.transfer("a", "storage", 1_000_000, at=0.0)
        plan = scheduler.preview("a", "storage", 1_000_000, at=0.5, earliest_start=0.75)
        assert scheduler.log[-1].finished_at == pytest.approx(1.0)
        committed = scheduler.transfer("a", "storage", 1_000_000, at=0.5, earliest_start=0.75)
        assert committed == plan

    def test_capacity_decrease_with_committed_traffic_raises(self):
        """Regression: dropping an endpoint back to c=1 after overlapping
        reservations committed would violate the serial path's non-overlap
        assumption and silently produce overlapping "serial" placements."""
        scheduler = LinkScheduler(make_network(), capacities={"storage": 2})
        scheduler.transfer("a", "storage", 1_000_000, at=0.0)
        scheduler.transfer("b", "storage", 1_000_000, at=0.0)   # overlaps under c=2
        with pytest.raises(ValueError):
            scheduler.set_capacity("storage", 1)
        # Raising or restating the capacity is always fine.
        scheduler.set_capacity("storage", 2)
        scheduler.set_capacity("storage", 3)
        # And a *traffic-free* endpoint can still be lowered freely.
        fresh = LinkScheduler(make_network(), capacities={"storage": 4})
        fresh.set_capacity("storage", 1)
        assert fresh.capacity("storage") == 1


# ------------------------------------------------------------- chain genesis
class TestChainGenesis:
    def test_transaction_ready_at_time_zero_rides_block_one(self):
        """Regression: a transaction ready at exactly t=0 used to ride
        "block 0" and be final at consensus_delay — before any block
        interval had elapsed."""
        actor = ChainActor(block_interval=2.0, consensus_delay=0.25)
        op = actor.interact("submitModel", "agg1", at=0.0, num_transactions=0)
        assert op.block_index == 1
        assert op.sealed_at == pytest.approx(2.25)
        assert actor.estimate(0.0, num_transactions=0) == pytest.approx(2.25)

    def test_later_transactions_are_unaffected(self):
        actor = ChainActor(block_interval=2.0, consensus_delay=0.25)
        op = actor.interact("submitModel", "agg1", at=1.0)
        assert op.block_index == 1
        assert op.sealed_at == pytest.approx(2.25)


# ----------------------------------------------------------- replica selection
def two_site_actor(
    mode: str = "eager",
    selection: str = "affinity",
    wan: NetworkLink = None,
) -> NetworkActor:
    topology = Topology(
        default_link=NetworkLink(latency_s=0.0, bandwidth_bytes_per_s=1e6),
        default_wan_link=wan or NetworkLink(latency_s=0.0, bandwidth_bytes_per_s=1e6),
    )
    topology.add_replica("site-a").add_replica("site-b")
    topology.add_cluster("agg1", "site-a").add_cluster("agg2", "site-b")
    return NetworkActor(
        topology=topology, model_bytes=1_000_000, selection=selection, replication_mode=mode
    )


class TestCostAwareSelection:
    def test_empty_remote_replica_no_longer_beats_cheaper_busy_home(self):
        """Regression: with a slow WAN, an idle remote replica used to win on
        backlog alone even when the composed LAN+WAN wire time made it
        strictly slower than the home replica plus its tiny backlog."""
        actor = two_site_actor(
            selection="least-loaded",
            wan=NetworkLink(latency_s=5.0, bandwidth_bytes_per_s=1e6),
        )
        actor.upload("agg1", 1, at=0.0)   # home site-a: 1.0s wire beats 6.0s remote
        assert actor.transfers()[-1].destination == "site-a"
        # site-a backlog 1.0 + wire 1.0 = 2.0 still beats the empty remote's
        # 6.0s composed wire time: stay home.
        actor.upload("agg1", 1, at=0.0)
        assert actor.transfers()[-1].destination == "site-a"

    def test_least_loaded_download_waits_out_availability(self):
        """Least-loaded download ranking respects availability: an idle
        replica the object has not reached yet is charged the wait."""
        actor = two_site_actor(mode="eager", selection="least-loaded")
        actor.upload("agg1", 1, at=0.0, object_ids=["cid-1"])   # site-a, arrives site-b ~2.0
        # At t=1.0 site-a holds the object (backlog from the propagation
        # push), site-b receives it at 2.0; both downloads stay consistent
        # between estimate and commit.
        estimate = actor.estimate_download("agg2", at=1.0, object_id="cid-1")
        elapsed = actor.download("agg2", 1, at=1.0, object_ids=["cid-1"])
        assert elapsed == pytest.approx(estimate)


# -------------------------------------------------------------- actor streams
class TestReplicationStreams:
    def test_eager_upload_schedules_propagation_off_the_critical_path(self):
        actor = two_site_actor("eager")
        elapsed = actor.upload("agg1", 1, at=0.0, object_ids=["cid-1"])
        assert elapsed == pytest.approx(1.0)          # the uploader never waits for WAN pushes
        replication = actor.transfers("replication")
        assert len(replication) == 1
        push = replication[0]
        assert (push.source, push.destination) == ("site-a", "site-b")
        assert push.requested_at == pytest.approx(1.0)  # right after the upload commits
        assert actor.directory.arrival("cid-1", "site-b") == pytest.approx(push.finished_at)
        # The push is a real transfer in the scheduler's log, not bookkeeping.
        assert push in actor.scheduler.log

    def test_read_your_writes_gates_early_downloads(self):
        actor = two_site_actor("eager")
        actor.upload("agg1", 1, at=0.0, object_ids=["cid-1"])   # at site-b from t=2.0
        elapsed = actor.download("agg2", 1, at=0.5, object_ids=["cid-1"])
        download = actor.transfers("download")[-1]
        assert download.started_at == pytest.approx(2.0)        # waited for the arrival
        assert download.queued_time == pytest.approx(1.5)       # the wait is on the books
        assert elapsed == pytest.approx(2.5)

    def test_lazy_miss_commits_an_on_demand_fetch_the_downloader_waits_behind(self):
        actor = two_site_actor("lazy")
        actor.upload("agg1", 1, at=0.0, object_ids=["cid-1"])
        assert actor.transfers("replication") == []             # nothing pushed up front
        elapsed = actor.download("agg2", 1, at=3.0, object_ids=["cid-1"])
        fetch = actor.transfers("replication")[0]
        assert (fetch.source, fetch.destination) == ("site-a", "site-b")
        assert fetch.requested_at == pytest.approx(3.0)
        download = actor.transfers("download")[-1]
        assert download.started_at >= fetch.finished_at
        assert elapsed == pytest.approx(2.0)                    # 1s fetch + 1s download
        # A second consumer at the same site hits the ledger: no second fetch.
        actor.download("agg2", 1, at=10.0, object_ids=["cid-1"])
        assert len(actor.transfers("replication")) == 1

    def test_lazy_estimate_matches_commit(self):
        actor = two_site_actor("lazy")
        actor.upload("agg1", 1, at=0.0, object_ids=["cid-1"])
        estimate = actor.estimate_download("agg2", at=3.0, object_id="cid-1")
        assert actor.transfers("replication") == []             # estimates stay pure
        elapsed = actor.download("agg2", 1, at=3.0, object_ids=["cid-1"])
        assert elapsed == pytest.approx(estimate)

    def test_none_mode_pins_downloads_to_the_origin_replica(self):
        for selection in ("affinity", "least-loaded"):
            actor = two_site_actor("none", selection=selection)
            actor.upload("agg1", 1, at=0.0, object_ids=["cid-1"])
            actor.download("agg2", 1, at=5.0, object_ids=["cid-1"])
            actor.download("agg2", 1, at=9.0, object_ids=["cid-1"])
            downloads = actor.transfers("download")
            assert all(t.source == "site-a" for t in downloads)
            assert actor.transfers("replication") == []

    def test_unknown_objects_keep_the_legacy_free_replication_semantics(self):
        """Transfers that do not thread object ids behave exactly as before
        the ledger existed: no gating, no propagation."""
        tracked = two_site_actor("eager")
        legacy = two_site_actor("eager")
        tracked.upload("agg1", 1, at=0.0)
        legacy.upload("agg1", 1, at=0.0)
        tracked.download("agg2", 1, at=0.5)
        legacy.download("agg2", 1, at=0.5)
        assert tracked.scheduler.log == legacy.scheduler.log
        assert tracked.transfers("replication") == []

    def test_object_ids_must_match_the_model_count(self):
        actor = two_site_actor("eager")
        with pytest.raises(ValueError):
            actor.upload("agg1", 2, at=0.0, object_ids=["cid-1"])
        with pytest.raises(ValueError):
            actor.download("agg1", 1, at=0.0, object_ids=["a", "b"])

    def test_replication_mode_validation(self):
        with pytest.raises(ValueError):
            two_site_actor("gossip")
        assert set(REPLICATION_MODES) == {"eager", "lazy", "none"}

    def test_replication_totals_by_receiving_site(self):
        actor = two_site_actor("eager")
        actor.upload("agg1", 1, at=0.0, object_ids=["cid-1"])
        actor.upload("agg2", 1, at=0.0, object_ids=["cid-2"])
        totals = actor.replication_totals()
        assert totals["site-a"]["count"] == 1   # cid-2 pushed a->b? no: b->a
        assert totals["site-b"]["count"] == 1
        # Caller-facing replica totals exclude the propagation traffic.
        replica_totals = actor.replica_totals()
        assert replica_totals["site-a"]["count"] == 1
        assert replica_totals["site-b"]["count"] == 1
        phase = actor.phase_totals()
        assert phase["replication"]["count"] == 2
        assert phase["replication"]["time"] > 0


# ------------------------------------------------------------ fabric estimates
class TestSubmissionEstimateIncludesLazyFetch:
    def make_fabric(self, mode: str) -> CommFabric:
        wan = NetworkLink(latency_s=0.5, bandwidth_bytes_per_s=1e6)
        return CommFabric(
            two_site_actor(mode, wan=wan),
            ChainActor(block_interval=2.0, consensus_delay=0.2),
        )

    def test_lazy_submission_estimate_charges_the_possible_fetch(self):
        eager = self.make_fabric("eager")
        lazy = self.make_fabric("lazy")
        none = self.make_fabric("none")
        base = eager.estimate_submission("agg1", at=0.0)
        assert none.estimate_submission("agg1", at=0.0) == pytest.approx(base)
        # The lazy estimate adds the worst origin->peer fetch wire time
        # (0.5s WAN latency + 1s serialisation).
        assert lazy.estimate_submission("agg1", at=0.0) == pytest.approx(base + 1.5)
        # Pure: nothing was committed by any estimate.
        assert lazy.network.transfers() == []

    def test_estimate_pull_matches_the_committed_download(self):
        fabric = self.make_fabric("lazy")
        fabric.upload("agg1", 1, at=0.0, object_ids=["cid-1"])
        estimate = fabric.estimate_pull("agg2", at=3.0, object_id="cid-1")
        assert fabric.network.transfers("replication") == []    # still pure
        elapsed = fabric.download("agg2", 1, at=3.0, object_ids=["cid-1"])
        assert elapsed == pytest.approx(estimate)


# ------------------------------------------------------------------ end to end
def replicated_config(**kwargs) -> ExperimentConfig:
    """Four GPU clusters over two storage sites on a throttled link."""
    defaults = dict(
        name="replication-e2e",
        workload=cifar10_workload(rounds=2, samples_per_class=10, image_size=8, learning_rate=0.05),
        clusters=gpu_cluster_configs(num_clusters=4, num_clients=2),
        mode="async",
        rounds=2,
        seed=3,
        event_streams=True,
        link_bandwidth_mbytes_per_s=0.05,
        storage_replicas=2,
        monitor_resources=False,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


class TestReplicationExperiments:
    def test_eager_run_reports_nonzero_propagation_per_replica(self):
        result = ExperimentRunner(replicated_config(replication_mode="eager")).run()
        metrics = result.comm_metrics
        assert metrics["replication_count"] > 0
        assert metrics["replication_time"] > 0
        for replica in ("storage-0", "storage-1"):
            assert metrics[f"replica_{replica}_replication_count"] > 0
            assert metrics[f"replica_{replica}_replication_time"] > 0
        # Every upload was pushed to the one peer site exactly once.
        assert metrics["replication_count"] == metrics["upload_count"]
        table = format_comm_table(result)
        assert "network replication" in table
        assert "replicate -> storage-0" in table

    def test_lazy_run_accounts_on_demand_fetches(self):
        result = ExperimentRunner(replicated_config(replication_mode="lazy")).run()
        metrics = result.comm_metrics
        assert metrics["replication_count"] > 0
        # Lazy never moves an object a site did not ask for: at most one
        # fetch per (object, non-origin site) means never more than eager.
        eager = ExperimentRunner(replicated_config(replication_mode="eager")).run()
        assert metrics["replication_count"] <= eager.comm_metrics["replication_count"]

    def test_none_run_never_replicates(self):
        result = ExperimentRunner(replicated_config(replication_mode="none")).run()
        metrics = result.comm_metrics
        assert metrics["replication_count"] == 0
        assert metrics["replication_time"] == 0
        assert metrics["download_count"] > 0

    @pytest.mark.parametrize("mode", ["eager", "lazy", "none"])
    def test_replication_schedules_are_deterministic(self, mode):
        first = ExperimentRunner(replicated_config(replication_mode=mode)).run()
        second = ExperimentRunner(replicated_config(replication_mode=mode)).run()
        assert first.comm_metrics == second.comm_metrics
        for a, b in zip(first.aggregators, second.aggregators):
            assert a.total_time == b.total_time
            assert [r.sim_time for r in a.history] == [r.sim_time for r in b.history]

    def test_single_replica_is_bit_identical_across_modes(self):
        """With storage_replicas=1 replication has nothing to do: every mode
        must reproduce the pre-replication scheduler bit-identically."""
        results = {
            mode: ExperimentRunner(
                replicated_config(storage_replicas=1, replication_mode=mode)
            ).run()
            for mode in REPLICATION_MODES
        }
        eager, lazy, none = (results[m] for m in ("eager", "lazy", "none"))
        for other in (lazy, none):
            assert eager.comm_metrics == other.comm_metrics
            for a, b in zip(eager.aggregators, other.aggregators):
                assert a.total_time == b.total_time
                assert [r.sim_time for r in a.history] == [r.sim_time for r in b.history]
        assert eager.comm_metrics["replication_count"] == 0

    def test_csv_export_carries_replication_columns(self, tmp_path):
        result = ExperimentRunner(replicated_config(replication_mode="eager")).run()
        rows = load_results_csv(save_results_csv([result], tmp_path / "runs.csv"))
        assert float(rows[0]["replication_count"]) > 0
        assert float(rows[0]["replication_time_s"]) > 0
