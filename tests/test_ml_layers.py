"""Unit tests for the neural-network layers, including numeric gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.layers import (
    BatchNorm1d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    MaxPool2d,
    ReLU,
    Sequential,
    Softmax,
)


def numeric_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = f()
        x[idx] = original - eps
        minus = f()
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_rejects_bad_input_dim(self):
        layer = Dense(4, 3)
        with pytest.raises(ValueError):
            layer.forward(np.ones((5, 6)))

    def test_rejects_non_2d_input(self):
        layer = Dense(4, 3)
        with pytest.raises(ValueError):
            layer.forward(np.ones((5, 4, 1)))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_gradient_matches_numeric_weight(self):
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float((layer.forward(x) ** 2).sum())

        out = layer.forward(x)
        layer.backward(2 * out)
        numeric = numeric_gradient(loss, layer.weight)
        assert np.allclose(layer.grad_weight, numeric, atol=1e-4)

    def test_gradient_matches_numeric_bias(self):
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float((layer.forward(x) ** 2).sum())

        out = layer.forward(x)
        layer.backward(2 * out)
        numeric = numeric_gradient(loss, layer.bias)
        assert np.allclose(layer.grad_bias, numeric, atol=1e-4)

    def test_gradient_matches_numeric_input(self):
        rng = np.random.default_rng(3)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(2, 3))

        def loss():
            return float((layer.forward(x) ** 2).sum())

        out = layer.forward(x)
        grad_input = layer.backward(2 * out)
        numeric = numeric_gradient(loss, x)
        assert np.allclose(grad_input, numeric, atol=1e-4)

    def test_set_parameters_shape_mismatch(self):
        layer = Dense(3, 2)
        with pytest.raises(ValueError):
            layer.set_parameters([np.zeros((2, 3)), np.zeros(2)])

    def test_set_parameters_replaces_values(self):
        layer = Dense(2, 2)
        new_w = np.full((2, 2), 7.0)
        new_b = np.full(2, -1.0)
        layer.set_parameters([new_w, new_b])
        assert np.allclose(layer.weight, 7.0)
        assert np.allclose(layer.bias, -1.0)


class TestReLU:
    def test_forward_clips_negatives(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 2.0, 0.0]]))
        assert np.allclose(out, [[0.0, 2.0, 0.0]])

    def test_backward_masks_gradient(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert np.allclose(grad, [[0.0, 5.0]])

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 2)))


class TestSoftmax:
    def test_rows_sum_to_one(self):
        layer = Softmax()
        out = layer.forward(np.random.default_rng(0).normal(size=(6, 4)))
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        layer = Softmax()
        out = layer.forward(np.array([[1000.0, 1000.0]]))
        assert np.allclose(out, [[0.5, 0.5]])

    def test_backward_matches_numeric(self):
        rng = np.random.default_rng(4)
        layer = Softmax()
        x = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 4))

        def loss():
            return float((layer.forward(x) * target).sum())

        layer.forward(x)
        grad = layer.backward(target)
        numeric = numeric_gradient(loss, x)
        assert np.allclose(grad, numeric, atol=1e-5)


class TestFlattenDropout:
    def test_flatten_round_trip(self):
        layer = Flatten()
        x = np.arange(24.0).reshape(2, 3, 2, 2)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_dropout_eval_is_identity(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        layer.eval()
        x = np.ones((4, 4))
        assert np.allclose(layer.forward(x), x)

    def test_dropout_training_zeroes_some(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((20, 20)))
        assert (out == 0).any()
        assert not np.allclose(out, 0)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_dropout_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(1))
        x = np.ones((10, 10))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        assert np.allclose((out == 0), (grad == 0))


class TestBatchNorm:
    def test_normalises_batch(self):
        layer = BatchNorm1d(3)
        x = np.random.default_rng(0).normal(loc=5.0, scale=2.0, size=(64, 3))
        out = layer.forward(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_eval_uses_running_stats(self):
        layer = BatchNorm1d(2, momentum=0.5)
        x = np.random.default_rng(1).normal(size=(32, 2))
        layer.forward(x)
        layer.eval()
        out_eval = layer.forward(x[:4])
        assert out_eval.shape == (4, 2)

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            BatchNorm1d(2).forward(np.ones((2, 2, 2)))

    def test_backward_matches_numeric_gamma(self):
        rng = np.random.default_rng(5)
        layer = BatchNorm1d(3)
        x = rng.normal(size=(8, 3))

        def loss():
            return float((layer.forward(x) ** 2).sum())

        out = layer.forward(x)
        layer.backward(2 * out)
        numeric = numeric_gradient(loss, layer.gamma)
        assert np.allclose(layer.grad_gamma, numeric, atol=1e-4)


class TestConv2d:
    def test_output_shape_with_padding(self):
        layer = Conv2d(3, 4, kernel_size=3, padding=1, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((2, 3, 8, 8)))
        assert out.shape == (2, 4, 8, 8)

    def test_output_shape_with_stride(self):
        layer = Conv2d(1, 2, kernel_size=3, stride=2, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((1, 1, 7, 7)))
        assert out.shape == (1, 2, 3, 3)

    def test_rejects_wrong_channels(self):
        layer = Conv2d(3, 4, kernel_size=3)
        with pytest.raises(ValueError):
            layer.forward(np.ones((1, 2, 8, 8)))

    def test_matches_manual_convolution(self):
        layer = Conv2d(1, 1, kernel_size=2, rng=np.random.default_rng(0))
        layer.weight[...] = np.array([[[[1.0, 0.0], [0.0, 1.0]]]])
        layer.bias[...] = 0.0
        x = np.arange(9.0).reshape(1, 1, 3, 3)
        out = layer.forward(x)
        expected = np.array([[[[0 + 4, 1 + 5], [3 + 7, 4 + 8]]]], dtype=float)
        assert np.allclose(out, expected)

    def test_gradient_matches_numeric_weight(self):
        rng = np.random.default_rng(6)
        layer = Conv2d(2, 3, kernel_size=3, padding=1, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))

        def loss():
            return float((layer.forward(x) ** 2).sum())

        out = layer.forward(x)
        layer.backward(2 * out)
        numeric = numeric_gradient(loss, layer.weight)
        assert np.allclose(layer.grad_weight, numeric, atol=1e-3)

    def test_gradient_matches_numeric_input(self):
        rng = np.random.default_rng(7)
        layer = Conv2d(1, 2, kernel_size=3, rng=rng)
        x = rng.normal(size=(1, 1, 5, 5))

        def loss():
            return float((layer.forward(x) ** 2).sum())

        out = layer.forward(x)
        grad_input = layer.backward(2 * out)
        numeric = numeric_gradient(loss, x)
        assert np.allclose(grad_input, numeric, atol=1e-3)


class TestMaxPool:
    def test_output_values(self):
        layer = MaxPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert np.allclose(layer.forward(x), [[[[4.0]]]])

    def test_output_shape(self):
        layer = MaxPool2d(2)
        out = layer.forward(np.random.default_rng(0).normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 3, 4, 4)

    def test_backward_routes_gradient_to_max(self):
        layer = MaxPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer.forward(x)
        grad = layer.backward(np.array([[[[10.0]]]]))
        expected = np.array([[[[0.0, 0.0], [0.0, 10.0]]]])
        assert np.allclose(grad, expected)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(8)
        layer = MaxPool2d(2)
        x = rng.normal(size=(1, 2, 4, 4))

        def loss():
            return float((layer.forward(x) ** 2).sum())

        out = layer.forward(x)
        grad = layer.backward(2 * out)
        numeric = numeric_gradient(loss, x)
        assert np.allclose(grad, numeric, atol=1e-4)


class TestSequential:
    def test_parameter_round_trip(self):
        net = Sequential([Dense(4, 8, rng=np.random.default_rng(0)), ReLU(), Dense(8, 2, rng=np.random.default_rng(1))])
        params = [np.array(p, copy=True) for p in net.parameters()]
        net.set_parameters([np.zeros_like(p) for p in params])
        assert all(np.allclose(p, 0.0) for p in net.parameters())
        net.set_parameters(params)
        assert all(np.allclose(a, b) for a, b in zip(net.parameters(), params))

    def test_set_parameters_wrong_count(self):
        net = Sequential([Dense(2, 2)])
        with pytest.raises(ValueError):
            net.set_parameters([np.zeros((2, 2))])

    def test_empty_sequential_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_train_eval_propagates(self):
        drop = Dropout(0.5)
        net = Sequential([Dense(2, 2), drop])
        net.eval()
        assert drop.training is False
        net.train()
        assert drop.training is True

    def test_forward_backward_chain(self):
        rng = np.random.default_rng(9)
        net = Sequential([Dense(3, 5, rng=rng), ReLU(), Dense(5, 2, rng=rng)])
        x = rng.normal(size=(4, 3))
        out = net.forward(x)
        grad = net.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert len(net.gradients()) == len(net.parameters()) == 4
