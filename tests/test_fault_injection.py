"""Fault-injection tests: organisations dropping out of rounds entirely.

The paper's abstract claims UnifyFL "devised strategies to handle failures and
stragglers".  Stragglers are covered elsewhere; these tests inject full
organisation outages (via ``ClusterConfig.availability``) and check that the
rest of the federation keeps making progress and that the chain state stays
consistent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ClusterConfig, ExperimentConfig, cifar10_workload, edge_cluster_configs
from repro.core.runner import ExperimentRunner, run_experiment


def flaky_experiment(name, mode, availability=0.5, rounds=4, seed=51):
    clusters = edge_cluster_configs(num_clients=2)
    clusters[2].availability = availability  # one flaky organisation
    return ExperimentConfig(
        name=name,
        workload=cifar10_workload(rounds=rounds, samples_per_class=14, image_size=8, learning_rate=0.05),
        clusters=clusters,
        mode=mode,
        partitioning="iid",
        rounds=rounds,
        seed=seed,
    )


class TestAvailabilityConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(name="x", availability=0.0)
        with pytest.raises(ValueError):
            ClusterConfig(name="x", availability=1.5)
        assert ClusterConfig(name="x", availability=0.3).availability == 0.3

    def test_full_availability_never_goes_offline(self):
        result = run_experiment(flaky_experiment("always-up", "sync", availability=1.0, rounds=3))
        assert all(not record.offline for a in result.aggregators for record in a.history)


@pytest.mark.parametrize("mode", ["sync", "async"])
class TestFederationSurvivesOutages:
    def test_flaky_org_goes_offline_but_run_completes(self, mode):
        runner = ExperimentRunner(flaky_experiment(f"flaky-{mode}", mode, availability=0.4, rounds=5, seed=52))
        result = runner.run()
        flaky = result.aggregator("agg3")
        offline_rounds = sum(1 for record in flaky.history if record.offline)
        assert 1 <= offline_rounds < 5
        # Every aggregator still records every round.
        assert all(len(a.history) == 5 for a in result.aggregators)
        # The chain remains valid and the healthy organisations kept submitting.
        assert runner.chain.verify_chain()
        records = runner.chain.call("unifyfl", "getLatestModelsWithScores")
        healthy_addresses = {runner.accounts["agg1"].address, runner.accounts["agg2"].address}
        submitters = {r["submitter"] for r in records}
        assert healthy_addresses <= submitters

    def test_healthy_orgs_keep_learning_despite_outages(self, mode):
        result = run_experiment(flaky_experiment(f"learning-{mode}", mode, availability=0.4, rounds=5, seed=53))
        for name in ("agg1", "agg2"):
            aggregator = result.aggregator(name)
            assert not any(record.offline for record in aggregator.history)
            series = aggregator.accuracy_series()
            assert series[-1] >= series[0] - 0.05

    def test_offline_rounds_contribute_no_models_or_scores(self, mode):
        result = run_experiment(flaky_experiment(f"contrib-{mode}", mode, availability=0.4, rounds=5, seed=54))
        flaky = result.aggregator("agg3")
        for record in flaky.history:
            if record.offline:
                assert record.models_pulled == 0
                assert record.models_scored == 0
