"""Integration tests: full UnifyFL behaviour end to end on small federations.

These tests reproduce, at miniature scale, the qualitative claims the paper's
evaluation makes: collaboration helps under non-IID data, Async is faster than
Sync, the chain state is consistent and auditable after a run, models are
identical for every aggregator that pulls them, and the smart (above-average)
policy resists a Byzantine attacker better than a naive top-k policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ClusterConfig, ExperimentConfig, cifar10_workload, edge_cluster_configs
from repro.core.runner import ExperimentRunner, run_experiment
from repro.ipfs.cid import parse_cid
from repro.ml.serialization import weights_checksum, weights_from_bytes


def small_config(
    name,
    mode="sync",
    partitioning="iid",
    alpha=0.5,
    rounds=2,
    seed=0,
    clusters=None,
    learning_rate=0.01,
    samples_per_class=14,
    **kwargs,
):
    return ExperimentConfig(
        name=name,
        workload=cifar10_workload(
            rounds=rounds,
            samples_per_class=samples_per_class,
            image_size=8,
            learning_rate=learning_rate,
        ),
        clusters=clusters or edge_cluster_configs(num_clients=2),
        mode=mode,
        partitioning=partitioning,
        dirichlet_alpha=alpha,
        rounds=rounds,
        seed=seed,
        **kwargs,
    )


class TestEndToEndProtocol:
    def test_chain_records_full_audit_trail(self):
        runner = ExperimentRunner(small_config("audit", rounds=2, seed=1))
        runner.run()
        chain = runner.chain
        assert chain.verify_chain()
        # Every aggregator registered, submitted models and scores on-chain.
        aggregators = chain.call("unifyfl", "getAggregators")
        assert len(aggregators) == 3
        records = chain.call("unifyfl", "getLatestModelsWithScores")
        assert len(records) >= 3
        from repro.chain.events import EventFilter

        assert len(chain.events(EventFilter(name="StartTraining"))) == 2
        assert len(chain.events(EventFilter(name="ModelSubmitted"))) >= 3
        assert len(chain.events(EventFilter(name="ScoreSubmitted"))) >= 3

    def test_all_aggregators_retrieve_identical_models(self):
        """The transparency claim: IPFS + chain ensure everyone sees the same bytes."""
        runner = ExperimentRunner(small_config("identical", rounds=1, seed=2))
        runner.run()
        chain = runner.chain
        records = chain.call("unifyfl", "getLatestModelsWithScores")
        cid = records[0]["cid"]
        checksums = set()
        for aggregator in runner.aggregators:
            payload = aggregator.ipfs.get(parse_cid(cid))
            checksums.add(weights_checksum(weights_from_bytes(payload)))
        assert len(checksums) == 1

    def test_every_model_scored_by_majority(self):
        runner = ExperimentRunner(small_config("majority", rounds=2, seed=3))
        runner.run()
        records = runner.chain.call("unifyfl", "getLatestModelsWithScores")
        majority = len(runner.aggregators) // 2 + 1
        for record in records:
            assert len(record["assigned_scorers"]) == majority
            assert record["submitter"] not in record["assigned_scorers"]

    def test_storage_replication_grows_with_pulls(self):
        runner = ExperimentRunner(small_config("replication", rounds=2, seed=4))
        runner.run()
        assert runner.swarm.total_transferred_bytes() > 0
        # At least one model is replicated beyond its origin node.
        replicated = [
            cid for cid in [parse_cid(r["cid"]) for r in runner.chain.call("unifyfl", "getLatestModelsWithScores")]
            if runner.swarm.replication_factor(cid) > 1
        ]
        assert replicated


class TestPaperClaims:
    def test_async_makespan_lower_than_sync(self):
        sync_result = run_experiment(small_config("claim-sync", mode="sync", rounds=2, seed=5))
        async_result = run_experiment(small_config("claim-async", mode="async", rounds=2, seed=5))
        assert async_result.max_total_time < sync_result.max_total_time

    def test_sync_times_identical_async_times_heterogeneous(self):
        sync_result = run_experiment(small_config("times-sync", mode="sync", rounds=2, seed=6))
        async_result = run_experiment(small_config("times-async", mode="async", rounds=2, seed=6))
        sync_times = [a.total_time for a in sync_result.aggregators]
        async_times = [a.total_time for a in async_result.aggregators]
        assert max(sync_times) - min(sync_times) < 1e-6
        assert max(async_times) - min(async_times) > 1.0

    def test_collaboration_improves_over_self_policy(self):
        """Run 5's observation: the non-collaborating cluster falls behind."""
        clusters = edge_cluster_configs(num_clients=2)
        clusters[0].aggregation_policy = "self"
        clusters[1].aggregation_policy = "all"
        clusters[2].aggregation_policy = "all"
        config = small_config(
            "self-vs-all",
            partitioning="dirichlet",
            alpha=0.3,
            rounds=4,
            seed=7,
            clusters=clusters,
            learning_rate=0.05,
            samples_per_class=20,
        )
        result = run_experiment(config)
        self_acc = result.aggregator("agg1").global_accuracy
        collab_acc = np.mean(
            [result.aggregator("agg2").global_accuracy, result.aggregator("agg3").global_accuracy]
        )
        assert collab_acc >= self_acc - 0.02

    def test_unifyfl_accuracy_comparable_to_centralized_baseline(self):
        config = small_config(
            "vs-baseline",
            partitioning="dirichlet",
            alpha=0.5,
            rounds=3,
            seed=8,
            learning_rate=0.05,
            samples_per_class=20,
        )
        runner = ExperimentRunner(config)
        unify = runner.run()
        baseline = runner.run_centralized_baseline(rounds=3)
        assert unify.mean_global_accuracy >= baseline.global_accuracy - 0.15

    def test_overhead_constant_as_clients_grow(self):
        """Section 4.2.7: chain/IPFS overhead does not grow with client count."""
        small = ExperimentRunner(small_config("overhead-small", rounds=1, seed=9))
        small_result = small.run()
        big_clusters = edge_cluster_configs(num_clients=4)
        big = ExperimentRunner(small_config("overhead-big", rounds=1, seed=9, clusters=big_clusters))
        big_result = big.run()
        assert big_result.resource_reports["geth"].cpu_mean == pytest.approx(
            small_result.resource_reports["geth"].cpu_mean, abs=0.15
        )
        assert big_result.chain_metrics["total_gas_used"] == pytest.approx(
            small_result.chain_metrics["total_gas_used"], rel=0.5
        )


class TestByzantineResilience:
    def _byzantine_config(self, policy, seed=10):
        clusters = [
            ClusterConfig(name="honest1", num_clients=2, aggregation_policy=policy, policy_k=3),
            ClusterConfig(name="honest2", num_clients=2, aggregation_policy=policy, policy_k=3),
            ClusterConfig(
                name="attacker",
                num_clients=2,
                aggregation_policy=policy,
                policy_k=3,
                malicious=True,
                attack="sign_flip",
            ),
        ]
        return small_config(
            f"byzantine-{policy}",
            partitioning="iid",
            rounds=3,
            seed=seed,
            clusters=clusters,
            learning_rate=0.05,
            samples_per_class=20,
        )

    def test_smart_policy_beats_naive_policy_under_attack(self):
        naive = run_experiment(self._byzantine_config("top_k", seed=10))
        smart = run_experiment(self._byzantine_config("above_average", seed=10))

        def honest_accuracy(result):
            return np.mean(
                [result.aggregator("honest1").global_accuracy, result.aggregator("honest2").global_accuracy]
            )

        assert honest_accuracy(smart) >= honest_accuracy(naive) - 0.02

    def test_attacker_receives_low_scores(self):
        runner = ExperimentRunner(self._byzantine_config("above_average", seed=11))
        result = runner.run()
        records = runner.chain.call("unifyfl", "getLatestModelsWithScores")
        attacker_address = runner.accounts["attacker"].address
        attacker_scores = [
            s for r in records if r["submitter"] == attacker_address for s in r["scores"].values()
        ]
        honest_scores = [
            s for r in records if r["submitter"] != attacker_address for s in r["scores"].values()
        ]
        assert attacker_scores and honest_scores
        assert np.mean(attacker_scores) <= np.mean(honest_scores)
