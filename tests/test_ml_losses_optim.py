"""Tests for losses and optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.losses import CrossEntropyLoss, MSELoss
from repro.ml.optim import SGD, Adagrad, Adam, Yogi, build_optimizer


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss_fn = CrossEntropyLoss()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, grad = loss_fn.forward(logits, np.array([0, 1]))
        assert loss < 1e-4
        assert grad.shape == logits.shape

    def test_uniform_prediction_loss_is_log_classes(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((4, 5))
        loss, _ = loss_fn.forward(logits, np.array([0, 1, 2, 3]))
        assert loss == pytest.approx(np.log(5), rel=1e-6)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        loss_fn = CrossEntropyLoss()
        logits = rng.normal(size=(3, 4))
        targets = np.array([1, 3, 0])
        _, grad = loss_fn.forward(logits, targets)
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                logits[i, j] += eps
                plus, _ = loss_fn.forward(logits, targets)
                logits[i, j] -= 2 * eps
                minus, _ = loss_fn.forward(logits, targets)
                logits[i, j] += eps
                numeric[i, j] = (plus - minus) / (2 * eps)
        assert np.allclose(grad, numeric, atol=1e-6)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss().forward(np.zeros((2, 3)), np.array([0, 3]))

    def test_rejects_mismatched_batch(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss().forward(np.zeros((2, 3)), np.array([0]))

    def test_rejects_1d_logits(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss().forward(np.zeros(3), np.array([0, 1, 2]))


class TestMSE:
    def test_zero_for_identical(self):
        loss, grad = MSELoss().forward(np.ones((3, 2)), np.ones((3, 2)))
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_value_and_gradient(self):
        pred = np.array([[2.0]])
        target = np.array([[0.0]])
        loss, grad = MSELoss().forward(pred, target)
        assert loss == pytest.approx(4.0)
        assert grad == pytest.approx(4.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.ones((2, 2)), np.ones((2, 3)))


class TestSGD:
    def test_plain_step(self):
        opt = SGD(learning_rate=0.1)
        params = [np.array([1.0, 2.0])]
        grads = [np.array([1.0, 1.0])]
        opt.step(params, grads)
        assert np.allclose(params[0], [0.9, 1.9])

    def test_momentum_accumulates(self):
        opt = SGD(learning_rate=0.1, momentum=0.9)
        params = [np.array([0.0])]
        opt.step(params, [np.array([1.0])])
        first = params[0].copy()
        opt.step(params, [np.array([1.0])])
        second_step = first - params[0]
        assert second_step > 0.1  # momentum makes the second step bigger

    def test_weight_decay_pulls_towards_zero(self):
        opt = SGD(learning_rate=0.1, weight_decay=1.0)
        params = [np.array([10.0])]
        opt.step(params, [np.array([0.0])])
        assert params[0][0] < 10.0

    def test_reset_clears_momentum(self):
        opt = SGD(learning_rate=0.1, momentum=0.9)
        params = [np.array([0.0])]
        opt.step(params, [np.array([1.0])])
        opt.reset()
        assert opt._velocity is None

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, momentum=1.5)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            SGD().step([np.zeros(2)], [])


@pytest.mark.parametrize("optimizer_cls", [Adam, Yogi, Adagrad])
def test_adaptive_optimizers_reduce_quadratic(optimizer_cls):
    """Every adaptive optimizer should make progress on a simple quadratic."""
    opt = optimizer_cls(learning_rate=0.1)
    params = [np.array([5.0, -3.0])]
    initial = np.abs(params[0]).max()
    for _ in range(200):
        grads = [2 * params[0]]
        opt.step(params, grads)
    # Progress towards the optimum at zero; Adagrad's decaying step size makes
    # it slower than Adam/Yogi, so assert a halving rather than convergence.
    assert np.abs(params[0]).max() < 0.6 * initial


@pytest.mark.parametrize("optimizer_cls", [Adam, Yogi, Adagrad])
def test_adaptive_optimizers_reset(optimizer_cls):
    opt = optimizer_cls(learning_rate=0.1)
    params = [np.array([1.0])]
    opt.step(params, [np.array([1.0])])
    opt.reset()
    # After reset the internal state is gone; a new step must not fail.
    opt.step(params, [np.array([1.0])])


def test_sgd_quadratic_convergence():
    opt = SGD(learning_rate=0.1, momentum=0.5)
    params = [np.array([4.0])]
    for _ in range(100):
        opt.step(params, [2 * params[0]])
    assert abs(params[0][0]) < 0.05


class TestBuildOptimizer:
    def test_known_names(self):
        assert isinstance(build_optimizer("sgd"), SGD)
        assert isinstance(build_optimizer("adam"), Adam)
        assert isinstance(build_optimizer("yogi"), Yogi)
        assert isinstance(build_optimizer("adagrad"), Adagrad)

    def test_case_insensitive(self):
        assert isinstance(build_optimizer("SGD"), SGD)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_optimizer("rmsprop")

    def test_kwargs_forwarded(self):
        opt = build_optimizer("sgd", learning_rate=0.5)
        assert opt.learning_rate == 0.5
