"""Tests for scoring algorithms, aggregation/scoring policies and attacks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attacks import (
    GaussianNoiseAttack,
    ScalingAttack,
    SignFlipAttack,
    ZeroAttack,
    available_attacks,
    build_attack,
)
from repro.core.policies import (
    AboveAverage,
    AboveMedian,
    AboveSelf,
    CandidateModel,
    MaxScore,
    MeanScore,
    MedianScore,
    MinScore,
    PickAll,
    PickSelf,
    RandomK,
    TopK,
    available_aggregation_policies,
    available_scoring_policies,
    build_aggregation_policy,
    build_scoring_policy,
)
from repro.core.scorer import AccuracyScorer, MultiKRUMScorer, build_scorer
from repro.ml.models import MLP


# --------------------------------------------------------------------------- helpers
def make_candidates(scores):
    """Build candidates with pre-resolved scores."""
    candidates = []
    for i, score in enumerate(scores):
        candidate = CandidateModel(cid=f"cid{i}", submitter=f"agg{i}", round_number=1, scores={"s": score})
        candidate.resolved_score = score
        candidates.append(candidate)
    return candidates


# ------------------------------------------------------------------------ scoring policies
class TestScoringPolicies:
    def test_mean_median_min_max(self):
        scores = [0.2, 0.4, 0.9]
        assert MeanScore().resolve(scores) == pytest.approx(0.5)
        assert MedianScore().resolve(scores) == pytest.approx(0.4)
        assert MinScore().resolve(scores) == pytest.approx(0.2)
        assert MaxScore().resolve(scores) == pytest.approx(0.9)

    def test_apply_populates_resolved_scores(self):
        candidates = [CandidateModel(cid="a", submitter="x", round_number=1, scores={"s1": 0.2, "s2": 0.8})]
        resolved = MeanScore().apply(candidates)
        assert resolved[0].resolved_score == pytest.approx(0.5)

    def test_apply_handles_missing_scores(self):
        candidates = [CandidateModel(cid="a", submitter="x", round_number=1, scores={})]
        resolved = MedianScore().apply(candidates)
        assert np.isnan(resolved[0].resolved_score)

    def test_median_robust_to_one_outlier_scorer(self):
        """The paper's rationale: a malicious scorer cannot swing the median."""
        honest = [0.75, 0.8, 0.78]
        with_outlier = honest + [0.0]
        assert abs(MedianScore().resolve(with_outlier) - MedianScore().resolve(honest)) < 0.05
        assert abs(MeanScore().resolve(with_outlier) - MeanScore().resolve(honest)) > 0.1

    def test_build_scoring_policy(self):
        for name in available_scoring_policies():
            assert build_scoring_policy(name).name == name
        with pytest.raises(ValueError):
            build_scoring_policy("mode")


# --------------------------------------------------------------------- aggregation policies
class TestAggregationPolicies:
    def test_pick_all_includes_everything(self):
        candidates = make_candidates([0.1, 0.2, 0.3])
        self_candidate = CandidateModel(cid="self", submitter="me", round_number=1, is_self=True)
        chosen = PickAll().select(candidates, self_candidate)
        assert len(chosen) == 4

    def test_pick_self_excludes_peers(self):
        candidates = make_candidates([0.9, 0.8])
        self_candidate = CandidateModel(cid="self", submitter="me", round_number=1, is_self=True)
        chosen = PickSelf().select(candidates, self_candidate)
        assert chosen == [self_candidate]

    def test_top_k_orders_by_score(self):
        candidates = make_candidates([0.1, 0.9, 0.5, 0.7])
        chosen = TopK(k=2).select(candidates)
        assert {c.resolved_score for c in chosen} == {0.9, 0.7}

    def test_top_k_with_self_appended(self):
        candidates = make_candidates([0.1, 0.9])
        self_candidate = CandidateModel(cid="self", submitter="me", round_number=1, is_self=True)
        chosen = TopK(k=1).select(candidates, self_candidate)
        assert self_candidate in chosen and len(chosen) == 2

    def test_random_k_respects_k(self, rng):
        candidates = make_candidates([0.1] * 6)
        chosen = RandomK(k=3).select(candidates, rng=rng)
        assert len(chosen) == 3

    def test_random_k_fewer_candidates_than_k(self, rng):
        candidates = make_candidates([0.1, 0.2])
        chosen = RandomK(k=5).select(candidates, rng=rng)
        assert len(chosen) == 2

    def test_above_average(self):
        candidates = make_candidates([0.2, 0.4, 0.9])
        chosen = AboveAverage().select(candidates)
        assert {c.resolved_score for c in chosen} == {0.9}

    def test_above_median(self):
        candidates = make_candidates([0.2, 0.4, 0.9])
        chosen = AboveMedian().select(candidates)
        assert {c.resolved_score for c in chosen} == {0.4, 0.9}

    def test_above_self(self):
        candidates = make_candidates([0.2, 0.6, 0.9])
        self_candidate = CandidateModel(cid="self", submitter="me", round_number=1, is_self=True)
        self_candidate.resolved_score = 0.5
        chosen = AboveSelf().select(candidates, self_candidate)
        peer_scores = {c.resolved_score for c in chosen if not c.is_self}
        assert peer_scores == {0.6, 0.9}
        assert self_candidate in chosen

    def test_above_average_empty_candidates_returns_self(self):
        self_candidate = CandidateModel(cid="self", submitter="me", round_number=1, is_self=True)
        assert AboveAverage().select([], self_candidate) == [self_candidate]

    def test_unscored_candidates_ignored_by_performance_policies(self):
        candidate = CandidateModel(cid="a", submitter="x", round_number=1, scores={})
        candidate.resolved_score = float("nan")
        assert TopK(k=2).select([candidate]) == []

    def test_build_aggregation_policy_all_names(self):
        for name in available_aggregation_policies():
            policy = build_aggregation_policy(name, k=3)
            assert policy.name == name

    def test_build_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_aggregation_policy("best_effort")

    def test_k_validation(self):
        with pytest.raises(ValueError):
            TopK(k=0)
        with pytest.raises(ValueError):
            RandomK(k=-1)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=10), st.integers(1, 5))
    def test_property_top_k_returns_highest(self, scores, k):
        candidates = make_candidates(scores)
        chosen = TopK(k=k).select(candidates)
        chosen_scores = sorted((c.resolved_score for c in chosen), reverse=True)
        expected = sorted(scores, reverse=True)[:k]
        assert chosen_scores == pytest.approx(expected)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=10))
    def test_property_above_median_keeps_at_least_half(self, scores):
        candidates = make_candidates(scores)
        chosen = AboveMedian().select(candidates)
        assert len(chosen) >= len(scores) / 2


# ----------------------------------------------------------------------------- scorers
class TestAccuracyScorer:
    def test_trained_model_scores_higher_than_random(self, tabular_dataset):
        model = MLP(input_dim=10, hidden_dims=(32,), num_classes=3, seed=0)
        scorer = AccuracyScorer(model, tabular_dataset)
        random_score = scorer.score(model.get_weights())
        trained = model.clone()
        trained.fit(tabular_dataset.x, tabular_dataset.y, epochs=15, batch_size=32)
        trained_score = scorer.score(trained.get_weights())
        assert trained_score > random_score

    def test_score_in_unit_interval(self, tabular_dataset):
        model = MLP(input_dim=10, hidden_dims=(8,), num_classes=3, seed=1)
        scorer = AccuracyScorer(model, tabular_dataset)
        assert 0.0 <= scorer.score(model.get_weights()) <= 1.0

    def test_rejects_empty_test_data(self, tabular_dataset):
        model = MLP(input_dim=10, num_classes=3, seed=0)
        empty = tabular_dataset.subset(np.array([], dtype=int))
        with pytest.raises(ValueError):
            AccuracyScorer(model, empty)

    def test_does_not_require_full_round(self, tabular_dataset):
        model = MLP(input_dim=10, num_classes=3, seed=0)
        assert AccuracyScorer(model, tabular_dataset).requires_full_round is False


class TestMultiKRUM:
    def _weights(self, offset, seed=0):
        rng = np.random.default_rng(seed)
        return [rng.normal(size=(4, 4)) * 0.01 + offset, np.full(3, offset)]

    def test_outlier_gets_lowest_score(self):
        scorer = MultiKRUMScorer()
        round_weights = {
            "honest1": self._weights(0.0, seed=1),
            "honest2": self._weights(0.02, seed=2),
            "honest3": self._weights(-0.02, seed=3),
            "attacker": self._weights(5.0, seed=4),
        }
        scores = scorer.score_round(round_weights)
        assert min(scores, key=scores.get) == "attacker"

    def test_requires_round_context(self):
        scorer = MultiKRUMScorer()
        with pytest.raises(ValueError):
            scorer.score(self._weights(0.0))

    def test_score_via_context_matches_round_score(self):
        scorer = MultiKRUMScorer()
        round_weights = {"a": self._weights(0.0, 1), "b": self._weights(0.1, 2), "c": self._weights(5.0, 3)}
        scores = scorer.score_round(round_weights)
        direct = scorer.score(round_weights["c"], context={"round_weights": round_weights, "cid": "c"})
        assert direct == pytest.approx(scores["c"])

    def test_single_model_scores_one(self):
        scorer = MultiKRUMScorer()
        assert scorer.score_round({"only": self._weights(0.0)}) == {"only": 1.0}

    def test_scores_positive_and_bounded(self):
        scorer = MultiKRUMScorer()
        round_weights = {f"m{i}": self._weights(i * 0.5, seed=i) for i in range(5)}
        scores = scorer.score_round(round_weights)
        assert all(0.0 < s <= 1.0 for s in scores.values())

    def test_requires_full_round_flag(self):
        assert MultiKRUMScorer().requires_full_round is True

    def test_byzantine_tolerance_validation(self):
        with pytest.raises(ValueError):
            MultiKRUMScorer(byzantine_tolerance=-1)


class TestBuildScorer:
    def test_accuracy_requires_model_and_data(self):
        with pytest.raises(ValueError):
            build_scorer("accuracy")

    def test_build_both_kinds(self, tabular_dataset):
        model = MLP(input_dim=10, num_classes=3, seed=0)
        assert isinstance(build_scorer("accuracy", model, tabular_dataset), AccuracyScorer)
        assert isinstance(build_scorer("multikrum"), MultiKRUMScorer)

    def test_unknown_scorer(self):
        with pytest.raises(ValueError):
            build_scorer("loss")


# ----------------------------------------------------------------------------- attacks
class TestAttacks:
    def _weights(self):
        return [np.arange(6.0).reshape(2, 3), np.array([1.0, -2.0])]

    def test_sign_flip_negates(self):
        poisoned = SignFlipAttack().poison(self._weights())
        assert np.allclose(poisoned[0], -self._weights()[0])

    def test_scaling_scales(self):
        poisoned = ScalingAttack(factor=10.0).poison(self._weights())
        assert np.allclose(poisoned[1], 10.0 * self._weights()[1])

    def test_zero_attack(self):
        poisoned = ZeroAttack().poison(self._weights())
        assert all(np.allclose(w, 0.0) for w in poisoned)

    def test_gaussian_noise_changes_weights(self, rng):
        poisoned = GaussianNoiseAttack(noise_scale=2.0).poison(self._weights(), rng=rng)
        assert not np.allclose(poisoned[0], self._weights()[0])
        assert poisoned[0].shape == (2, 3)

    def test_original_weights_untouched(self):
        weights = self._weights()
        SignFlipAttack().poison(weights)
        assert np.allclose(weights[0], np.arange(6.0).reshape(2, 3))

    def test_build_attack_registry(self):
        for name in available_attacks():
            attack = build_attack(name)
            assert attack.name == name
        with pytest.raises(ValueError):
            build_attack("backdoor")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SignFlipAttack(scale=0.0)
        with pytest.raises(ValueError):
            GaussianNoiseAttack(noise_scale=0.0)
        with pytest.raises(ValueError):
            ScalingAttack(factor=0.0)
