"""Tests for the perf-trajectory harness and the hot-path memoization layers.

The CI ``bench`` job runs ``repro bench --quick`` and validates the written
document with :func:`repro.perf.validate_document`; these tests pin that
contract (schema keys, scheduler equivalence inside the benchmark, CLI
wiring) plus the caches the acceleration pass added around serialization,
the blockstore and the aggregator's weights LRU.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import perf
from repro.cli import build_parser
from repro.ipfs.blockstore import BlockStore
from repro.ml.serialization import (
    clear_serialization_memo,
    weights_checksum,
    weights_fingerprint,
    weights_to_bytes,
)


class TestBenchHarness:
    def test_quick_sched_benchmark_matches_reference(self):
        entry = perf.bench_sched_800(quick=True)
        for key in perf.BENCHMARK_KEYS:
            assert key in entry
        # The benchmark itself asserts bit-identical logs; the reference
        # must never be *faster* by more than noise.
        assert entry["speedup"] > 0.5
        assert entry["events"] > 0

    def test_document_schema_roundtrip(self, tmp_path):
        document = {
            "schema_version": perf.SCHEMA_VERSION,
            "commit": "abc",
            "quick": True,
            "benchmarks": {
                "sched_800": {
                    "events": 10, "wall_s": 0.1, "events_per_sec": 100.0,
                    "peak_rss_kb": 1, "speedup": 2.0,
                },
            },
        }
        assert perf.validate_document(document) == []
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        assert perf.validate_document(json.loads(path.read_text())) == []

    def test_validator_reports_missing_keys(self):
        problems = perf.validate_document({"benchmarks": {"sched_800": {"events": 1}}})
        assert any("wall_s" in p for p in problems)
        assert any("schema_version" in p for p in problems)
        assert any("speedup" in p for p in problems)

    def test_cli_has_bench_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(["bench", "--quick", "--out", "x.json"])
        assert args.command == "bench"
        assert args.quick is True
        assert args.out == "x.json"
        run_args = parser.parse_args(["run", "--profile"])
        assert run_args.profile is True


class TestSerializationMemo:
    def setup_method(self):
        clear_serialization_memo()

    def test_fingerprint_separates_content(self):
        a = [np.arange(6, dtype=np.float32).reshape(2, 3)]
        b = [np.arange(6, dtype=np.float32).reshape(2, 3)]
        c = [np.arange(6, dtype=np.float32).reshape(3, 2)]
        d = [np.arange(6, dtype=np.float64).reshape(2, 3)]
        assert weights_fingerprint(a) == weights_fingerprint(b)
        assert weights_fingerprint(a) != weights_fingerprint(c)
        assert weights_fingerprint(a) != weights_fingerprint(d)

    def test_repeat_serialization_hits_the_memo(self):
        weights = [np.ones((4, 4), dtype=np.float32), np.zeros(3, dtype=np.int64)]
        first = weights_to_bytes(weights)
        second = weights_to_bytes([w.copy() for w in weights])
        assert first == second
        # Same fingerprint -> the exact cached payload object comes back.
        assert second is first

    def test_checksum_shares_the_payload_memo(self):
        weights = [np.full((5,), 2.5, dtype=np.float64)]
        checksum = weights_checksum(weights)
        import hashlib

        assert checksum == hashlib.sha256(weights_to_bytes(weights)).hexdigest()
        assert weights_checksum([w.copy() for w in weights]) == checksum

    def test_mutated_weights_reserialize(self):
        weights = [np.ones(4, dtype=np.float32)]
        before = weights_to_bytes(weights)
        weights[0][0] = 7.0
        after = weights_to_bytes(weights)
        assert before != after


class TestBlockStorePutMemo:
    def test_repeat_put_returns_same_root(self):
        store = BlockStore(chunk_size=8)
        payload = b"x" * 30
        first = store.put(payload)
        second = store.put(b"x" * 30)
        assert first.cid == second.cid
        assert store.object_count == 1

    def test_put_after_delete_reinstalls_blocks(self):
        store = BlockStore(chunk_size=8)
        payload = b"y" * 20
        obj = store.put(payload)
        assert store.delete(obj.cid)
        assert store.get(obj.cid) is None
        again = store.put(payload)
        assert again.cid == obj.cid
        assert store.get(again.cid) == payload


def test_weights_cache_counters_surface_in_extras():
    from repro.core.config import ExperimentConfig, cifar10_workload, edge_cluster_configs
    from repro.core.runner import run_experiment

    config = ExperimentConfig(
        name="lru-extras",
        workload=cifar10_workload(rounds=2, samples_per_class=8, image_size=8),
        clusters=edge_cluster_configs(num_clients=2),
        mode="async",
        rounds=2,
        seed=1,
        event_streams=False,
    )
    result = run_experiment(config)
    extras = result.orchestration_extras
    assert "weights_cache_hits" in extras
    assert "weights_cache_evictions" in extras
    assert extras["weights_cache_hits"] >= 0
    assert extras["weights_cache_evictions"] == 0  # tiny run: nothing evicted
