"""Behavioural tests for the hierarchical and gossip round policies.

Covers the two-tier structure of hierarchical orchestration (site grouping,
leader rotation, round budgets, per-tier accounting), the epidemic exchange
structure of gossip (seeded fanout, causality of published models), and the
event-stream integration of both: exchange traffic on the fabric, WAN byte
accounting, replication of leader submissions.
"""

from __future__ import annotations

import pytest

from repro.core.config import ExperimentConfig, cifar10_workload, edge_cluster_configs
from repro.core.runner import ExperimentRunner, run_experiment
from repro.sched.actors import NetworkActor
from repro.simnet.network import NetworkLink, Topology


def config(mode: str, rounds: int = 2, seed: int = 5, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"hg-{mode}",
        workload=cifar10_workload(rounds=rounds, samples_per_class=8, image_size=8),
        clusters=edge_cluster_configs(num_clients=2),
        mode=mode,
        rounds=rounds,
        seed=seed,
        monitor_resources=False,
        **kwargs,
    )


# ----------------------------------------------------------------- hierarchical
class TestHierarchical:
    def test_site_grouping_mirrors_fabric_round_robin(self):
        result = run_experiment(
            config("hierarchical", event_streams=True, storage_replicas=2)
        )
        groups = result.orchestration_extras["groups"]
        # 3 clusters over 2 sites, i % 2: agg1/agg3 share site 0, agg2 is site 1.
        assert groups == {"0": ["agg1", "agg3"], "1": ["agg2"]}

    def test_leader_rotates_deterministically(self):
        result = run_experiment(config("hierarchical", rounds=3))
        leaders = [name for _, _, name in result.orchestration_extras["leaders"]]
        assert leaders == ["agg1", "agg2", "agg3"]

    def test_round_budget_caps_local_training(self):
        budgeted = run_experiment(
            config("hierarchical", rounds=3, local_rounds_per_global=2, round_budget=2)
        )
        extras = budgeted.orchestration_extras
        # Every cluster runs dry after its 2 allowed local rounds (global
        # round 1 already consumes both).
        assert set(extras["budget_exhausted"]) == {"agg1", "agg2", "agg3"}
        assert all(at == [1, 2] or at == (1, 2) for at in extras["budget_exhausted"].values())
        unbudgeted = run_experiment(
            config("hierarchical", rounds=3, local_rounds_per_global=2)
        )
        # Less training can only cost less training time.
        assert (
            extras["tier_totals"]["local_training_time"]
            < unbudgeted.orchestration_extras["tier_totals"]["local_training_time"]
        )

    def test_tier_totals_schema_and_books(self):
        result = run_experiment(config("hierarchical", rounds=2))
        tiers = result.orchestration_extras["tier_totals"]
        for key in (
            "local_training_time",
            "local_exchange_time",
            "local_aggregation_time",
            "local_idle_time",
            "global_pull_time",
            "global_aggregation_time",
            "global_broadcast_time",
            "global_store_time",
            "global_chain_time",
            "global_idle_time",
            "global_scoring_time",
        ):
            assert key in tiers
            assert tiers[key] >= 0.0
        assert tiers["local_training_time"] > 0.0
        assert tiers["global_chain_time"] > 0.0

    def test_per_round_timings_sum_to_cluster_clock(self):
        runner = ExperimentRunner(config("hierarchical", rounds=2))
        result = runner.run()
        for aggregator in runner.aggregators:
            total = sum(r.timing.total_time for r in aggregator.history)
            assert total == pytest.approx(aggregator.clock.now(), rel=1e-9)
        # The per-tier breakdown covers every simulated second: it sums
        # exactly to the federation's combined clocks.
        tier_sum = sum(result.orchestration_extras["tier_totals"].values())
        clock_sum = sum(a.clock.now() for a in runner.aggregators)
        assert tier_sum == pytest.approx(clock_sum, rel=1e-9)

    def test_event_streams_replicate_only_leader_submissions(self):
        result = run_experiment(
            config(
                "hierarchical",
                rounds=2,
                event_streams=True,
                storage_replicas=2,
                replication_mode="eager",
            )
        )
        comm = result.comm_metrics
        # 2 groups x 2 rounds = 4 leader uploads; each propagates to 1 peer.
        assert comm["upload_count"] == 4
        assert comm["replication_count"] == 4
        assert comm["exchange_count"] > 0
        assert comm["wan_bytes"] > 0
        assert comm["chain_ops_submitModel"] == 4

    def test_hierarchical_wan_traffic_below_sync(self):
        shared = dict(
            rounds=2, event_streams=True, storage_replicas=2, replication_mode="eager"
        )
        hierarchical = run_experiment(config("hierarchical", **shared))
        sync = run_experiment(config("sync", **shared))
        assert (
            hierarchical.comm_metrics["wan_bytes"] <= sync.comm_metrics["wan_bytes"]
        )

    def test_offline_cluster_sits_global_round_out(self):
        clusters = edge_cluster_configs(num_clients=2)
        clusters[2].availability = 0.05  # nearly always down
        cfg = ExperimentConfig(
            name="hg-offline",
            workload=cifar10_workload(rounds=3, samples_per_class=8, image_size=8),
            clusters=clusters,
            mode="hierarchical",
            rounds=3,
            seed=5,
            monitor_resources=False,
        )
        result = run_experiment(cfg)
        flaky = result.aggregator("agg3")
        assert any(record.offline for record in flaky.history)
        assert len(flaky.history) == 3


# ----------------------------------------------------------------------- gossip
class TestGossip:
    def test_exchanges_respect_publication_causality(self):
        result = run_experiment(config("gossip", rounds=3, gossip_fanout=2))
        extras = result.orchestration_extras
        published_at = {}
        # Replay the audit trail: nobody pulls a model before some round of
        # the peer published one (round 1 can only miss).
        for round_number, puller, peer, _ in extras["exchanges"]:
            assert round_number >= 2 or peer in published_at
            published_at.setdefault(peer, round_number)
        assert extras["exchange_count"] + extras["missed_exchanges"] > 0

    def test_republication_keeps_older_model_visible(self):
        # A fast-rounding peer re-publishing must not hide the older model a
        # slower puller could causally know of: visibility picks the latest
        # publication whose time the puller's clock has passed.
        from repro.sched.policies import GossipRoundPolicy

        policy = object.__new__(GossipRoundPolicy)
        policy._published = {"peer": [("cid-r1", 10.0), ("cid-r2", 50.0)]}
        assert policy._latest_visible("peer", 30.0) == "cid-r1"
        assert policy._latest_visible("peer", 50.0) == "cid-r2"
        assert policy._latest_visible("peer", 5.0) is None
        assert policy._latest_visible("stranger", 30.0) is None

    def test_fanout_bounds_exchanges_per_round(self):
        result = run_experiment(config("gossip", rounds=4, gossip_fanout=1))
        per_round_puller = {}
        for round_number, puller, _, _ in result.orchestration_extras["exchanges"]:
            key = (round_number, puller)
            per_round_puller[key] = per_round_puller.get(key, 0) + 1
        assert all(count <= 1 for count in per_round_puller.values())

    def test_event_stream_gossip_prices_exchanges_on_fabric(self):
        result = run_experiment(
            config(
                "gossip",
                rounds=3,
                gossip_fanout=2,
                event_streams=True,
                storage_replicas=2,
                replication_mode="lazy",
            )
        )
        comm = result.comm_metrics
        assert comm["exchange_count"] > 0
        assert comm["exchange_time"] > 0.0
        # Publications still ride storage + chain.
        assert comm["upload_count"] == 9  # 3 clusters x 3 rounds
        assert comm["chain_ops_submitModel"] == 9
        extras_time = result.orchestration_extras["exchange_time"]
        assert extras_time == pytest.approx(
            comm["exchange_time"] + comm["exchange_queued"], rel=1e-9
        )

    def test_per_round_timings_sum_to_cluster_clock(self):
        runner = ExperimentRunner(config("gossip", rounds=3, gossip_fanout=2))
        runner.run()
        for aggregator in runner.aggregators:
            total = sum(r.timing.total_time for r in aggregator.history)
            assert total == pytest.approx(aggregator.clock.now(), rel=1e-9)

    def test_gossip_beats_isolation_on_accuracy(self):
        isolated = run_experiment(
            config("gossip", rounds=4, gossip_fanout=0, seed=2)
        )
        social = run_experiment(config("gossip", rounds=4, gossip_fanout=2, seed=2))
        # Same seed, same data: exchanging models should not hurt the mean
        # (tiny workloads are noisy, so allow a small tolerance).
        assert social.mean_global_accuracy >= isolated.mean_global_accuracy - 0.05


# ----------------------------------------------------- exchange fabric plumbing
class TestExchangeFabric:
    def make_actor(self) -> NetworkActor:
        topology = Topology(
            default_wan_link=NetworkLink(latency_s=0.5, bandwidth_bytes_per_s=1_000_000)
        )
        topology.add_replica("site-a").add_replica("site-b")
        lan = NetworkLink(latency_s=0.0, bandwidth_bytes_per_s=1_000_000)
        topology.add_cluster("agg1", "site-a", lan)
        topology.add_cluster("agg2", "site-a", lan)
        topology.add_cluster("agg3", "site-b", lan)
        return NetworkActor(topology=topology, model_bytes=1_000_000)

    def test_same_site_exchange_is_lan_priced(self):
        actor = self.make_actor()
        elapsed = actor.exchange("agg1", "agg2", 1, at=0.0)
        # Two LAN hops, no WAN latency: 1 MB over the 1 MB/s bottleneck.
        assert elapsed == pytest.approx(1.0)
        assert actor.wan_bytes == 0

    def test_cross_site_exchange_crosses_wan(self):
        actor = self.make_actor()
        elapsed = actor.exchange("agg1", "agg3", 1, at=0.0)
        assert elapsed == pytest.approx(1.5)  # WAN latency added
        assert actor.wan_bytes == 1_000_000

    def test_exchange_phase_totals_are_separate(self):
        actor = self.make_actor()
        actor.upload("agg1", 1, at=0.0)
        actor.exchange("agg1", "agg2", 1, at=10.0)
        totals = actor.phase_totals()
        assert totals["upload"]["count"] == 1
        assert totals["exchange"]["count"] == 1
        assert totals["download"]["count"] == 0

    def test_exchange_contends_for_endpoints(self):
        actor = self.make_actor()
        actor.exchange("agg1", "agg2", 1, at=0.0)
        second = actor.exchange("agg3", "agg2", 1, at=0.0)
        # agg2 is busy receiving the first model; the cross-site push queues.
        assert second > 1.5
