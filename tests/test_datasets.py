"""Tests for synthetic datasets, partitioners and the data loader."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.dataloader import DataLoader, train_test_split
from repro.datasets.partition import (
    DirichletPartitioner,
    IIDPartitioner,
    ShardPartitioner,
    partition_dataset,
)
from repro.datasets.synthetic import (
    Dataset,
    SyntheticCIFAR10,
    SyntheticImageDataset,
    SyntheticTinyImageNet,
    make_classification_dataset,
)


class TestSyntheticDatasets:
    def test_cifar10_shapes(self):
        train, test = SyntheticCIFAR10(image_size=8, samples_per_class=5, test_samples_per_class=2, seed=0).splits()
        assert train.x.shape == (50, 3, 8, 8)
        assert test.x.shape == (20, 3, 8, 8)
        assert train.num_classes == 10

    def test_tiny_imagenet_class_count(self):
        train, _ = SyntheticTinyImageNet(num_classes=15, samples_per_class=4, test_samples_per_class=2, seed=0).splits()
        assert train.num_classes == 15
        assert set(np.unique(train.y)) == set(range(15))

    def test_deterministic_by_seed(self):
        a = SyntheticCIFAR10(image_size=8, samples_per_class=3, test_samples_per_class=2, seed=5).train_split()
        b = SyntheticCIFAR10(image_size=8, samples_per_class=3, test_samples_per_class=2, seed=5).train_split()
        assert np.allclose(a.x, b.x)
        assert np.array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = SyntheticCIFAR10(image_size=8, samples_per_class=3, test_samples_per_class=2, seed=1).train_split()
        b = SyntheticCIFAR10(image_size=8, samples_per_class=3, test_samples_per_class=2, seed=2).train_split()
        assert not np.allclose(a.x, b.x)

    def test_train_test_disjoint_noise(self):
        factory = SyntheticCIFAR10(image_size=8, samples_per_class=3, test_samples_per_class=3, seed=0)
        train, test = factory.splits()
        assert not np.allclose(train.x[:3], test.x[:3])

    def test_balanced_classes(self):
        train, _ = SyntheticCIFAR10(image_size=8, samples_per_class=7, test_samples_per_class=2, seed=0).splits()
        counts = train.class_counts()
        assert np.all(counts == 7)

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(num_classes=1)

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(num_classes=3, samples_per_class=0)

    def test_dataset_subset(self):
        train, _ = SyntheticCIFAR10(image_size=8, samples_per_class=4, test_samples_per_class=2, seed=0).splits()
        sub = train.subset(np.arange(5))
        assert len(sub) == 5
        assert sub.num_classes == train.num_classes

    def test_dataset_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset(x=np.zeros((3, 2)), y=np.zeros(2, dtype=int), num_classes=2)

    def test_tabular_dataset_learnable_structure(self):
        ds = make_classification_dataset(num_samples=100, num_classes=4, seed=0)
        assert len(ds) == 100
        assert ds.num_classes == 4
        assert set(np.unique(ds.y)).issubset(set(range(4)))

    def test_tabular_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            make_classification_dataset(num_samples=2, num_classes=5)


class TestIIDPartitioner:
    def test_covers_all_indices_exactly_once(self, tiny_image_dataset):
        train, _ = tiny_image_dataset
        parts = IIDPartitioner(4, seed=0).partition_indices(train)
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(len(train)))

    def test_roughly_equal_sizes(self, tiny_image_dataset):
        train, _ = tiny_image_dataset
        parts = IIDPartitioner(5, seed=0).partition_indices(train)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_more_partitions_than_samples(self):
        ds = make_classification_dataset(num_samples=4, num_classes=2, seed=0)
        with pytest.raises(ValueError):
            IIDPartitioner(10, seed=0).partition_indices(ds)

    def test_rejects_nonpositive_partitions(self):
        with pytest.raises(ValueError):
            IIDPartitioner(0)

    @settings(max_examples=15, deadline=None)
    @given(num_parts=st.integers(2, 6), seed=st.integers(0, 100))
    def test_property_partition_is_exact_cover(self, num_parts, seed):
        ds = make_classification_dataset(num_samples=60, num_classes=4, seed=1)
        parts = IIDPartitioner(num_parts, seed=seed).partition_indices(ds)
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(60))


class TestDirichletPartitioner:
    def test_covers_all_indices(self, tiny_image_dataset):
        train, _ = tiny_image_dataset
        parts = DirichletPartitioner(3, alpha=0.5, seed=0).partition_indices(train)
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(len(train)))

    def test_min_samples_respected(self, tiny_image_dataset):
        train, _ = tiny_image_dataset
        parts = DirichletPartitioner(3, alpha=0.1, min_samples=3, seed=2).partition_indices(train)
        assert min(len(p) for p in parts) >= 3

    def test_low_alpha_more_skewed_than_high_alpha(self):
        ds = SyntheticCIFAR10(image_size=8, samples_per_class=30, test_samples_per_class=2, seed=0).train_split()

        def skew(alpha, seed):
            parts = DirichletPartitioner(3, alpha=alpha, seed=seed).partition(ds)
            # measure label imbalance: mean std-dev of class proportions per partition
            stds = []
            for p in parts:
                counts = p.class_counts().astype(float)
                proportions = counts / max(counts.sum(), 1)
                stds.append(proportions.std())
            return float(np.mean(stds))

        skew_low = np.mean([skew(0.1, s) for s in range(3)])
        skew_high = np.mean([skew(5.0, s) for s in range(3)])
        assert skew_low > skew_high

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            DirichletPartitioner(3, alpha=0.0)

    @settings(max_examples=10, deadline=None)
    @given(alpha=st.floats(0.05, 5.0), seed=st.integers(0, 50))
    def test_property_exact_cover(self, alpha, seed):
        ds = SyntheticCIFAR10(image_size=8, samples_per_class=10, test_samples_per_class=2, seed=3).train_split()
        parts = DirichletPartitioner(4, alpha=alpha, min_samples=1, seed=seed).partition_indices(ds)
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(len(ds)))


class TestShardPartitioner:
    def test_covers_all_indices(self, tiny_image_dataset):
        train, _ = tiny_image_dataset
        parts = ShardPartitioner(4, shards_per_partition=2, seed=0).partition_indices(train)
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(len(train)))

    def test_partitions_are_label_concentrated(self, tiny_image_dataset):
        train, _ = tiny_image_dataset
        parts = ShardPartitioner(5, shards_per_partition=1, seed=0).partition(train)
        # With one shard per partition, each partition holds at most ~3 labels.
        for p in parts:
            assert len(np.unique(p.y)) <= 4

    def test_rejects_too_many_shards(self):
        ds = make_classification_dataset(num_samples=5, num_classes=2, seed=0)
        with pytest.raises(ValueError):
            ShardPartitioner(3, shards_per_partition=3).partition_indices(ds)


class TestPartitionDataset:
    def test_scheme_names(self, tiny_image_dataset):
        train, _ = tiny_image_dataset
        for scheme in ("iid", "dirichlet", "shard", "niid"):
            parts = partition_dataset(train, 3, scheme=scheme, seed=0)
            assert len(parts) == 3

    def test_unknown_scheme(self, tiny_image_dataset):
        train, _ = tiny_image_dataset
        with pytest.raises(ValueError):
            partition_dataset(train, 3, scheme="bogus")


class TestDataLoader:
    def test_batches_cover_dataset(self, tabular_dataset):
        loader = DataLoader(tabular_dataset, batch_size=32, shuffle=True, seed=0)
        total = sum(len(yb) for _, yb in loader)
        assert total == len(tabular_dataset)

    def test_len_counts_partial_batch(self, tabular_dataset):
        loader = DataLoader(tabular_dataset, batch_size=50, drop_last=False)
        assert len(loader) == int(np.ceil(len(tabular_dataset) / 50))

    def test_drop_last(self, tabular_dataset):
        loader = DataLoader(tabular_dataset, batch_size=50, drop_last=True)
        for xb, _ in loader:
            assert len(xb) == 50

    def test_rejects_bad_batch_size(self, tabular_dataset):
        with pytest.raises(ValueError):
            DataLoader(tabular_dataset, batch_size=0)

    def test_no_shuffle_is_ordered(self, tabular_dataset):
        loader = DataLoader(tabular_dataset, batch_size=16, shuffle=False)
        first_x, _ = next(iter(loader))
        assert np.allclose(first_x, tabular_dataset.x[:16])


class TestTrainTestSplit:
    def test_sizes(self, tabular_dataset):
        train, test = train_test_split(tabular_dataset, test_fraction=0.25, seed=0)
        assert len(train) + len(test) == len(tabular_dataset)
        assert len(test) == round(0.25 * len(tabular_dataset))

    def test_disjoint(self, tabular_dataset):
        train, test = train_test_split(tabular_dataset, test_fraction=0.25, seed=0)
        # No row of test.x appears in train.x.
        combined = np.vstack([train.x, test.x])
        assert combined.shape[0] == len(tabular_dataset)

    def test_invalid_fraction(self, tabular_dataset):
        with pytest.raises(ValueError):
            train_test_split(tabular_dataset, test_fraction=1.5)
