"""Tests for result export (JSON/CSV) and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.config import ExperimentConfig, cifar10_workload, edge_cluster_configs
from repro.core.reporting import (
    load_result_json,
    load_results_csv,
    result_to_dict,
    save_result_json,
    save_results_csv,
)
from repro.core.runner import run_experiment


@pytest.fixture(scope="module")
def small_result():
    config = ExperimentConfig(
        name="report-test",
        workload=cifar10_workload(rounds=2, samples_per_class=12, image_size=8),
        clusters=edge_cluster_configs(num_clients=2),
        mode="sync",
        partitioning="iid",
        rounds=2,
        seed=13,
        # The CSV tests assert the constant-cost reporting shape (empty
        # event-stream columns), so opt out of the event-stream default.
        event_streams=False,
    )
    return run_experiment(config)


class TestJSONExport:
    def test_dict_contains_all_sections(self, small_result):
        document = result_to_dict(small_result)
        assert document["name"] == "report-test"
        assert len(document["aggregators"]) == 3
        assert document["chain_metrics"]["blocks_mined"] > 0
        assert "geth" in document["resource_reports"]
        assert len(document["aggregators"][0]["history"]) == 2

    def test_save_and_load_round_trip(self, small_result, tmp_path):
        path = save_result_json(small_result, tmp_path / "nested" / "result.json")
        assert path.exists()
        document = load_result_json(path)
        assert document["rounds"] == 2
        assert document["aggregators"][0]["name"] == "agg1"

    def test_document_is_plain_json(self, small_result, tmp_path):
        path = save_result_json(small_result, tmp_path / "result.json")
        with open(path, encoding="utf-8") as handle:
            parsed = json.load(handle)
        assert isinstance(parsed, dict)

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_result_json(path)


class TestCSVExport:
    def test_one_row_per_aggregator(self, small_result, tmp_path):
        path = save_results_csv([small_result, small_result], tmp_path / "rows.csv")
        rows = load_results_csv(path)
        assert len(rows) == 6
        assert rows[0]["aggregator"] == "agg1"
        assert 0.0 <= float(rows[0]["global_accuracy"]) <= 1.0

    def test_columns_are_stable(self, small_result, tmp_path):
        path = save_results_csv([small_result], tmp_path / "rows.csv")
        rows = load_results_csv(path)
        expected = {
            "experiment", "mode", "partitioning", "scoring_algorithm", "rounds",
            "aggregator", "policy", "strategy", "total_time", "idle_time",
            "straggler_count", "global_accuracy", "global_loss", "local_accuracy", "local_loss",
            "network_queued_s", "chain_wait_s",
            "replication_time_s", "replication_queued_s", "replication_count",
            "exchange_time_s", "exchange_count", "wan_bytes",
            "retries", "breaker_open_s", "failovers", "dropped_clients",
        }
        assert set(rows[0]) == expected
        # Constant-cost runs leave the event-stream totals empty, not zero.
        assert rows[0]["network_queued_s"] == ""
        assert rows[0]["replication_count"] == ""
        assert rows[0]["retries"] == ""
        assert rows[0]["dropped_clients"] == ""


class TestCLI:
    def test_parser_has_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--rounds", "3", "--mode", "sync"])
        assert args.command == "run"
        assert args.rounds == 3
        assert args.mode == "sync"

    def test_policies_command(self, capsys):
        exit_code = main(["policies"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "top_k" in output and "median" in output

    def test_run_command_end_to_end(self, capsys, tmp_path):
        exit_code = main(
            [
                "run",
                "--rounds", "2",
                "--samples-per-class", "12",
                "--mode", "async",
                "--seed", "3",
                "--json-out", str(tmp_path / "out.json"),
                "--csv-out", str(tmp_path / "out.csv"),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Mean global accuracy" in output
        assert (tmp_path / "out.json").exists()
        assert (tmp_path / "out.csv").exists()

    def test_run_command_rejects_bad_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mode", "eventually"])

    def test_compare_command_runs(self, capsys):
        exit_code = main(
            ["compare", "--rounds", "2", "--samples-per-class", "12", "--clients", "2", "--seed", "5"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Sync UnifyFL" in output
        assert "Centralized multilevel" in output
