"""Additional behavioural tests: straggler handling, MultiKRUM end to end,
chain growth under sustained load, storage garbage collection during a run,
and invariants of the contract under randomised interleavings.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.account import Account
from repro.chain.blockchain import Blockchain
from repro.core.config import ClusterConfig, ExperimentConfig, cifar10_workload, edge_cluster_configs
from repro.core.contract import UnifyFLContract
from repro.core.orchestrator import SyncOrchestrator
from repro.core.runner import ExperimentRunner, run_experiment
from repro.core.scorer import MultiKRUMScorer
from repro.core.timing import ClusterTimingModel
from repro.ipfs.cid import parse_cid


# --------------------------------------------------------------------- helpers
def tiny_config(name, **overrides):
    defaults = dict(
        workload=cifar10_workload(rounds=2, samples_per_class=12, image_size=8),
        clusters=edge_cluster_configs(num_clients=2),
        mode="sync",
        partitioning="iid",
        rounds=2,
        seed=31,
    )
    defaults.update(overrides)
    return ExperimentConfig(name=name, **defaults)


class TestStragglerHandling:
    def test_straggler_model_submitted_next_round(self):
        """A cluster that misses the window still gets its model on chain one round later."""
        runner = ExperimentRunner(tiny_config("straggler", rounds=3))
        runner.build()
        orchestrator = SyncOrchestrator(
            runner.chain,
            runner._driver_account,
            runner.aggregators,
            runner.timing_model,
            training_window=0.5,  # far below any cluster's training time
            scoring_window=10.0,
        )
        result = orchestrator.run(3)
        # Every cluster straggled in (at least) the first two rounds...
        assert all(count >= 1 for count in result.straggler_counts.values())
        # ...but late submissions still reach the contract: by the end of round 3
        # each aggregator has published at least one model.
        records = runner.chain.call("unifyfl", "getLatestModelsWithScores")
        submitters = {r["submitter"] for r in records}
        assert submitters == {a.address for a in runner.aggregators}

    def test_straggled_rounds_flagged_in_history(self):
        runner = ExperimentRunner(tiny_config("straggler-flag", rounds=2))
        runner.build()
        orchestrator = SyncOrchestrator(
            runner.chain,
            runner._driver_account,
            runner.aggregators,
            runner.timing_model,
            training_window=0.5,
            scoring_window=10.0,
        )
        orchestrator.run(2)
        flags = [record.straggled for aggregator in runner.aggregators for record in aggregator.history]
        assert any(flags)

    def test_generous_window_produces_no_stragglers(self):
        runner = ExperimentRunner(tiny_config("no-straggler", rounds=2))
        runner.build()
        orchestrator = SyncOrchestrator(
            runner.chain,
            runner._driver_account,
            runner.aggregators,
            runner.timing_model,
            training_window=10_000.0,
            scoring_window=10_000.0,
        )
        result = orchestrator.run(2)
        assert all(count == 0 for count in result.straggler_counts.values())


class TestMultiKRUMEndToEnd:
    def test_multikrum_downranks_byzantine_model_on_chain(self):
        clusters = [
            ClusterConfig(name="h1", num_clients=2, aggregation_policy="above_median"),
            ClusterConfig(name="h2", num_clients=2, aggregation_policy="above_median"),
            ClusterConfig(name="h3", num_clients=2, aggregation_policy="above_median"),
            ClusterConfig(
                name="evil", num_clients=2, aggregation_policy="above_median",
                malicious=True, attack="scaling",
            ),
        ]
        config = tiny_config(
            "multikrum-byzantine",
            clusters=clusters,
            scoring_algorithm="multikrum",
            rounds=2,
            workload=cifar10_workload(rounds=2, samples_per_class=14, image_size=8, learning_rate=0.05),
        )
        runner = ExperimentRunner(config)
        runner.run()
        records = runner.chain.call("unifyfl", "getLatestModelsWithScores")
        evil_address = runner.accounts["evil"].address
        evil_scores = [s for r in records if r["submitter"] == evil_address for s in r["scores"].values()]
        honest_scores = [s for r in records if r["submitter"] != evil_address for s in r["scores"].values()]
        assert evil_scores and honest_scores
        # The scaled (outlier) model sits far from the honest majority in weight
        # space, so MultiKRUM gives it the lowest similarity scores.
        assert np.mean(evil_scores) < np.mean(honest_scores)

    def test_multikrum_scorer_used_by_aggregators(self):
        config = tiny_config("multikrum-wiring", scoring_algorithm="multikrum")
        runner = ExperimentRunner(config)
        runner.build()
        assert all(isinstance(a.scorer, MultiKRUMScorer) for a in runner.aggregators)


class TestChainUnderSustainedLoad:
    def test_many_rounds_grow_and_verify_chain(self):
        result_runner = ExperimentRunner(tiny_config("sustained", rounds=4))
        result_runner.run()
        chain = result_runner.chain
        assert chain.height > 10
        assert chain.verify_chain()
        # Clique rotation: no single validator sealed more than ~2/3 of blocks.
        sealers = [block.header.sealer for block in chain.blocks[1:]]
        most_common = max(sealers.count(s) for s in set(sealers))
        assert most_common <= 2 * len(sealers) / 3

    def test_gas_accounting_grows_with_activity(self):
        short = run_experiment(tiny_config("gas-short", rounds=1))
        long = run_experiment(tiny_config("gas-long", rounds=3))
        assert long.chain_metrics["total_gas_used"] > short.chain_metrics["total_gas_used"]
        assert long.chain_metrics["blocks_mined"] > short.chain_metrics["blocks_mined"]


class TestStorageLifecycle:
    def test_models_replicated_and_garbage_collectable(self):
        runner = ExperimentRunner(tiny_config("storage-gc", rounds=2))
        runner.run()
        records = runner.chain.call("unifyfl", "getLatestModelsWithScores")
        assert records
        # Unpin and GC everything on one node; its local store shrinks while the
        # swarm still serves the content from the other organisations' nodes.
        node = runner.aggregators[0].ipfs
        before = node.stored_bytes
        for cid in list(node.pinned):
            node.unpin(cid)
        removed = node.garbage_collect()
        assert removed
        assert node.stored_bytes < before
        some_cid = parse_cid(records[0]["cid"])
        payload = runner.aggregators[1].ipfs.get(some_cid)
        assert payload  # still retrievable from the rest of the swarm

    def test_every_submitted_cid_is_resolvable_by_every_org(self):
        runner = ExperimentRunner(tiny_config("storage-resolve", rounds=2))
        runner.run()
        records = runner.chain.call("unifyfl", "getLatestModelsWithScores")
        for record in records[:3]:
            cid = parse_cid(record["cid"])
            for aggregator in runner.aggregators:
                assert aggregator.ipfs.get(cid)


class TestContractInterleavingInvariants:
    @settings(max_examples=15, deadline=None)
    @given(order=st.permutations([0, 1, 2]), seed=st.integers(0, 1000))
    def test_submission_order_never_changes_scorer_majority(self, order, seed):
        """Whatever order organisations submit in, every model gets exactly
        N//2+1 scorers and never its own submitter."""
        accounts = [Account.create(label=f"a{i}", seed=2000 + seed * 10 + i) for i in range(3)]
        chain = Blockchain(accounts, block_period=1.0)
        chain.deploy_contract(UnifyFLContract(mode="async", scorer_seed=seed))
        for account in accounts:
            chain.send(account, "unifyfl", "registerAggregator")
        chain.mine_until_empty()
        cids = ["Qm" + f"{i}{seed}".ljust(64, "f")[:64] for i in range(3)]
        for index in order:
            chain.send(accounts[index], "unifyfl", "submitModel", {"cid": cids[index]})
            chain.mine_until_empty()
        for index, cid in enumerate(cids):
            submission = chain.call("unifyfl", "getSubmission", {"cid": cid})
            assert len(submission["assigned_scorers"]) == 2
            assert accounts[index].address not in submission["assigned_scorers"]

    @settings(max_examples=10, deadline=None)
    @given(scores=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=2))
    def test_all_submitted_scores_are_preserved_exactly(self, scores):
        accounts = [Account.create(label=f"b{i}", seed=3000 + i) for i in range(3)]
        chain = Blockchain(accounts, block_period=1.0)
        chain.deploy_contract(UnifyFLContract(mode="async", scorer_seed=1))
        for account in accounts:
            chain.send(account, "unifyfl", "registerAggregator")
        chain.mine_until_empty()
        cid = "Qm" + "ab" * 32
        chain.send(accounts[0], "unifyfl", "submitModel", {"cid": cid})
        chain.mine_until_empty()
        submission = chain.call("unifyfl", "getSubmission", {"cid": cid})
        by_address = {a.address: a for a in accounts}
        for scorer_address, value in zip(submission["assigned_scorers"], scores):
            chain.send(by_address[scorer_address], "unifyfl", "submitScore", {"cid": cid, "score": value})
        chain.mine_until_empty()
        stored = chain.call("unifyfl", "getSubmission", {"cid": cid})["scores"]
        assert sorted(stored.values()) == sorted(float(v) for v in scores)


class TestTimingModelShapes:
    def test_gpu_round_dominated_by_training_not_chain(self):
        from repro.core.config import gpu_cluster_configs, tiny_imagenet_workload

        timing = ClusterTimingModel(tiny_imagenet_workload(), block_period=2.0, seed=0)
        cluster = gpu_cluster_configs(num_clusters=1)[0]
        training = timing.client_training_time(cluster, jitter=False)
        chain = timing.chain_interaction_time(2)
        assert training > 10 * chain

    def test_edge_rpi_cluster_is_the_straggler(self):
        timing = ClusterTimingModel(cifar10_workload(), seed=0)
        clusters = edge_cluster_configs()
        times = {c.name: timing.client_training_time(c, jitter=False) for c in clusters}
        # agg1 hosts the Raspberry Pi clients in the edge configuration.
        assert times["agg1"] == max(times.values())

    def test_sync_window_covers_straggler_with_margin(self):
        timing = ClusterTimingModel(cifar10_workload(), seed=0)
        clusters = edge_cluster_configs()
        window = timing.expected_training_window(clusters)
        slowest = max(timing.client_training_time(c, jitter=False) for c in clusters)
        assert window >= 1.3 * slowest


class TestDPInFederation:
    def test_dp_cluster_interoperates_with_plain_clusters(self):
        clusters = edge_cluster_configs(num_clients=2)
        clusters[0].dp_clip_norm = 5.0
        clusters[0].dp_noise_multiplier = 0.05
        result = run_experiment(tiny_config("dp-federation", clusters=clusters))
        assert len(result.aggregators) == 3
        assert all(len(a.history) == 2 for a in result.aggregators)

    def test_invalid_dp_cluster_config_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(name="bad", dp_clip_norm=-1.0)
        with pytest.raises(ValueError):
            ClusterConfig(name="bad", dp_noise_multiplier=-0.1)
