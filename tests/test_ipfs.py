"""Tests for the content-addressed distributed storage substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipfs.blockstore import BlockStore
from repro.ipfs.cid import CID, compute_cid, parse_cid
from repro.ipfs.node import IPFSError, IPFSNode
from repro.ipfs.swarm import IPFSSwarm
from repro.ml.serialization import weights_from_bytes, weights_to_bytes


class TestCID:
    def test_deterministic(self):
        assert compute_cid(b"hello") == compute_cid(b"hello")

    def test_different_content_different_cid(self):
        assert compute_cid(b"a") != compute_cid(b"b")

    def test_verify(self):
        cid = compute_cid(b"payload")
        assert cid.verify(b"payload")
        assert not cid.verify(b"other")

    def test_parse_round_trip(self):
        cid = compute_cid(b"x")
        assert parse_cid(str(cid)) == cid

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            CID("notacid")
        with pytest.raises(ValueError):
            CID("Qm" + "z" * 10)

    def test_ordering_is_stable(self):
        cids = sorted([compute_cid(b"a"), compute_cid(b"b"), compute_cid(b"c")])
        assert cids == sorted(cids)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=2048))
    def test_property_cid_verifies_own_content(self, payload):
        assert compute_cid(payload).verify(payload)


class TestBlockStore:
    def test_put_get_round_trip(self):
        store = BlockStore(chunk_size=64)
        payload = bytes(range(256)) * 3
        obj = store.put(payload)
        assert store.get(obj.cid) == payload

    def test_chunking_produces_multiple_blocks(self):
        store = BlockStore(chunk_size=10)
        obj = store.put(b"x" * 95)
        assert len(obj.chunk_cids) == 10

    def test_empty_payload(self):
        store = BlockStore(chunk_size=16)
        obj = store.put(b"")
        assert store.get(obj.cid) == b""

    def test_identical_content_same_cid(self):
        store = BlockStore()
        assert store.put(b"same").cid == store.put(b"same").cid

    def test_missing_object_returns_none(self):
        store = BlockStore()
        assert store.get(compute_cid(b"missing")) is None

    def test_delete_keeps_shared_blocks(self):
        store = BlockStore(chunk_size=4)
        a = store.put(b"aaaabbbb")
        b = store.put(b"aaaacccc")  # shares the "aaaa" block
        store.delete(a.cid)
        assert store.get(b.cid) == b"aaaacccc"

    def test_delete_frees_unreferenced_blocks(self):
        store = BlockStore(chunk_size=4)
        obj = store.put(b"onlymine")
        before = store.stored_bytes
        assert store.delete(obj.cid)
        assert store.stored_bytes < before

    def test_put_object_verifies_blocks(self):
        source = BlockStore(chunk_size=8)
        target = BlockStore(chunk_size=8)
        obj = source.put(b"replicate me please")
        blocks = source.blocks_for(obj.cid)
        tampered = dict(blocks)
        first_cid = next(iter(tampered))
        tampered[first_cid] = b"EVIL" + tampered[first_cid][4:]
        with pytest.raises(ValueError):
            target.put_object(obj, tampered)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=4096), st.integers(1, 512))
    def test_property_round_trip_any_chunk_size(self, payload, chunk_size):
        store = BlockStore(chunk_size=chunk_size)
        obj = store.put(payload)
        assert store.get(obj.cid) == payload


class TestNodeAndSwarm:
    def test_add_and_get_local(self, ipfs_swarm):
        node = ipfs_swarm.node("node-a")
        cid = node.add(b"model weights")
        assert node.get(cid) == b"model weights"
        assert node.has_local(cid)

    def test_peer_fetch_replicates(self, ipfs_swarm):
        a, b = ipfs_swarm.node("node-a"), ipfs_swarm.node("node-b")
        cid = a.add(b"shared content")
        assert not b.has_local(cid)
        assert b.get(cid) == b"shared content"
        assert b.has_local(cid)
        assert ipfs_swarm.replication_factor(cid) == 2

    def test_fetch_unknown_cid_raises(self, ipfs_swarm):
        node = ipfs_swarm.node("node-a")
        with pytest.raises(IPFSError):
            node.get(compute_cid(b"never stored"))

    def test_isolated_node_cannot_fetch_remote(self):
        node = IPFSNode("loner")
        with pytest.raises(IPFSError):
            node.get(compute_cid(b"elsewhere"))

    def test_pin_protects_from_gc(self, ipfs_swarm):
        node = ipfs_swarm.node("node-a")
        pinned = node.add(b"keep me", pin=True)
        unpinned = node.add(b"throw me away", pin=False)
        removed = node.garbage_collect()
        assert unpinned in removed
        assert node.has_local(pinned)
        assert not node.has_local(unpinned)

    def test_unpin_then_gc_removes(self, ipfs_swarm):
        node = ipfs_swarm.node("node-a")
        cid = node.add(b"temporary", pin=True)
        node.unpin(cid)
        node.garbage_collect()
        assert not node.has_local(cid)

    def test_pin_unknown_cid_raises(self, ipfs_swarm):
        with pytest.raises(IPFSError):
            ipfs_swarm.node("node-a").pin(compute_cid(b"absent"))

    def test_gc_withdraws_provider_record(self, ipfs_swarm):
        a, b = ipfs_swarm.node("node-a"), ipfs_swarm.node("node-b")
        cid = a.add(b"ephemeral", pin=False)
        a.garbage_collect()
        with pytest.raises(IPFSError):
            b.get(cid)

    def test_transfer_stats_recorded(self, ipfs_swarm):
        a, b = ipfs_swarm.node("node-a"), ipfs_swarm.node("node-b")
        payload = b"z" * 10_000
        cid = a.add(payload)
        b.get(cid)
        assert ipfs_swarm.total_transferred_bytes() == len(payload)
        assert len(ipfs_swarm.transfers) == 1
        assert b.stats.bytes_received_from_peers == len(payload)
        assert a.stats.bytes_sent_to_peers == len(payload)

    def test_duplicate_node_id_rejected(self, ipfs_swarm):
        with pytest.raises(IPFSError):
            ipfs_swarm.create_node("node-a")

    def test_unknown_node_lookup(self, ipfs_swarm):
        with pytest.raises(IPFSError):
            ipfs_swarm.node("node-z")

    def test_empty_node_id_rejected(self):
        with pytest.raises(ValueError):
            IPFSNode("")

    def test_model_weights_round_trip_through_swarm(self, ipfs_swarm, small_cnn):
        """The end-to-end path UnifyFL uses: serialize → add → fetch → deserialize."""
        a, b = ipfs_swarm.node("node-a"), ipfs_swarm.node("node-b")
        weights = small_cnn.get_weights()
        cid = a.add(weights_to_bytes(weights))
        restored = weights_from_bytes(b.get(cid))
        for original, received in zip(weights, restored):
            assert np.allclose(original, received)

    def test_total_stored_bytes_counts_replicas(self, ipfs_swarm):
        a, b = ipfs_swarm.node("node-a"), ipfs_swarm.node("node-b")
        cid = a.add(b"q" * 1000)
        b.get(cid)
        assert ipfs_swarm.total_stored_bytes() >= 2000
